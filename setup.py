"""Setuptools entry point.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments that lack the `wheel` package (pip falls back to the legacy
`setup.py develop` path when no [build-system] table is declared).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Measurement and Evaluation of a Real World "
        "Deployment of a Challenge-Response Spam Filter' (IMC 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
