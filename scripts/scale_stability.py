#!/usr/bin/env python3
"""Scale-stability validation: do the headline ratios survive scaling?

Runs the deployment at two scales (`bench` and `medium`, ~4x apart in
message volume) and prints the key paper quantities side by side. Used to
substantiate DESIGN.md's claim that every reported quantity is a ratio,
distribution, or correlation and therefore scale-free.
"""

import sys

from repro.analysis import (
    challenges,
    delays,
    engine_breakdown,
    flow,
    mta_breakdown,
    reflection,
)
from repro.experiments import run_simulation
from repro.util.render import TextTable


def metrics(result):
    f = flow.compute(result.store)
    refl = reflection.compute(result.store)
    ch = challenges.compute(result.store)
    eb = engine_breakdown.compute(result.store)
    d = delays.compute(result.store)
    mb = mta_breakdown.compute(result.store)
    return {
        "messages": len(result.store.mta),
        "MTA pass rate (closed)": f"{100 * mb.closed_pass_rate:.1f}%",
        "white per 1000": f"{f.white:.1f}",
        "challenges per 1000": f"{f.challenges_sent:.1f}",
        "reflection R (CR)": f"{100 * refl.reflection_cr:.1f}%",
        "backscatter beta (CR)": f"{100 * refl.beta_cr:.1f}%",
        "reflected traffic RT": f"{100 * refl.rt_cr:.2f}%",
        "challenges delivered": f"{100 * ch.delivered_share:.1f}%",
        "nonexistent of undelivered": (
            f"{100 * ch.nonexistent_share_of_undelivered:.1f}%"
        ),
        "solved of sent": f"{100 * ch.solved_share_of_sent:.2f}%",
        "filter drop share of gray": f"{100 * eb.filter_drop_share:.1f}%",
        "inbox instant share": f"{100 * d.instant_share:.1f}%",
    }


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    rows = {}
    for preset in ("bench", "medium"):
        print(f"running {preset} (seed {seed}) ...", flush=True)
        result = run_simulation(preset, seed=seed)
        print(f"  done in {result.wall_seconds:.0f}s", flush=True)
        rows[preset] = metrics(result)

    table = TextTable(
        headers=["quantity", "bench (~0.5M msgs)", "medium (~2M msgs)", "paper"],
        title="Scale stability — headline quantities at two simulation scales",
    )
    paper = {
        "messages": "90.4M",
        "MTA pass rate (closed)": "24.9%",
        "white per 1000": "31",
        "challenges per 1000": "48",
        "reflection R (CR)": "19.3%",
        "backscatter beta (CR)": "8.7%",
        "reflected traffic RT": "2.5%",
        "challenges delivered": "49%",
        "nonexistent of undelivered": "71.7%",
        "solved of sent": "3.5%",
        "filter drop share of gray": "54-77.5%",
        "inbox instant share": "94%",
    }
    for key in rows["bench"]:
        table.add_row(
            key, rows["bench"][key], rows["medium"][key], paper.get(key, "-")
        )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
