#!/usr/bin/env python3
"""CI smoke test for the FP/FN frontier experiment.

Runs a reduced frontier — the clean row plus one attack scenario, every
chain column, the full default seed set — and asserts the machine-checked
non-degeneracy gate :func:`repro.analysis.frontier.check_frontier` holds:

* **every cell evaluates** — each (scenario, chain) cell observed both
  mail classes and none of its seed runs failed;
* **the paper's §1 ordering is measured, not cited** — on the clean row,
  pure CR's end-to-end false-positive rate is strictly below the online
  naive-Bayes chain's.

The seed set must stay the full :data:`FRONTIER_SEEDS` — the FP ordering
is a statistical claim and holds over the set, not per seed.

Exits nonzero with the failing check strings on any violation.

Usage::

    PYTHONPATH=src python scripts/frontier_smoke.py --preset tiny
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.frontier import (  # noqa: E402
    FRONTIER_SEEDS,
    check_frontier,
    render,
    run_frontier,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--preset", default="tiny", help="scale preset (default: tiny)"
    )
    parser.add_argument(
        "--scenario",
        default="trap-bombing",
        help="attack scenario for the second row (default: trap-bombing)",
    )
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)

    result = run_frontier(
        preset=args.preset,
        seeds=FRONTIER_SEEDS,
        scenarios=(None, args.scenario),
        jobs=args.jobs,
    )
    print(render(result))

    failures = check_frontier(result)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    cells = len(result.scenarios) * len(result.chains)
    print(
        f"frontier smoke OK ({cells} cells, seeds "
        f"{', '.join(str(s) for s in result.seeds)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
