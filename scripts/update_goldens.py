#!/usr/bin/env python3
"""Regenerate the committed golden reports under tests/goldens/.

Run this ONLY when a change is *supposed* to alter simulation output
(new mechanics, recalibration); commit the refreshed goldens with that
change so the diff is reviewed. Perf refactors must leave these files
byte-identical — that is the point of the goldens.

Usage::

    PYTHONPATH=src python scripts/update_goldens.py
"""

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis import engine_breakdown, flow, general_stats  # noqa: E402
from repro.experiments import run_simulation  # noqa: E402

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "goldens"

#: exp_id -> renderer over the tiny/seed-7 run (must mirror
#: tests/test_golden_reports.py).
GOLDEN_RENDERERS = {
    "fig1": lambda r: flow.render(r.store),
    "fig3": lambda r: engine_breakdown.render(r.store),
    "tab1": lambda r: general_stats.render(r.store, r.info),
}


def main() -> int:
    result = run_simulation("tiny", seed=7)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for exp_id, render in GOLDEN_RENDERERS.items():
        path = GOLDEN_DIR / f"{exp_id}.txt"
        path.write_text(render(result) + "\n", encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
