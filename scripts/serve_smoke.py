#!/usr/bin/env python
"""CI entry point for the live-service chaos gate.

Runs the full kill -9 chaos harness (:mod:`repro.serve.chaos`) — by
default 20 randomized SIGKILL injections against a real ``repro serve``
subprocess under open-loop load — and writes the machine-readable report
(per-round ack counts, torn-tail observations, the clean-burst
throughput/latency record, and the final ledger reconciliation) to an
artifact file. Exit code 0 means zero accepted-message loss across every
kill plus a clean reconciled shutdown; any conservation violation raises
and fails the job.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --kills 20 \
        --artifact serve_smoke_report.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile

from repro.serve.chaos import ChaosError, run_chaos


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kills", type=int, default=20)
    parser.add_argument("--preset", default="tiny")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rng-seed", type=int, default=1234)
    parser.add_argument("--rate", type=float, default=300.0)
    parser.add_argument("--messages-per-burst", type=int, default=150)
    parser.add_argument("--artifact", default="serve_smoke_report.json")
    parser.add_argument(
        "--workdir",
        default=None,
        help="WAL/endpoints directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="serve_smoke_")
    try:
        report = asyncio.run(
            run_chaos(
                workdir,
                kills=args.kills,
                preset=args.preset,
                seed=args.seed,
                rng_seed=args.rng_seed,
                rate=args.rate,
                messages_per_burst=args.messages_per_burst,
            )
        )
    except ChaosError as exc:
        print(f"CHAOS GATE FAILED: {exc}", file=sys.stderr)
        return 1
    with open(args.artifact, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    burst = report["clean_burst"]
    print(
        f"chaos gate passed: {report['kills']} kill -9 injections, "
        f"{report['cumulative_acked']} acked / "
        f"{report['final_reconciliation']['accepted']} accepted "
        f"(zero loss), {report['torn_tails_seen']} torn WAL tails repaired; "
        f"clean burst {burst['sustained_msgs_per_sec']} msgs/s, "
        f"p99 accept {burst['accept_latency_ms']['p99']} ms -> {args.artifact}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
