#!/usr/bin/env python3
"""CI smoke test for the message-lifecycle ledger.

Runs one simulation with the continuous auditor on and asserts the two
properties CI cares about:

* **lifecycle conservation** — every message MTA-IN accepted reached
  exactly one terminal disposition (accepted == delivered + black-dropped
  + filter-dropped + released + deleted + expired + pending-at-horizon),
  with zero stranded messages and zero leaked pending-challenge slots;
* **the run carried real traffic** — nonzero accepted messages,
  quarantines, and digest activity, so a workload regression that empties
  the pipeline fails the job instead of passing vacuously.

Exits nonzero with a diagnostic on any violation. (A broken partition
usually aborts earlier still: the auditor raises LedgerError at the
offending transition.)

Usage::

    PYTHONPATH=src python scripts/audit_smoke.py --preset small --seed 11
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments import run_simulation  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--preset", default="small", help="scale preset (default: small)"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--faults",
        default=None,
        help="optional fault preset (audit must hold under weather too)",
    )
    args = parser.parse_args(argv)

    result = run_simulation(
        args.preset, seed=args.seed, faults=args.faults, audit=True
    )
    stats = result.ledger_stats
    print(
        f"preset={args.preset} seed={args.seed} faults={args.faults}: "
        f"{stats.accepted} accepted = {stats.delivered} delivered "
        f"+ {stats.black_dropped} black + {stats.filter_dropped} filtered "
        f"+ {stats.released} released + {stats.deleted} deleted "
        f"+ {stats.expired} expired + {stats.pending_at_horizon} at-horizon; "
        f"{stats.stranded} stranded, "
        f"{stats.leaked_challenge_slots} leaked challenge slot(s)"
    )

    failures = []
    if not stats.audit:
        failures.append("auditor was not enabled (stats.audit is False)")
    if not stats.conserved:
        failures.extend(f"conservation: {v}" for v in stats.violations)
    if stats.accepted == 0:
        failures.append("no accepted messages — workload produced no traffic")
    if stats.quarantined_total == 0:
        failures.append("no quarantined messages — gray path never exercised")
    if stats.released + stats.deleted == 0:
        failures.append(
            "no releases or deletes — digest/challenge paths never exercised"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("audit smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
