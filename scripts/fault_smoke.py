#!/usr/bin/env python3
"""CI smoke test for the fault-injection substrate.

Runs one simulation with network weather enabled and asserts the two
properties CI cares about:

* **delivery conservation** — every message handed to an outbound MTA
  reached exactly one terminal status (DELIVERED/BOUNCED/EXPIRED), with
  nothing still in flight after the drain;
* **the weather actually happened** — nonzero greylist deferrals and
  scheduled retries, so a silently-disabled fault plan fails the job
  instead of passing vacuously.

Exits nonzero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/fault_smoke.py --preset small --seed 11 --faults stormy
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments import run_simulation  # noqa: E402
from repro.experiments.runner import _unique_mtas  # noqa: E402
from repro.net.faults import fault_preset_names  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--preset", default="small", help="scale preset (default: small)"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--faults",
        default="stormy",
        choices=[n for n in fault_preset_names() if n != "off"],
        help="fault preset (default: stormy)",
    )
    args = parser.parse_args(argv)

    result = run_simulation(args.preset, seed=args.seed, faults=args.faults)
    stats = result.fault_stats
    print(
        f"preset={args.preset} seed={args.seed} faults={args.faults}: "
        f"{stats.messages_sent} sent = {stats.delivered} delivered "
        f"+ {stats.bounced} bounced + {stats.expired} expired "
        f"(drained {stats.drained}); "
        f"{stats.greylist_deferrals} greylist deferrals, "
        f"{stats.storm_rejections} storm rejections, "
        f"{stats.outage_failures} outage failures, "
        f"{stats.dns_failures} DNS failures, "
        f"{stats.retries_scheduled} retries scheduled"
    )

    failures = []
    if not stats.conserved:
        failures.append(
            "delivery conservation violated: "
            f"{stats.messages_sent} != "
            f"{stats.delivered} + {stats.bounced} + {stats.expired}"
        )
    in_flight = sum(m.in_flight for m in _unique_mtas(result.installations))
    if in_flight:
        failures.append(f"{in_flight} messages still in flight after drain")
    if not stats.enabled:
        failures.append("fault plan was not installed (stats.enabled is False)")
    if stats.greylist_deferrals == 0:
        failures.append("no greylist deferrals — weather did not happen")
    if stats.retries_scheduled == 0:
        failures.append("no retries scheduled — weather did not happen")
    if stats.expired == 0:
        failures.append("no expiries — storms/outages had no visible effect")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("fault smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
