#!/usr/bin/env python3
"""Profile one full simulation + report generation with cProfile.

Future perf PRs should start from this data instead of guessing: the
harness runs ``run_simulation`` at a chosen preset, renders every report
off the resulting store, and prints the top cumulative hotspots of each
stage separately (the simulation and the analysis have very different
profiles and optimising one tells you nothing about the other).

Usage::

    PYTHONPATH=src python scripts/profile_run.py --preset small --seed 11
    PYTHONPATH=src python scripts/profile_run.py --top 40 --sort tottime
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments import run_simulation  # noqa: E402
from repro.experiments.registry import run_all  # noqa: E402
from repro.util.simtime import DAY  # noqa: E402


def _print_stats(profiler: cProfile.Profile, sort: str, top: int) -> None:
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--preset",
        default="small",
        help="scale preset to simulate (default: small)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--faults",
        default=None,
        help="fault-injection preset (off/mild/stormy; default: off)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="enable the continuous lifecycle audit (to profile its cost)",
    )
    parser.add_argument(
        "--crashes",
        default=None,
        help="crash-fault preset (off/rare/flaky; default: off)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="DAYS",
        help="write snapshots every N sim-days (to profile their cost)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the sharded data plane with N company shards",
    )
    parser.add_argument(
        "--shard-jobs",
        type=int,
        default=None,
        metavar="N",
        help="concurrent shard workers (1 = sequential in-process)",
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "spill store chunks under DIR (default: a temporary "
            "directory when --spill is given)"
        ),
    )
    parser.add_argument(
        "--spill",
        action="store_true",
        help="enable the streaming spill store in a temporary directory",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="hotspot rows to print per stage"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        help="pstats sort key (cumulative, tottime, ncalls, ...)",
    )
    args = parser.parse_args(argv)

    checkpoint_dir = None
    if args.checkpoint_every is not None:
        checkpoint_dir = tempfile.mkdtemp(prefix="profile-ckpt-")
    spill_dir = args.spill_dir
    spill_tmp = None
    if args.spill and spill_dir is None:
        spill_dir = spill_tmp = tempfile.mkdtemp(prefix="profile-spill-")

    sim_profiler = cProfile.Profile()
    sim_profiler.enable()
    result = run_simulation(
        args.preset,
        seed=args.seed,
        faults=args.faults,
        audit=args.audit,
        crashes=args.crashes,
        checkpoint_every=(
            args.checkpoint_every * DAY
            if args.checkpoint_every is not None
            else None
        ),
        checkpoint_dir=checkpoint_dir,
        shards=args.shards,
        shard_jobs=args.shard_jobs,
        spill_dir=spill_dir,
    )
    sim_profiler.disable()

    result.store.drop_indices()  # profile a cold analysis index
    report_profiler = cProfile.Profile()
    started = time.perf_counter()
    report_profiler.enable()
    report = run_all(result)
    report_profiler.disable()
    report_seconds = time.perf_counter() - started

    counts = result.store.summary_counts()
    print(f"preset={args.preset} seed={args.seed}")
    print(
        f"simulation: {result.wall_seconds:.2f}s wall, "
        f"{result.events_processed} events, "
        f"{sum(counts.values())} log records"
    )
    memory = result.memory_stats
    if memory is not None:
        print(
            f"peak memory: {memory.max_rss_bytes / 1e6:,.0f} MB RSS; store "
            f"{memory.store_live_rows:,} rows "
            f"({memory.store_live_bytes / 1e6:,.1f} MB) live, "
            f"{memory.store_spilled_bytes / 1e6:,.1f} MB spilled"
        )
    shard_stats = result.shard_stats
    if shard_stats is not None and hasattr(shard_stats, "per_shard"):
        print(
            f"shards: {shard_stats.n_shards} "
            f"(max shard wall {shard_stats.max_shard_wall_seconds:.2f}s, "
            f"{shard_stats.exchange_rows:,} exchange rows)"
        )
        for perf in shard_stats.per_shard:
            print(
                f"  shard {perf.index}: {perf.companies} companies, "
                f"{perf.events_processed:,} events, {perf.wall_seconds:.2f}s, "
                f"RSS {perf.max_rss_bytes / 1e6:,.0f} MB"
            )
    stats = result.cache_stats
    print(
        "substrate caches: "
        f"dns {stats.dns_hits}/{stats.dns_hits + stats.dns_misses} hit "
        f"({100 * stats.dns_hit_rate:.1f}%), "
        f"dnsbl {stats.dnsbl_hits}/{stats.dnsbl_hits + stats.dnsbl_misses} "
        f"({100 * stats.dnsbl_hit_rate:.1f}%), "
        f"route {stats.route_hits}/{stats.route_hits + stats.route_misses} "
        f"({100 * stats.route_hit_rate:.1f}%)"
    )
    crash = result.crash_stats
    if crash is not None and crash.enabled:
        print(
            f"crash injection: {crash.crashes} crashes, "
            f"{crash.inbound_deferred} inbound deferred, "
            f"{crash.redriven} re-driven, {crash.lost} lost"
        )
    ckpt = result.checkpoint_stats
    if ckpt is not None and ckpt.written:
        print(
            f"checkpointing: {ckpt.written} snapshots, "
            f"{ckpt.write_seconds:.3f}s total write "
            f"({ckpt.mean_write_seconds:.3f}s mean, "
            f"{100 * ckpt.write_seconds / result.wall_seconds:.1f}% of wall)"
        )
        from repro.core.recovery import latest_checkpoint, load_checkpoint

        # Sharded runs snapshot under per-shard subdirectories; time the
        # restore of shard 0's newest snapshot in that case.
        snapshot = latest_checkpoint(checkpoint_dir) or latest_checkpoint(
            pathlib.Path(checkpoint_dir) / "shard-0"
        )
        if snapshot is not None:
            started_restore = time.perf_counter()
            load_checkpoint(snapshot)
            print(
                f"restore from {pathlib.Path(snapshot).name}: "
                f"{time.perf_counter() - started_restore:.3f}s"
            )
    if checkpoint_dir is not None:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    print(f"report generation: {report_seconds:.3f}s, {len(report)} chars")
    if spill_tmp is not None:
        shutil.rmtree(spill_tmp, ignore_errors=True)

    print(f"\n--- simulation hotspots (top {args.top}, {args.sort}) ---")
    _print_stats(sim_profiler, args.sort, args.top)
    print(f"\n--- report-generation hotspots (top {args.top}, {args.sort}) ---")
    _print_stats(report_profiler, args.sort, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
