#!/usr/bin/env python3
"""CI smoke test for crash-fault injection + checkpoint/restore.

Runs one audited simulation with component crashes and periodic
checkpoints, then restores from the newest snapshot, and asserts the
properties CI cares about:

* **crashes actually happened** — nonzero injected crashes, so a
  silently-disabled crash plan fails the job instead of passing
  vacuously;
* **zero message loss** — the run completes under the continuous
  lifecycle auditor (any ledger violation raises), the crash counters
  report no lost messages and no journal-rebuild mismatches, and
  outbound delivery conservation holds;
* **resume ≡ uninterrupted** — re-running from the last checkpoint
  produces a byte-identical measurement-store digest.

Writes a JSON timing artifact (checkpoint write/restore seconds, wall
times, crash counts) for the CI job to upload. Exits nonzero with a
diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/crash_smoke.py --preset small --seed 11 \\
        --crashes flaky --artifact crash_smoke_timing.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.core.recovery import latest_checkpoint  # noqa: E402
from repro.experiments import run_simulation  # noqa: E402
from repro.experiments.parallel import store_digest  # noqa: E402
from repro.net.crashes import crash_preset_names  # noqa: E402
from repro.util.simtime import DAY  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--preset", default="small", help="scale preset (default: small)"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--crashes",
        default="flaky",
        choices=[n for n in crash_preset_names() if n != "off"],
        help="crash preset (default: flaky)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=5.0,
        metavar="DAYS",
        help="snapshot interval in simulated days (default: 5)",
    )
    parser.add_argument(
        "--artifact",
        default="crash_smoke_timing.json",
        metavar="PATH",
        help="where to write the JSON timing artifact",
    )
    args = parser.parse_args(argv)

    failures = []
    with tempfile.TemporaryDirectory(prefix="crash-smoke-") as checkpoint_dir:
        result = run_simulation(
            args.preset,
            seed=args.seed,
            crashes=args.crashes,
            audit=True,
            checkpoint_every=args.checkpoint_every * DAY,
            checkpoint_dir=checkpoint_dir,
        )
        crash = result.crash_stats
        ckpt = result.checkpoint_stats
        digest = store_digest(result.store)
        print(
            f"preset={args.preset} seed={args.seed} crashes={args.crashes}: "
            f"{crash.crashes} crashes "
            f"({', '.join(f'{c}={n}' for c, n in crash.by_component)}); "
            f"{crash.inbound_deferred} inbound deferred, "
            f"{crash.redriven} re-driven, {crash.lost} lost, "
            f"{crash.journals_rebuilt} journals rebuilt "
            f"({crash.journal_mismatches} mismatches); "
            f"{ckpt.written} checkpoints in {ckpt.write_seconds:.3f}s"
        )

        if not crash.enabled:
            failures.append(
                "crash plan was not installed (crash_stats.enabled is False)"
            )
        if crash.crashes == 0:
            failures.append("no crashes injected — the weather was too calm")
        if crash.lost:
            failures.append(f"{crash.lost} messages lost in crashes")
        if crash.journal_mismatches:
            failures.append(
                f"{crash.journal_mismatches} journal rebuild mismatches"
            )
        if result.fault_stats is not None and not result.fault_stats.conserved:
            failures.append("outbound delivery conservation violated")
        if ckpt.written == 0:
            failures.append("no checkpoints written — nothing to restore")

        snapshot = latest_checkpoint(checkpoint_dir)
        resumed_digest = None
        restore_seconds = None
        resumed_wall = None
        if snapshot is None:
            failures.append("no snapshot found to resume from")
        else:
            resumed = run_simulation(resume_from=str(snapshot))
            resumed_digest = store_digest(resumed.store)
            restore_seconds = resumed.checkpoint_stats.restore_seconds
            resumed_wall = resumed.wall_seconds
            print(
                f"resumed from {pathlib.Path(snapshot).name} "
                f"(restore {restore_seconds:.3f}s, "
                f"re-run {resumed_wall:.1f}s wall)"
            )
            if resumed_digest != digest:
                failures.append(
                    "resume is not byte-identical: "
                    f"{resumed_digest[:16]} != {digest[:16]}"
                )

    artifact = {
        "preset": args.preset,
        "seed": args.seed,
        "crashes": args.crashes,
        "crash_count": crash.crashes,
        "crashes_by_component": dict(crash.by_component),
        "messages_lost": crash.lost,
        "journal_mismatches": crash.journal_mismatches,
        "wall_seconds": result.wall_seconds,
        "resumed_wall_seconds": resumed_wall,
        "checkpoints_written": ckpt.written,
        "checkpoint_write_seconds": ckpt.write_seconds,
        "checkpoint_mean_write_seconds": ckpt.mean_write_seconds,
        "restore_seconds": restore_seconds,
        "store_digest": digest,
        "resumed_store_digest": resumed_digest,
        "resume_identical": resumed_digest == digest,
    }
    with open(args.artifact, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"timing artifact written to {args.artifact}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("crash smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
