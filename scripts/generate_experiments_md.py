#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a fresh benchmark-scale run.

Runs the `bench` preset (the paper's 47-company deployment over six
simulated weeks), renders every experiment's paper-vs-measured report, and
assembles EXPERIMENTS.md. Also refreshes the reports/ directory.
"""

import json
import pathlib
import sys

from repro.experiments import run_simulation
from repro.experiments.registry import CANONICAL_ORDER, EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parent.parent

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated from one
simulated deployment at the `bench` scale preset (the paper's 47 companies
/ 13 open relays, six simulated weeks, seed 7). Regenerate with::

    python scripts/generate_experiments_md.py

or run the benchmark harness (each bench writes its report to `reports/`
and asserts the bands)::

    pytest benchmarks/ --benchmark-only

## How to read the numbers

* We reproduce **shapes, ratios and orderings**, not absolute counts: the
  substrate is a calibrated simulator, not the authors' six-month
  commercial traces (see DESIGN.md for the substitution argument).
* Quantities used to *calibrate* the workload (the §2 drop table, the
  Fig. 1 flow, filter-drop shares, CAPTCHA behaviour rates) are expected
  to match closely; everything *derived* (reflection/backscatter ratios,
  correlations, cluster statistics, blacklisting dynamics, SPF what-ifs)
  is emergent from the mechanisms and is the actual reproduction result.
* Known deviations are listed per experiment below; the paper itself is
  internally inconsistent on a few internal percentages (see DESIGN.md §10),
  in which case we quote all of its variants.

"""

SECTIONS = [
    (
        "tab_drop",
        "Sec. 2 drop table + Fig. 2 — MTA-IN treatment",
        "Calibrated: the drop-reason mix and the ~25 % pass rate anchor the "
        "workload. The unknown-recipient share runs a few points above the "
        "paper because our closed-relay total also absorbs the paper's "
        "unattributed drop mass (the published reasons only sum to 68.9 %, "
        "while its Fig. 1 implies 75.1 % dropped).",
    ),
    (
        "fig1",
        "Fig. 1 — lifecycle of incoming email (per 1000 at MTA-IN)",
        "Mostly calibrated; the challenge count and the released-to-inbox "
        "counts are emergent (dedup, filter interaction, solve behaviour).",
    ),
    (
        "fig3",
        "Fig. 3 — categories at the internal processing engine",
        "The paper quotes three inconsistent values for the filters' share "
        "of gray mail (54 % in Fig. 3, 62.9 % derivable from Table 1, "
        "77.5 % in §5.2); we land inside that corridor. The open-relay "
        "extra challenge rate is emergent from relayed traffic having no "
        "whitelists and a slice of snowshoe senders.",
    ),
    (
        "tab1",
        "Table 1 — general statistics",
        "Absolute counts scale with simulated volume; compare the per-mille "
        "share columns. The aggregate gray share exceeds the paper's "
        "because our 13 open relays carry proportionally more relayed spam "
        "than the paper's (unpublished) relay volumes.",
    ),
    (
        "tab1_daily",
        "Table 1 (daily statistics) — temporal structure",
        "The per-day rates behind Table 1's bottom block, plus the weekday "
        "structure the paper does not report: legitimate traffic dips on "
        "weekends far harder than spam does.",
    ),
    (
        "fig4a",
        "Fig. 4 — challenge delivery status and CAPTCHA statistics",
        "Emergent from the spoofed-sender mix and behaviour models: "
        "delivered ~50 %, non-existent recipients dominating the bounces, "
        "~94 % of delivered challenges never opened, nobody needing more "
        "than five CAPTCHA attempts. The paper reports the solved share "
        "both as 4 % of delivered (§3.2) and 3.5 % of sent (Table 1); we "
        "sit between the two.",
    ),
    (
        "sec31",
        "Sec. 3.1–3.3 — reflection ratio, backscatter, traffic pollution",
        "The headline reproduction: R ≈ 19.3 % at the CR filter, "
        "worst-case backscatter β ≈ 9 %, reflected-traffic ratio RT ≈ "
        "2.3 %. Two documented deviations: R at MTA-IN (and hence "
        "emails-per-challenge) runs above the paper's 4.8 % because our 13 "
        "open relays accept — and reflect — proportionally more relayed "
        "mail than the paper's unpublished relay volumes; and the share of "
        "gray senders rescued from the digest sits below the paper's ~2 % "
        "because our users decide on each digest entry exactly once "
        "(re-rolling daily would overshoot the digest-release volume "
        "instead).",
    ),
    (
        "fig5",
        "Fig. 5 — per-company variability and correlations",
        "Fully emergent: reflection confined to a narrow band and "
        "uncorrelated with company size/volume; solved share strongly "
        "positively correlated with the white share; white share mildly "
        "anti-correlated with reflection.",
    ),
    (
        "fig6",
        "Fig. 6 / Sec. 4.1 — spam clustering and spurious deliveries",
        "Emergent: hundreds of exact-subject clusters, a small minority "
        "containing any solved challenge; high sender-similarity "
        "(marketing) clusters reach near-total solve rates while botnet "
        "clusters bounce ~30-40 % and solve one or two at most; spurious "
        "spam deliveries in the 1-per-10,000-challenges regime. Cluster "
        "counts scale with simulated volume (threshold scaled per preset).",
    ),
    (
        "fig7",
        "Fig. 7/8 + Sec. 4.2 — delivery delay",
        "Captcha-release delays reproduce the fast knee (tens of minutes) "
        "with the 4-hour saturation; digest releases span ~11 h to 3 days. "
        "The >1-day inbox share lands near the paper's 0.6 %.",
    ),
    (
        "fig9",
        "Fig. 9/10 + Sec. 4.3 — whitelist churn and digest burden",
        "The per-60-day histogram reproduces the paper's heavy low-end "
        "(most whitelists gain 1-10 entries) with a thinning tail, and the "
        "shares of high-churn users stay in the single digits. Fig. 10's "
        "three contrasted digest profiles are picked from the run.",
    ),
    (
        "fig11",
        "Fig. 11 / Sec. 5.1 — challenge-server blacklisting",
        "Emergent from trap-hit dynamics: most servers never listed, a "
        "handful listed for long stretches (the trap-affinity outliers), "
        "no correlation between challenge volume and listing, and the top "
        "challenge senders staying clean.",
    ),
    (
        "fig12",
        "Fig. 12 / Sec. 5.2 — offline SPF validation",
        "Emergent from the DNS/SPF ecosystem: dropping SPF hard-fails "
        "would prune expired challenges hardest, bounced ones next, at a "
        "sub-percent cost in solved challenges. See "
        "examples/spf_ablation.py for the deployed (inline) version.",
    ),
    (
        "sec6",
        "Sec. 6 — discussion summary figures",
        "The cross-cutting numbers the paper leads its discussion with.",
    ),
]


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print(f"Running bench deployment (seed {seed}) ...")
    result = run_simulation("bench", seed=seed)
    print(f"done in {result.wall_seconds:.0f}s; rendering reports ...")

    reports_dir = ROOT / "reports"
    reports_dir.mkdir(exist_ok=True)

    parts = [HEADER]
    parts.append(
        f"Run: preset `bench`, seed {seed}, "
        f"{len(result.store.mta):,} messages, "
        f"{result.info.n_companies} companies, "
        f"{result.info.horizon_days:.0f} days "
        f"({result.wall_seconds:.0f}s wall time).\n"
    )
    for exp_id, title, commentary in SECTIONS:
        report = EXPERIMENTS[exp_id](result)
        (reports_dir / f"{exp_id}.txt").write_text(report + "\n")
        parts.append(f"## {title}\n")
        parts.append(commentary + "\n")
        parts.append("```\n" + report + "\n```\n")

    # The verdicts experiment needs an attacked run: overlay one pack
    # scenario (tiny scale keeps the regeneration cheap) and render its
    # machine-checked verdict table.
    print("Running trap-bombing scenario (tiny, seed 7) ...")
    attacked = run_simulation("tiny", seed=7, scenario="trap-bombing")
    report = EXPERIMENTS["verdicts"](attacked)
    (reports_dir / "verdicts.txt").write_text(report + "\n")
    parts.append("## Scenario verdicts — the Sec. 6 attacks as data\n")
    parts.append(
        "The declarative pack under `scenarios/` turns the attacks the "
        "paper could only discuss (trap bombing, whitelist spoofing and "
        "poisoning, backscatter storms, CAPTCHA farms) plus two benign "
        "stress cases into named, hashable specs with machine-checked "
        "pass/fail verdicts. Shown here: the trap-bombing scenario at "
        "the `tiny` preset; run any of them with "
        "`repro run --scenario <name>` (see `repro scenarios`).\n"
    )
    parts.append("```\n" + report + "\n```\n")

    # The frontier experiment is a cross-run sweep (chain compositions x
    # scenarios x seeds, tiny scale, through the shared result cache);
    # it ignores the run it's handed.
    print("Running FP/FN frontier sweep (tiny, seeds 3/5/7) ...")
    report = EXPERIMENTS["frontier"](attacked)
    (reports_dir / "frontier.txt").write_text(report + "\n")
    parts.append("## FP/FN frontier — CR vs. the competing-filter baselines\n")
    parts.append(
        "The comparison the paper could only cite (Sec. 1, Erickson et "
        "al.): the same simulated deployment re-run under each filter-chain "
        "composition — pure CR (no auxiliary filters), the shipped product "
        "chain, an online naive-Bayes content filter alone, a sender-"
        "reputation filter alone, and the full hybrid — across the whole "
        "scenario pack, with end-to-end inbox-truth false-positive and "
        "false-negative rates per cell (averaged over seeds 3/5/7). "
        "Machine-checked: every cell must evaluate, and pure CR must beat "
        "the naive-Bayes chain on clean-row false positives. Regenerate "
        "with `make frontier` (reduced) or "
        "`repro experiment frontier` (full).\n"
    )
    parts.append("```\n" + report + "\n```\n")
    smoke = ROOT / "serve_smoke_report.json"
    if smoke.exists():
        chaos = json.loads(smoke.read_text())
        burst = chaos["clean_burst"]
        latency = burst["accept_latency_ms"]
        parts.append("## Live service mode — durability and throughput\n")
        parts.append(
            "The asyncio SMTP/HTTP frontend (DESIGN.md §15) under the "
            "chaos gate: randomized `kill -9` injections against the "
            "real server subprocess under open-loop load, zero "
            "accepted-message loss asserted via WAL replay + ledger "
            "reconciliation on every restart. Regenerate with "
            "`make serve-smoke` (the numbers below are the committed "
            "`serve_smoke_report.json`; CI re-runs the gate and uploads "
            "a fresh artifact).\n"
        )
        parts.append(
            "```\n"
            f"kill -9 injections          {chaos['kills']}\n"
            f"acked by clients (killed)   {chaos['cumulative_acked']}\n"
            f"accepted after replay       "
            f"{chaos['final_reconciliation']['accepted']}\n"
            f"zero accepted-message loss  {chaos['zero_loss']}\n"
            f"torn WAL tails repaired     {chaos['torn_tails_seen']}\n"
            f"graceful SIGTERM exit       {chaos['graceful_exit_code']}\n"
            "\n"
            "clean burst (open-loop, measured from scheduled arrival)\n"
            f"offered rate                {burst['offered_rate']:.0f} msgs/s\n"
            f"sustained                   "
            f"{burst['sustained_msgs_per_sec']} msgs/s\n"
            f"accept latency p50/p99/max  {latency['p50']} / "
            f"{latency['p99']} / {latency['max']} ms\n"
            "```\n"
        )
    stability = reports_dir / "scale_stability.txt"
    if stability.exists():
        parts.append("## Appendix — scale stability\n")
        parts.append(
            "The same headline quantities at two simulation scales (~0.5M "
            "and ~2M messages; regenerate with "
            "`python scripts/scale_stability.py`):\n"
        )
        parts.append("```\n" + stability.read_text().rstrip() + "\n```\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
