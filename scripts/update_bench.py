#!/usr/bin/env python
"""Measure hot-path throughput and maintain the committed bench trajectory.

The repo commits one ``BENCH_PR<n>.json`` per performance-relevant PR (the
*trajectory*): a pinned-preset throughput measurement that future changes
are compared against. ``tests/test_bench_trajectory.py`` validates the
committed files; the CI bench job runs this script in ``--check`` mode.

Methodology
-----------

* Every repeat is a **fresh subprocess** (no warm allocator/caches from the
  previous repeat) timing ``run_simulation(preset, seed).wall_seconds``.
* ``msgs_per_sec`` is computed from the **best** wall time: best-of-N is
  the standard estimator for "what the code costs" on a machine with
  background noise; the median is recorded alongside for context.
* When a baseline tree is given (``--baseline-src``), repeats of the two
  trees are **interleaved** so host throttling and noise hit both equally,
  and the speedup is a same-host, same-session ratio.

Modes
-----

``--write`` (default)
    Measure this tree and write ``BENCH_PR<pr>.json`` at the repo root.
    With ``--baseline-src`` also records ``speedup_vs_baseline``. When
    neither ``--baseline-src`` nor ``--baseline-commit`` is given, the
    baseline defaults to the **latest committed bench entry** (resolved
    to the commit that last touched its file), *not* to ``pr - 1``: the
    trajectory is legitimately non-contiguous (a PR that ships no
    perf-relevant change writes no entry — PR 8 is such a gap), so the
    predecessor in the trajectory is "the newest entry", never an
    assumed adjacent PR number. Gaps are logged, not errors.

``--check``
    CI regression gate. Reads the newest committed ``BENCH_PR*.json``,
    materialises its recorded ``baseline_commit`` into a temporary git
    worktree, re-measures the live ratio on *this* host, and fails when it
    regressed more than ``--tolerance`` (default 20 %) below the committed
    ``speedup_vs_baseline``. Comparing *ratios* makes the gate
    host-independent — absolute msgs/sec on a CI runner is meaningless
    against numbers committed from a developer machine.

Examples
--------

    # Refresh the current PR's entry against the seed commit:
    python scripts/update_bench.py --pr 6 --baseline-commit 7c77349

    # CI gate:
    python scripts/update_bench.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import re
import statistics
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: One subprocess per repeat: print wall seconds, messages, events.
#: The events read is getattr-based so the same probe runs against
#: baseline trees that predate ``SimulationResult.events_processed``.
_PROBE = """
from repro.experiments.runner import run_simulation
result = run_simulation({preset!r}, seed={seed})
events = getattr(result, "events_processed", 0)
if not events:
    events = result.simulator.events_processed
print(result.wall_seconds, len(result.store.mta), events)
"""

#: Sharding probes (this tree only — never pointed at a baseline).
_FULL_RUN_PROBE = """
import json
from repro.experiments.runner import run_simulation
result = run_simulation({preset!r}, seed={seed})
print(json.dumps({{
    "wall_seconds": result.wall_seconds,
    "messages": len(result.store.mta),
    "events": result.events_processed,
    "max_rss_bytes": result.memory_stats.max_rss_bytes,
}}))
"""

_SHARD_WORKER_PROBE = """
import json
from repro.experiments.runner import run_simulation
result = run_simulation({preset!r}, seed={seed}, shard_of=({index}, {shards}))
print(json.dumps({{
    "wall_seconds": result.wall_seconds,
    "events": result.events_processed,
    "max_rss_bytes": result.memory_stats.max_rss_bytes,
    "local_rows": result.shard_stats.local_rows,
}}))
"""

_SPILL_RUN_PROBE = """
import json, shutil, tempfile
from repro.experiments.runner import run_simulation
d = tempfile.mkdtemp(prefix="bench-spill-")
try:
    result = run_simulation(
        {preset!r}, seed={seed}, spill_dir=d, spill_chunk_rows={chunk_rows}
    )
    print(json.dumps({{
        "wall_seconds": result.wall_seconds,
        "max_rss_bytes": result.memory_stats.max_rss_bytes,
        "spilled_bytes": result.memory_stats.store_spilled_bytes,
        "live_rows": result.memory_stats.store_live_rows,
    }}))
finally:
    shutil.rmtree(d, ignore_errors=True)
"""


def _run_probe(src: pathlib.Path, code: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        check=True,
    )
    return proc.stdout


def _measure_once(src: pathlib.Path, preset: str, seed: int) -> tuple:
    """Run one fresh-subprocess repeat against the tree at *src*."""
    out = _run_probe(src, _PROBE.format(preset=preset, seed=seed))
    wall, messages, events = out.split()
    return float(wall), int(messages), int(events)


def measure_sharding(
    src: pathlib.Path,
    preset: str,
    seed: int,
    shards: int,
    spill_chunk_rows: int,
    repeats: int = 2,
) -> dict:
    """Honest sharding measurement on whatever box this runs on.

    Each shard worker runs **sequentially in its own fresh subprocess**,
    so its wall time and RSS high-water are what that worker would cost
    on a dedicated core — on a 1-core box a live N-worker pool would
    just timeslice and prove nothing. The projected N-core speedup is
    ``wall(shards=1) / max(per-shard wall)``: with one worker per core
    the run finishes when the slowest shard does. Repeats are
    **interleaved** (full run, then every shard, then again) and best-of
    is taken per configuration, so a host-speed swing between minutes
    can't land entirely on one side of the ratio. A spill run of the
    same workload records the bounded-memory counterpart.
    """
    cores = os.cpu_count() or 1
    print(f"sharding measurement: {preset!r} seed={seed} shards={shards} "
          f"x{repeats} interleaved repeats on {cores} core(s)", flush=True)
    full = None
    per_shard: list = [None] * shards
    for rep in range(repeats):
        run = json.loads(
            _run_probe(src, _FULL_RUN_PROBE.format(preset=preset, seed=seed))
        )
        if full is None or run["wall_seconds"] < full["wall_seconds"]:
            full = run
        print(f"  [{rep + 1}/{repeats}] shards=1: "
              f"{run['wall_seconds']:.2f}s, "
              f"{run['max_rss_bytes'] / 1e6:,.0f} MB RSS", flush=True)
        for index in range(shards):
            worker = json.loads(
                _run_probe(
                    src,
                    _SHARD_WORKER_PROBE.format(
                        preset=preset, seed=seed, index=index, shards=shards
                    ),
                )
            )
            best = per_shard[index]
            if best is None or worker["wall_seconds"] < best["wall_seconds"]:
                per_shard[index] = worker
            print(f"  [{rep + 1}/{repeats}] shard {index}/{shards}: "
                  f"{worker['wall_seconds']:.2f}s, "
                  f"{worker['max_rss_bytes'] / 1e6:,.0f} MB RSS, "
                  f"{worker['local_rows']:,} local rows", flush=True)
    spill = json.loads(
        _run_probe(
            src,
            _SPILL_RUN_PROBE.format(
                preset=preset, seed=seed, chunk_rows=spill_chunk_rows
            ),
        )
    )
    print(f"  spill    : {spill['wall_seconds']:.2f}s, "
          f"{spill['max_rss_bytes'] / 1e6:,.0f} MB RSS, "
          f"{spill['spilled_bytes'] / 1e6:,.0f} MB spilled", flush=True)
    max_shard_wall = max(w["wall_seconds"] for w in per_shard)
    return {
        "preset": preset,
        "seed": seed,
        "shards": shards,
        "cores": cores,
        "wall_seconds_shards1": round(full["wall_seconds"], 2),
        "messages": full["messages"],
        "events": full["events"],
        "max_rss_bytes_shards1": full["max_rss_bytes"],
        "per_shard": [
            {
                "wall_seconds": round(w["wall_seconds"], 2),
                "events": w["events"],
                "max_rss_bytes": w["max_rss_bytes"],
                "local_rows": w["local_rows"],
            }
            for w in per_shard
        ],
        "max_shard_wall_seconds": round(max_shard_wall, 2),
        "projected_speedup_ncore": round(
            full["wall_seconds"] / max_shard_wall, 2
        ),
        "spill": {
            "chunk_rows": spill_chunk_rows,
            "wall_seconds": round(spill["wall_seconds"], 2),
            "max_rss_bytes": spill["max_rss_bytes"],
            "spilled_bytes": spill["spilled_bytes"],
            "live_rows": spill["live_rows"],
        },
    }


def measure(
    src: pathlib.Path,
    preset: str,
    seed: int,
    repeats: int,
    baseline_src: pathlib.Path = None,
) -> dict:
    """Interleaved fresh-subprocess measurement of one or two trees."""
    walls, base_walls = [], []
    messages = events = 0
    for i in range(repeats):
        wall, messages, events = _measure_once(src, preset, seed)
        walls.append(wall)
        print(f"  repeat {i + 1}/{repeats}: {wall:.3f}s", flush=True)
        if baseline_src is not None:
            base_wall, _, _ = _measure_once(baseline_src, preset, seed)
            base_walls.append(base_wall)
            print(f"  baseline    : {base_wall:.3f}s", flush=True)
    out = {
        "wall_seconds_best": round(min(walls), 4),
        "wall_seconds_median": round(statistics.median(walls), 4),
        "messages": messages,
        "events": events,
        "msgs_per_sec": round(messages / min(walls), 1),
    }
    if base_walls:
        out["baseline_wall_seconds_best"] = round(min(base_walls), 4)
        out["speedup_vs_baseline"] = round(min(base_walls) / min(walls), 3)
    return out


def committed_entries() -> list:
    """All BENCH_PR*.json at the repo root, sorted by PR number."""
    entries = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match:
            data = json.loads(path.read_text())
            entries.append((int(match.group(1)), path, data))
    return sorted(entries)


def trajectory_gaps(prs: list) -> list:
    """PR numbers absent from a sorted trajectory.

    A gap is a PR that shipped no bench entry (PR 8 shipped no
    perf-relevant change). Gaps are legal; they are surfaced so a
    *deleted* entry is noticed rather than silently skipped over.
    """
    gaps = []
    for prev, cur in zip(prs, prs[1:]):
        gaps.extend(range(prev + 1, cur))
    return gaps


def describe_trajectory(entries: list) -> str:
    """One log line stating the committed PRs and any numbering gaps."""
    prs = [pr for pr, _, _ in entries]
    line = f"trajectory: PRs {prs}"
    gaps = trajectory_gaps(prs)
    if gaps:
        line += (
            f"; no bench entry for PR(s) {gaps} — tolerated, the "
            f"baseline is the latest committed entry, not PR-minus-1"
        )
    return line


def entry_commit(path: pathlib.Path) -> str:
    """The commit that last touched a committed bench entry.

    That commit's tree produced the entry's numbers, which makes it the
    natural default baseline for the *next* entry. Returns "" outside a
    git checkout or for an uncommitted file.
    """
    proc = subprocess.run(
        ["git", "log", "-n", "1", "--format=%h", "--", path.name],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.stdout.strip() if proc.returncode == 0 else ""


def resolve_default_baseline(args: argparse.Namespace) -> None:
    """Fill in --baseline-commit/--baseline-pr from the trajectory.

    Only runs when the caller gave no baseline at all. Picks the latest
    committed entry with a PR number below the one being written — which
    may be several numbers back when intervening PRs shipped no entry —
    and resolves it to the commit that last touched its file.
    """
    entries = committed_entries()
    if entries:
        print(describe_trajectory(entries))
    prior = [e for e in entries if e[0] < args.pr]
    if not prior:
        print("no prior committed entry: writing a baseline-less entry")
        return
    base_pr, base_path, _ = prior[-1]
    commit = entry_commit(base_path)
    if not commit:
        print(f"cannot resolve the commit of {base_path.name}: "
              "writing a baseline-less entry")
        return
    args.baseline_commit = commit
    if args.baseline_pr is None:
        args.baseline_pr = base_pr
    print(
        f"baseline defaulted to the latest committed entry: "
        f"PR {base_pr} at {commit}"
    )


def cmd_write(args: argparse.Namespace) -> int:
    baseline_src = None
    worktree = None
    if args.baseline_src is None and args.baseline_commit is None:
        resolve_default_baseline(args)
    try:
        if args.baseline_src:
            baseline_src = pathlib.Path(args.baseline_src) / "src"
        elif args.baseline_commit:
            worktree = tempfile.mkdtemp(prefix="bench-baseline-")
            subprocess.run(
                ["git", "worktree", "add", "--detach", worktree,
                 args.baseline_commit],
                cwd=REPO_ROOT,
                check=True,
                capture_output=True,
            )
            baseline_src = pathlib.Path(worktree) / "src"
        print(
            f"measuring {args.preset!r} seed={args.seed} "
            f"x{args.repeats} repeats"
        )
        result = measure(
            REPO_ROOT / "src", args.preset, args.seed, args.repeats,
            baseline_src,
        )
        entry = {
            "schema": 1,
            "pr": args.pr,
            "preset": args.preset,
            "seed": args.seed,
            "repeats": args.repeats,
            "workload_epoch": args.workload_epoch,
            **result,
            "baseline_pr": args.baseline_pr,
            "baseline_commit": args.baseline_commit,
            "python": platform.python_version(),
            "notes": args.notes,
        }
        if args.measure_sharding:
            entry["sharding"] = measure_sharding(
                REPO_ROOT / "src",
                args.shard_preset,
                args.shard_seed,
                args.shard_count,
                args.spill_chunk_rows,
                repeats=args.shard_repeats,
            )
        path = REPO_ROOT / f"BENCH_PR{args.pr}.json"
        path.write_text(json.dumps(entry, indent=2) + "\n")
        print(f"wrote {path}")
        print(json.dumps(entry, indent=2))
        return 0
    finally:
        if worktree is not None:
            subprocess.run(
                ["git", "worktree", "remove", "--force", worktree],
                cwd=REPO_ROOT,
                capture_output=True,
            )


def cmd_check(args: argparse.Namespace) -> int:
    entries = committed_entries()
    if not entries:
        print("FAIL: no committed BENCH_PR*.json — the bench trajectory "
              "gate requires at least one committed entry.")
        return 1
    print(describe_trajectory(entries))
    pr, path, data = entries[-1]
    committed_ratio = data.get("speedup_vs_baseline")
    baseline_commit = data.get("baseline_commit")
    if committed_ratio is None or baseline_commit is None:
        print(f"FAIL: {path.name} has no baseline to check against.")
        return 1
    print(
        f"checking PR {pr}: committed speedup {committed_ratio}x vs "
        f"{baseline_commit} ({data['preset']!r} seed={data['seed']})"
    )
    worktree = tempfile.mkdtemp(prefix="bench-baseline-")
    try:
        subprocess.run(
            ["git", "worktree", "add", "--detach", worktree, baseline_commit],
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
        )
        result = measure(
            REPO_ROOT / "src",
            data["preset"],
            data["seed"],
            args.repeats,
            pathlib.Path(worktree) / "src",
        )
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", worktree],
            cwd=REPO_ROOT,
            capture_output=True,
        )
    live_ratio = result["speedup_vs_baseline"]
    floor = committed_ratio * (1.0 - args.tolerance)
    print(
        f"live speedup {live_ratio}x (committed {committed_ratio}x, "
        f"floor {floor:.3f}x at {args.tolerance:.0%} tolerance)"
    )
    if live_ratio < floor:
        print("FAIL: hot-path throughput regressed below the committed "
              "trajectory.")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="CI regression gate (see module docstring)")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number for the new BENCH_PR<n>.json")
    parser.add_argument("--preset", default="small")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--baseline-src", default=None,
                        help="path to a checked-out baseline tree")
    parser.add_argument("--baseline-commit", default=None,
                        help="git ref to measure the baseline from")
    parser.add_argument("--baseline-pr", type=int, default=None)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional ratio regression in --check")
    parser.add_argument("--workload-epoch", type=int, default=1,
                        help="bump when a PR legitimately changes the event "
                             "count of the pinned workload (messages must "
                             "still match; see tests/test_bench_trajectory)")
    parser.add_argument("--measure-sharding", action="store_true",
                        help="also record a sharded-data-plane measurement "
                             "(per-shard fresh-subprocess walls + spill RSS) "
                             "in the entry's 'sharding' object")
    parser.add_argument("--shard-preset", default="medium",
                        help="preset for --measure-sharding (pinned: medium)")
    parser.add_argument("--shard-seed", type=int, default=11)
    parser.add_argument("--shard-count", type=int, default=4)
    parser.add_argument("--shard-repeats", type=int, default=2)
    parser.add_argument("--spill-chunk-rows", type=int, default=50000)
    parser.add_argument("--notes", default="")
    args = parser.parse_args(argv)
    if args.check:
        return cmd_check(args)
    if args.pr is None:
        parser.error("--pr is required when writing a bench entry")
    return cmd_write(args)


if __name__ == "__main__":
    sys.exit(main())
