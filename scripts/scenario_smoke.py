#!/usr/bin/env python3
"""CI smoke test for the declarative scenario pack.

Runs **every** scenario in ``scenarios/`` at a small scale with the
lifecycle auditor on and asserts the three properties CI cares about:

* **every verdict check evaluates** — each check produces a clean
  pass-or-fail observation; a check whose metric computation errors
  (``CheckResult.error``) fails the job, whatever its verdict;
* **the attack actually happened** — nonzero attack-campaign dispatch
  records, so a scenario whose attack silently never fires fails the
  job instead of passing vacuously;
* **ledger conservation under attack** — the audited run's message
  ledger still balances (every accepted message reached exactly one
  terminal disposition) with adversarial traffic in the mix.

Exits nonzero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/scenario_smoke.py --preset tiny --seed 7
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.verdicts import evaluate  # noqa: E402
from repro.experiments import run_simulation  # noqa: E402
from repro.scenarios import load_scenario, scenario_names  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--preset", default="tiny", help="scale preset (default: tiny)"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    names = scenario_names()
    if not names:
        print("FAIL: scenario pack is empty", file=sys.stderr)
        return 1

    failures = []
    for name in names:
        spec = load_scenario(name)
        result = run_simulation(
            args.preset, seed=args.seed, scenario=spec, audit=True
        )

        attack_rows = sum(
            1
            for r in result.store.dispatch
            if (r.campaign_id or "").startswith("attack-")
        )
        verdict = evaluate(result, spec)
        n_passed = sum(1 for c in verdict.checks if c.passed)
        ledger = result.ledger_stats
        print(
            f"{name}: {attack_rows} attack rows, "
            f"{n_passed}/{len(verdict.checks)} checks passed, "
            f"verdict {'PASS' if verdict.passed else 'FAIL'}, "
            f"ledger {ledger.accepted} accepted"
        )

        if attack_rows == 0:
            failures.append(f"{name}: attack never fired (0 dispatch rows)")
        for check in verdict.checks:
            if check.error is not None:
                failures.append(
                    f"{name}: check {check.name!r} errored instead of "
                    f"evaluating: {check.error}"
                )
        if not (ledger.audit and ledger.conserved):
            failures.append(f"{name}: ledger conservation violated")
        if ledger.accepted != ledger.terminal_total:
            failures.append(
                f"{name}: {ledger.accepted} accepted != "
                f"{ledger.terminal_total} terminal"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"scenario smoke OK ({len(names)} scenarios)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
