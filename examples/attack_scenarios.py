#!/usr/bin/env python3
"""Attacks the paper scoped out, evaluated end-to-end (§6 / Limitations).

Two adversarial scenarios against one victim company:

1. **Trap bombing** — the attacker forges spam whose envelope senders are
   spam-trap addresses, so every reflected challenge hits a trap and the
   victim's challenge server gets blacklisted ("an attacker could
   intentionally forge malicious messages with the goal of forcing the
   server to send back the challenge to spam trap addresses", §6).
2. **Whitelist spoofing** — the attacker forges likely-whitelisted sender
   addresses, walking spam straight into the inbox ("trying to spoof the
   sender address using a likely-whitelisted address", §7/Limitations).

For each attack the study compares a baseline run against an attacked run
of the *same seed* and reports the damage.

Usage::

    python examples/attack_scenarios.py [--preset tiny|small] [--seed N]
"""

import argparse

from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.experiments import run_simulation
from repro.util.render import TextTable
from repro.util.simtime import DAY
from repro.workload.attacks import TrapBombingAttack, WhitelistSpoofingAttack

VICTIM = "c01"


def listed_days(result, ip):
    days = set()
    for probe in result.store.probes:
        if probe.ip == ip and probe.listed:
            days.add(int(probe.t // DAY))
    return len(days)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rate", type=float, default=120.0,
                        help="attack messages per day")
    args = parser.parse_args()

    print("Baseline run ...")
    baseline = run_simulation(args.preset, seed=args.seed)

    print("Trap-bombing run ...")
    bombed = run_simulation(
        args.preset,
        seed=args.seed,
        scenarios=[
            TrapBombingAttack(
                company_id=VICTIM, messages_per_day=args.rate,
                start_day=1, duration_days=6,
            )
        ],
    )
    print("Whitelist-spoofing run ...")
    spoofed = run_simulation(
        args.preset,
        seed=args.seed,
        scenarios=[
            WhitelistSpoofingAttack(
                company_id=VICTIM, messages_per_day=args.rate,
                start_day=1, duration_days=6, guess_prob=0.5,
            )
        ],
    )

    victim_ip = baseline.installations[VICTIM].challenge_mta.ip

    table = TextTable(
        headers=["quantity", "baseline", "attacked"],
        title=f"Trap bombing vs {VICTIM} ({args.rate:.0f} msg/day for 6 days)",
    )
    table.add_row(
        "victim challenge-IP listed-days",
        listed_days(baseline, victim_ip),
        listed_days(bombed, victim_ip),
    )
    base_bl = sum(
        1 for o in baseline.store.challenge_outcomes
        if o.company_id == VICTIM and o.bounce_reason is not None
        and o.bounce_reason.value == "blacklisted"
    )
    bomb_bl = sum(
        1 for o in bombed.store.challenge_outcomes
        if o.company_id == VICTIM and o.bounce_reason is not None
        and o.bounce_reason.value == "blacklisted"
    )
    table.add_row("victim blacklist bounces", base_bl, bomb_bl)
    print()
    print(table.render())

    # Whitelist spoofing damage: attack spam reaching the inbox.
    attack_records = [
        r for r in spoofed.store.dispatch if r.campaign_id == "attack-spoof"
    ]
    delivered_white = sum(
        1 for r in attack_records if r.category is Category.WHITE
    )
    table = TextTable(
        headers=["quantity", "value"],
        title=f"Whitelist spoofing vs {VICTIM} (guess_prob=0.5)",
    )
    table.add_row("attack messages accepted", len(attack_records))
    table.add_row("delivered straight to inbox (whitelisted)", delivered_white)
    if attack_records:
        table.add_row(
            "inbox hit rate",
            f"{100.0 * delivered_white / len(attack_records):.1f}%",
        )
    baseline_inbox_spam = sum(
        1
        for r in baseline.store.dispatch
        if r.kind is MessageKind.SPAM and r.category is Category.WHITE
    )
    table.add_row("(baseline whitelisted spam, whole fleet)", baseline_inbox_spam)
    print()
    print(table.render())
    print(
        "\nReading: CR systems are 'ineffective by design against targeted"
        "\nattacks' (Sec. 4.1) — sender knowledge converts directly into"
        "\ninbox deliveries — and a trap-bombing adversary can force the"
        "\nchallenge server onto blacklists at modest cost (Sec. 6)."
    )


if __name__ == "__main__":
    main()
