#!/usr/bin/env python3
"""Attacks the paper scoped out, evaluated end-to-end (§6 / Limitations).

Two adversarial scenarios against one victim company, loaded from the
declarative pack under ``scenarios/`` (the same specs ``repro run
--scenario <name>`` uses):

1. **trap-bombing** — the attacker forges spam whose envelope senders
   are spam-trap addresses, so every reflected challenge hits a trap and
   the victim's challenge server gets blacklisted ("an attacker could
   intentionally forge malicious messages with the goal of forcing the
   server to send back the challenge to spam trap addresses", §6).
2. **whitelist-spoofing** — the attacker forges likely-whitelisted
   sender addresses, walking spam straight into the inbox ("trying to
   spoof the sender address using a likely-whitelisted address",
   §7/Limitations).

For each attack the study compares a baseline run against a scenario run
of the *same seed*, reports the damage, and prints the scenario's own
machine-checked verdict table.

Usage::

    python examples/attack_scenarios.py [--preset tiny|small] [--seed N]
"""

import argparse

from repro.analysis import verdicts
from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.experiments import run_simulation
from repro.scenarios import load_scenario
from repro.util.render import TextTable
from repro.util.simtime import DAY

VICTIM = "c01"


def listed_days(result, ip):
    days = set()
    for probe in result.store.probes:
        if probe.ip == ip and probe.listed:
            days.add(int(probe.t // DAY))
    return len(days)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    bombing = load_scenario("trap-bombing")
    spoofing = load_scenario("whitelist-spoofing")

    print("Baseline run ...")
    baseline = run_simulation(args.preset, seed=args.seed)

    print("Trap-bombing run ...")
    bombed = run_simulation(args.preset, seed=args.seed, scenario=bombing)
    print("Whitelist-spoofing run ...")
    spoofed = run_simulation(args.preset, seed=args.seed, scenario=spoofing)

    victim_ip = baseline.installations[VICTIM].challenge_mta.ip

    table = TextTable(
        headers=["quantity", "baseline", "attacked"],
        title=f"Trap bombing vs {VICTIM} (scenario: {bombing.name})",
    )
    table.add_row(
        "victim challenge-IP listed-days",
        listed_days(baseline, victim_ip),
        listed_days(bombed, victim_ip),
    )
    base_bl = sum(
        1 for o in baseline.store.challenge_outcomes
        if o.company_id == VICTIM and o.bounce_reason is not None
        and o.bounce_reason.value == "blacklisted"
    )
    bomb_bl = sum(
        1 for o in bombed.store.challenge_outcomes
        if o.company_id == VICTIM and o.bounce_reason is not None
        and o.bounce_reason.value == "blacklisted"
    )
    table.add_row("victim blacklist bounces", base_bl, bomb_bl)
    print()
    print(table.render())
    print()
    print(verdicts.render(verdicts.evaluate(bombed, bombing), bombing.description))

    # Whitelist spoofing damage: attack spam reaching the inbox.
    attack_records = [
        r for r in spoofed.store.dispatch if r.campaign_id == "attack-spoof"
    ]
    delivered_white = sum(
        1 for r in attack_records if r.category is Category.WHITE
    )
    table = TextTable(
        headers=["quantity", "value"],
        title=f"Whitelist spoofing vs {VICTIM} (scenario: {spoofing.name})",
    )
    table.add_row("attack messages accepted", len(attack_records))
    table.add_row("delivered straight to inbox (whitelisted)", delivered_white)
    if attack_records:
        table.add_row(
            "inbox hit rate",
            f"{100.0 * delivered_white / len(attack_records):.1f}%",
        )
    baseline_inbox_spam = sum(
        1
        for r in baseline.store.dispatch
        if r.kind is MessageKind.SPAM and r.category is Category.WHITE
    )
    table.add_row("(baseline whitelisted spam, whole fleet)", baseline_inbox_spam)
    print()
    print(table.render())
    print()
    print(verdicts.render(verdicts.evaluate(spoofed, spoofing), spoofing.description))
    print(
        "\nReading: CR systems are 'ineffective by design against targeted"
        "\nattacks' (Sec. 4.1) — sender knowledge converts directly into"
        "\ninbox deliveries — and a trap-bombing adversary can force the"
        "\nchallenge server onto blacklists at modest cost (Sec. 6)."
    )


if __name__ == "__main__":
    main()
