#!/usr/bin/env python3
"""End-user view: what living behind a CR filter feels like (§4).

Reports, from one simulated deployment:

* how much of your inbox arrives instantly vs quarantined-first (Fig. 7,
  §4.2), with the delay CDF of quarantined mail;
* how much spam still leaks through (the §4.1 spurious deliveries);
* how often your whitelist changes (Fig. 9, §4.3);
* the daily digest burden for three contrasted users (Fig. 10).

Usage::

    python examples/user_experience.py [--preset tiny|small|bench]
"""

import argparse

from repro.analysis import churn, clustering, delays
from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.experiments import run_simulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="small")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Simulating preset={args.preset!r} ...")
    result = run_simulation(args.preset, seed=args.seed)
    store = result.store

    print(delays.render(store))
    print()
    print(churn.render(store, result.info))

    # Spam protection scoreboard (§4.1).
    inbox_spam = sum(
        1
        for r in store.releases
        if r.kind is MessageKind.SPAM
    )
    spam_accepted = sum(
        1
        for r in store.dispatch
        if r.kind is MessageKind.SPAM
    )
    spam_white = sum(
        1
        for r in store.dispatch
        if r.kind is MessageKind.SPAM and r.category is Category.WHITE
    )
    stats = clustering.compute(store, result.info)
    print()
    print("Spam protection (Sec. 4.1)")
    print("==========================")
    print(f"  spam messages reaching the dispatcher : {spam_accepted:,}")
    print(f"  spam delivered via whitelist spoofing : {spam_white:,}")
    print(f"  spam released from quarantine         : {inbox_spam:,}")
    print(
        f"  spurious deliveries per 10k challenges: "
        f"{1e4 * stats.spurious_rate:.2f}  (paper: ~1)"
    )
    blocked = spam_accepted - spam_white - inbox_spam
    if spam_accepted:
        print(
            f"  => the CR filter blocked {blocked:,} of {spam_accepted:,} "
            f"spam messages ({100.0 * blocked / spam_accepted:.2f}%)"
        )


if __name__ == "__main__":
    main()
