#!/usr/bin/env python3
"""Backscatter what-if study: how the auxiliary filters shape the
reflection ratio R (§3.1's "Understanding the Reflection Ratio").

The paper argues that R is bounded by two useless extremes: with no
auxiliary filters a CR system "would just act as a spam multiplier"
(R approaching the spam share of traffic), while a perfect internal spam
filter would leave nothing for the CR mechanism to do. This study runs the
same deployment under five filter configurations and reports, for each:

* the reflection ratio R at the CR filter;
* the worst-case backscatter ratio beta;
* how many challenges were sent, and how many were misdirected
  (delivered to people who never mailed us, or bounced into the void).

Each run also overlays the pack's **backscatter-storm** scenario (forged
nonexistent senders at one spoofed victim domain), so the table shows
how the same adversarial reflection load fares under each filter stack;
an explicit ``filters_template`` always overrides whatever the scenario
declares. The deployed configuration's machine verdict prints last.

Usage::

    python examples/backscatter_study.py [--preset tiny|small] [--seed N]
"""

import argparse

from repro.analysis import challenges, reflection, verdicts
from repro.core.config import FilterSettings
from repro.experiments import run_simulation
from repro.scenarios import load_scenario
from repro.util.render import TextTable

CONFIGS = [
    ("no filters (naive CR)", FilterSettings(
        antivirus=False, reverse_dns=False, rbl=False)),
    ("antivirus only", FilterSettings(reverse_dns=False, rbl=False)),
    ("antivirus + reverse DNS", FilterSettings(rbl=False)),
    ("full product (AV+rDNS+RBL)", None),  # per-company defaults
    ("full product + inline SPF", FilterSettings(spf=True)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    storm = load_scenario("backscatter-storm")

    table = TextTable(
        headers=[
            "filter configuration",
            "R (CR filter)",
            "beta (worst case)",
            "challenges sent",
            "delivered, never solved",
            "bounced/expired",
        ],
        title="Sec. 3.1 what-if — reflection vs auxiliary filtering "
        f"(scenario: {storm.name})",
    )
    deployed_result = None
    for label, filters in CONFIGS:
        print(f"running: {label} ...")
        result = run_simulation(
            args.preset,
            seed=args.seed,
            filters_template=filters,
            scenario=storm,
        )
        if label.startswith("full product ("):
            deployed_result = result
        refl = reflection.compute(result.store)
        stats = challenges.compute(result.store)
        table.add_row(
            label,
            f"{100.0 * refl.reflection_cr:.1f}%",
            f"{100.0 * refl.beta_cr:.1f}%",
            refl.challenges,
            stats.delivered - stats.solved,
            stats.resolved - stats.delivered,
        )
    print()
    print(table.render())
    if deployed_result is not None:
        print()
        print(
            verdicts.render(
                verdicts.evaluate(deployed_result, storm), storm.description
            )
        )
    print(
        "\nReading: without filters the CR system reflects a large share of"
        "\nits spam load back at (mostly innocent or non-existent) senders;"
        "\neach added filter trades challenges for silent drops. The paper's"
        "\ndeployed configuration sits at R ~ 19% — enough reflected"
        "\nchallenges to be useful, few enough to bound the backscatter."
    )


if __name__ == "__main__":
    main()
