#!/usr/bin/env python3
"""Administrator view: challenge-server blacklisting (§5.1).

Replays the paper's two measurement methods over a simulated deployment:

1. the bounce-log method — per company, the ratio between challenges sent
   and blacklist-related delivery errors;
2. the probe method — the 4-hourly DNSBL probe of every outbound server
   IP, summarised as listed-days per server.

It then quantifies the benefit of the dual-MTA configuration a third of
the paper's installations used: when the *challenge* IP gets blacklisted,
ordinary user mail keeps flowing from the untainted user-MTA IP.

Usage::

    python examples/admin_blacklist_monitor.py [--preset tiny|small|bench]
"""

import argparse
from collections import defaultdict

from repro.analysis import blacklisting
from repro.experiments import run_simulation
from repro.util.render import TextTable
from repro.util.simtime import DAY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="small")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Simulating preset={args.preset!r} ...")
    result = run_simulation(args.preset, seed=args.seed)
    print(blacklisting.render(result.store, result.info))

    # Dual-MTA mitigation: compare listed-days of challenge IPs vs the
    # user-mail IPs of the same dual-configured companies.
    listed_days = defaultdict(set)
    for probe in result.store.probes:
        if probe.listed:
            listed_days[probe.ip].add(int(probe.t // DAY))

    table = TextTable(
        headers=[
            "company",
            "config",
            "challenge IP listed-days",
            "user-mail IP listed-days",
        ],
        title="Dual-MTA mitigation (Sec. 5.1): damage stays on the challenge IP",
    )
    shown = 0
    for company_id, installation in sorted(result.installations.items()):
        config = installation.config
        challenge_days = len(listed_days.get(config.challenge_ip, ()))
        user_days = len(listed_days.get(config.mta_out_ip, ()))
        if challenge_days == 0 and user_days == 0:
            continue
        table.add_row(
            company_id,
            "dual" if config.dual_outbound else "single",
            challenge_days,
            user_days if config.dual_outbound else "(same IP)",
        )
        shown += 1
    if shown:
        print()
        print(table.render())
    else:
        print("\n(no server was blacklisted during this run)")

    # Probe timeline of the worst server.
    worst_ip = max(
        {p.ip for p in result.store.probes},
        key=lambda ip: len(listed_days.get(ip, ())),
    )
    if listed_days.get(worst_ip):
        days = sorted(listed_days[worst_ip])
        print(
            f"\nWorst server {worst_ip}: listed on {len(days)} days "
            f"(days {days[0]}..{days[-1]} of {result.info.horizon_days:.0f})"
        )


if __name__ == "__main__":
    main()
