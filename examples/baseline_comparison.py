#!/usr/bin/env python3
"""CR vs content filtering: the comparison behind the paper's motivation.

The paper motivates CR systems with Erickson et al.'s finding that they
"outperform traditional systems like SpamAssassin, generating on average
1% of false positives with zero false negatives". This study reruns that
comparison on one simulated deployment:

* a naive-Bayes content filter is trained on the first 30 % of the
  deployment's labelled mail and evaluated on the rest;
* the CR system is judged by what actually reached inboxes over the same
  evaluation slice.

It also sweeps the Bayes decision threshold to show the FP/FN trade-off
content filters are stuck with — the curve CR systems side-step by
shifting the work to senders.

The per-seed deployments are independent, so they fan out over the
parallel runner (``--jobs``) and share the on-disk result cache.

Usage::

    python examples/baseline_comparison.py [--preset tiny|small|bench]
                                           [--runs N] [--jobs N] [--no-cache]
"""

import argparse

from repro.baselines.comparison import (
    build_table,
    compare_defences,
    defences_from_summaries,
    render_sweep,
)
from repro.baselines.naive_bayes import NaiveBayesFilter, score_classifier
from repro.experiments import RunSpec, run_specs
from repro.util.render import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="small")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--runs", type=int, default=3, help="independent seeds (default: 3)"
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="worker processes (default: 2)"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the .cache/runs/ cache"
    )
    args = parser.parse_args()

    seeds = [args.seed + offset for offset in range(args.runs)]
    print(f"Simulating preset={args.preset!r} at seeds {seeds} ...")
    summaries = run_specs(
        [RunSpec(args.preset, seed=seed) for seed in seeds],
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    result = summaries[0]
    comparison = compare_defences(result.store)
    print()
    print(build_table(comparison).render())
    if len(summaries) > 1:
        print()
        print(render_sweep(defences_from_summaries(summaries)))

    # Threshold sweep: the content filter's FP/FN trade-off curve.
    records = result.store.dispatch
    split = int(len(records) * 0.3)
    train, test = records[:split], records[split:]
    table = TextTable(
        headers=["bayes threshold", "false positives", "false negatives"],
        title="Content-filter trade-off curve (Fig.-style sweep)",
    )
    for threshold in (-5.0, -2.0, 0.0, 2.0, 5.0, 10.0):
        bayes = NaiveBayesFilter(threshold=threshold)
        bayes.train_from_records(train)
        score = score_classifier(test, bayes.classify_record)
        table.add_row(
            f"{threshold:+.0f}",
            f"{100.0 * score.false_positive_rate:.2f}%",
            f"{100.0 * score.false_negative_rate:.2f}%",
        )
    print()
    print(table.render())
    print(
        "\nReading: tightening the content filter's threshold trades false"
        "\nnegatives for false positives; the CR system sits off that curve"
        "\n(near-zero FN) because senders authenticate themselves — at the"
        "\ncost of the backscatter externalities measured in Sec. 3."
    )


if __name__ == "__main__":
    main()
