#!/usr/bin/env python3
"""Quickstart: simulate a small CR-protected deployment and print the
paper's headline statistics.

Runs a 6-company deployment for 10 simulated days (a few seconds of wall
time), then regenerates the core artifacts of the paper from the logs:
the MTA drop table (§2), the per-1000 message lifecycle (Fig. 1), the
challenge statistics (Fig. 4), and the reflection/backscatter ratios
(§3.1–3.3).

Usage::

    python examples/quickstart.py [--preset tiny|small|bench] [--seed N]
"""

import argparse

from repro.analysis import challenges, flow, general_stats, mta_breakdown, reflection
from repro.experiments import run_simulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny", help="scale preset")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Simulating preset={args.preset!r} seed={args.seed} ...")
    result = run_simulation(args.preset, seed=args.seed)
    store = result.store
    print(
        f"done in {result.wall_seconds:.1f}s wall time: "
        f"{len(store.mta):,} messages through {result.info.n_companies} "
        f"companies over {result.info.horizon_days:.0f} days\n"
    )

    print(mta_breakdown.render(store))
    print()
    print(flow.render(store))
    print()
    print(challenges.render(store))
    print()
    print(reflection.render(store))
    print()
    print(general_stats.render(store, result.info))


if __name__ == "__main__":
    main()
