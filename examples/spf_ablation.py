#!/usr/bin/env python3
"""SPF ablation: from the paper's offline estimate to an inline filter.

§5.2 / Fig. 12 of the paper estimates — offline, over the gray spool —
what adding an SPF check would buy. This study goes one step further and
actually *deploys* SPF in the product's filter chain, then compares:

* the offline estimate on the baseline run (the paper's method), and
* the measured difference between the baseline deployment and one with
  the inline SPF filter (challenges avoided, solved challenges lost).

The baseline and ablation runs are independent, so they fan out over the
parallel runner (two worker processes by default) and land in the shared
result cache — re-running the study with unchanged parameters simulates
nothing.

Usage::

    python examples/spf_ablation.py [--preset tiny|small] [--seed N]
                                    [--jobs N] [--no-cache]
"""

import argparse

from repro.analysis import challenges, spf_study
from repro.core.config import FilterSettings
from repro.experiments import RunSpec, run_specs
from repro.util.render import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="small")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--jobs", type=int, default=2, help="worker processes (default: 2)"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the .cache/runs/ cache"
    )
    args = parser.parse_args()

    print("Running baseline (no SPF) and inline-SPF deployments ...")
    baseline, with_spf = run_specs(
        [
            RunSpec(args.preset, seed=args.seed, label="baseline"),
            RunSpec(
                args.preset,
                seed=args.seed,
                filters_template=FilterSettings(spf=True),
                label="inline-spf",
            ),
        ],
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )

    print()
    print("Paper's method — offline SPF test over the baseline gray spool:")
    print(spf_study.render(baseline.store))

    base = challenges.compute(baseline.store)
    spf = challenges.compute(with_spf.store)
    table = TextTable(
        headers=["quantity", "baseline", "inline SPF", "change"],
        title="Deployed ablation — what inline SPF actually changes",
    )

    def row(label, a, b):
        change = f"{100.0 * (b - a) / a:+.1f}%" if a else "n/a"
        table.add_row(label, a, b, change)

    row("challenges sent", base.sent, spf.sent)
    row("challenges delivered", base.delivered, spf.delivered)
    row(
        "bounced (non-existent recipient)",
        base.bounced_nonexistent,
        spf.bounced_nonexistent,
    )
    row("expired after retries", base.expired, spf.expired)
    row("challenges solved", base.solved, spf.solved)
    print()
    print(table.render())
    print(
        "\nReading: inline SPF prunes a few percent of the bad challenges"
        "\n(bounced/expired) while costing a fraction of a percent of the"
        "\nsolved ones — matching the offline Fig. 12 estimate. The paper"
        "\nconcludes the trade-off is favourable but small."
    )


if __name__ == "__main__":
    main()
