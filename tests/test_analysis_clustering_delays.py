"""Unit tests for the Fig. 6 clustering and Fig. 7/8 delay analyses."""

import pytest

from repro.analysis import clustering, delays
from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.message import MessageKind
from repro.core.spools import Category, ReleaseMechanism
from repro.net.smtp import BounceReason, FinalStatus
from repro.util.simtime import DAY, HOUR, MINUTE

from tests import recordfactory as rf

INFO = DeploymentInfo(
    n_companies=1,
    n_open_relays=0,
    users_per_company={"c0": 10},
    horizon_days=10.0,
    min_cluster_size=3,
    volume_scale=1.0,
)

LONG_SUBJECT = "alpha beta gamma delta epsilon zeta eta theta iota kappa"
SHORT_SUBJECT = "short subject"


class TestClustering:
    def _store(self):
        store = LogStore()
        # Low-similarity cluster: 4 quarantined spam messages, distinct
        # sender domains; 1 challenge solved, 1 bounced non-existent.
        for i in range(4):
            rf.dispatch(
                store,
                subject=LONG_SUBJECT,
                env_from=f"s{i}@dom{i}.example",
                challenge_id=i + 1,
                challenge_created=True,
                campaign_id="sc-1",
            )
            rf.challenge(store, i + 1)
        rf.outcome(store, 1, status=FinalStatus.DELIVERED)
        rf.web(store, 1, WebAction.SOLVE)
        rf.outcome(
            store,
            2,
            status=FinalStatus.BOUNCED,
            bounce_reason=BounceReason.NONEXISTENT_RECIPIENT,
        )
        # High-similarity cluster: 3 messages from one marketing domain.
        for i in range(3):
            rf.dispatch(
                store,
                subject=LONG_SUBJECT + " marketing edition",
                env_from=f"dept-a.{'pqr'[i]}@scn-9.example",
                challenge_id=100 + i,
                challenge_created=True,
                kind=MessageKind.NEWSLETTER,
            )
            rf.challenge(store, 100 + i)
            rf.outcome(store, 100 + i, status=FinalStatus.DELIVERED)
            rf.web(store, 100 + i, WebAction.SOLVE)
        # Sub-threshold cluster (2 messages) must be discarded.
        for i in range(2):
            rf.dispatch(
                store,
                subject=LONG_SUBJECT + " small",
                challenge_id=None,
                env_from=f"t{i}@tiny{i}.example",
            )
        # Short subjects never cluster.
        for _ in range(5):
            rf.dispatch(store, subject=SHORT_SUBJECT)
        # Filter-dropped messages are not in the gray *spool*.
        for _ in range(5):
            rf.dispatch(store, subject=LONG_SUBJECT, filter_drop="rbl")
        return store

    def test_cluster_count_and_threshold(self):
        stats = clustering.compute(self._store(), INFO)
        assert stats.n_clusters == 2
        sizes = sorted(c.size for c in stats.clusters)
        assert sizes == [3, 4]

    def test_similarity_split(self):
        stats = clustering.compute(self._store(), INFO)
        assert len(stats.high_similarity_clusters) == 1
        assert len(stats.low_similarity_clusters) == 1
        high = stats.high_similarity_clusters[0]
        assert high.dominant_domain_share == 1.0

    def test_solved_counting(self):
        stats = clustering.compute(self._store(), INFO)
        assert stats.clusters_with_solved == 2
        high = stats.high_similarity_clusters[0]
        assert high.solve_rate == pytest.approx(1.0)
        low = stats.low_similarity_clusters[0]
        assert low.solved == 1
        assert low.bounce_rate == pytest.approx(0.25)

    def test_spurious_rate(self):
        store = self._store()
        rf.release(
            store,
            mechanism=ReleaseMechanism.CAPTCHA,
            kind=MessageKind.SPAM,
        )
        stats = clustering.compute(store, INFO)
        assert stats.spurious_deliveries == 1
        assert stats.spurious_rate == pytest.approx(1 / 7)

    def test_digest_releases_not_spurious(self):
        store = self._store()
        rf.release(
            store, mechanism=ReleaseMechanism.DIGEST, kind=MessageKind.SPAM
        )
        assert clustering.compute(store, INFO).spurious_deliveries == 0

    def test_render_smoke(self):
        out = clustering.render(self._store(), INFO)
        assert "Fig. 6" in out
        assert "top" in out

    def test_clusters_partition_eligible_messages(self, tiny_result):
        """Cluster sizes sum to the quarantined messages whose subject is
        long enough and whose cluster meets the size threshold."""
        stats = clustering.compute(tiny_result.store, tiny_result.info)
        from collections import Counter

        eligible = Counter()
        for record in tiny_result.store.dispatch:
            if (
                record.category is Category.GRAY
                and record.filter_drop is None
                and len(record.subject.split()) >= clustering.MIN_SUBJECT_WORDS
            ):
                eligible[record.subject] += 1
        expected = sum(
            n for n in eligible.values()
            if n >= tiny_result.info.min_cluster_size
        )
        assert sum(c.size for c in stats.clusters) == expected


class TestDelays:
    def _store(self):
        store = LogStore()
        for _ in range(90):
            rf.dispatch(store, category=Category.WHITE)
        # 6 captcha releases: 2 under 5 min, 2 under 30 min, 2 slow.
        for delay in (2 * MINUTE, 4 * MINUTE, 10 * MINUTE, 25 * MINUTE,
                      2 * HOUR, 2 * DAY):
            rf.release(store, t_arrival=0.0, t_release=delay)
        # 4 digest releases between 5 h and 2 days.
        for delay in (5 * HOUR, 8 * HOUR, 30 * HOUR, 40 * HOUR):
            rf.release(
                store,
                t_arrival=0.0,
                t_release=delay,
                mechanism=ReleaseMechanism.DIGEST,
            )
        return store

    def test_shares(self):
        stats = delays.compute(self._store())
        assert stats.white_count == 90
        assert stats.released_count == 10
        assert stats.instant_share == pytest.approx(0.9)
        assert stats.quarantined_share == pytest.approx(0.1)

    def test_captcha_cdf(self):
        stats = delays.compute(self._store())
        from repro.util.stats import cdf_at

        assert cdf_at(stats.captcha_cdf, 5 * MINUTE) == pytest.approx(2 / 6)
        assert cdf_at(stats.captcha_cdf, 30 * MINUTE) == pytest.approx(4 / 6)

    def test_combined_under_30min(self):
        stats = delays.compute(self._store())
        assert stats.released_under_30min_share == pytest.approx(0.4)

    def test_over_one_day_share_of_inbox(self):
        stats = delays.compute(self._store())
        # 3 of 10 releases exceed one day -> 30% of the quarantined 10%.
        assert stats.inbox_delayed_over_1day_share == pytest.approx(0.03)

    def test_empty_store(self):
        stats = delays.compute(LogStore())
        assert stats.instant_share == 0.0
        assert stats.inbox_delayed_over_1day_share == 0.0

    def test_render_smoke(self, tiny_store):
        out = delays.render(tiny_store)
        assert "Fig. 7" in out
