"""Unit tests for remote mail hosts and the internet router."""

from repro.blacklistd.service import DnsblService, ListingPolicy
from repro.net.dns import DnsRegistry, Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.internet import Internet
from repro.net.smtp import Envelope, Reply
from repro.util.simtime import DAY


def _envelope(rcpt, client_ip="5.5.5.5", size=1000):
    return Envelope(
        mail_from="challenge@corp.example",
        rcpt_to=rcpt,
        size=size,
        client_ip=client_ip,
    )


class TestRemoteMailHost:
    def test_delivers_to_known_mailbox(self):
        host = RemoteMailHost("x.example", "1.1.1.1", mailboxes={"bob"})
        response = host.deliver(_envelope("bob@x.example"), now=0.0)
        assert response.accepted
        assert host.accepted_count == 1

    def test_rejects_unknown_mailbox_with_550(self):
        host = RemoteMailHost("x.example", "1.1.1.1", mailboxes={"bob"})
        response = host.deliver(_envelope("ghost@x.example"), now=0.0)
        assert response.code == Reply.MAILBOX_UNAVAILABLE
        assert host.rejected_count == 1

    def test_catch_all_accepts_anything(self):
        host = RemoteMailHost("x.example", "1.1.1.1", catch_all=True)
        assert host.deliver(_envelope("anything@x.example"), now=0.0).accepted

    def test_unreachable_host_times_out(self):
        host = RemoteMailHost("x.example", "1.1.1.1", reachable=False)
        response = host.deliver(_envelope("bob@x.example"), now=0.0)
        assert response.code == Reply.CONNECT_FAIL
        assert response.transient

    def test_dnsbl_rejection_precedes_mailbox_check(self):
        service = DnsblService(
            "rbl", ListingPolicy(threshold=1, window=DAY, base_duration=DAY)
        )
        service.force_list("5.5.5.5", now=0.0, duration=DAY)
        host = RemoteMailHost(
            "x.example", "1.1.1.1", mailboxes={"bob"}, dnsbl_services=[service]
        )
        response = host.deliver(_envelope("bob@x.example"), now=0.0)
        assert response.code == Reply.BLACKLISTED

    def test_dnsbl_rejection_expires(self):
        service = DnsblService(
            "rbl", ListingPolicy(threshold=1, window=DAY, base_duration=DAY)
        )
        service.force_list("5.5.5.5", now=0.0, duration=DAY)
        host = RemoteMailHost(
            "x.example", "1.1.1.1", mailboxes={"bob"}, dnsbl_services=[service]
        )
        assert host.deliver(_envelope("bob@x.example"), now=2 * DAY).accepted

    def test_on_delivered_hook_fires_with_time(self):
        seen = []
        host = RemoteMailHost(
            "x.example",
            "1.1.1.1",
            catch_all=True,
            on_delivered=lambda env, now: seen.append((env.rcpt_to, now)),
        )
        host.deliver(_envelope("trap@x.example"), now=7.0)
        assert seen == [("trap@x.example", 7.0)]

    def test_hook_not_fired_on_rejection(self):
        seen = []
        host = RemoteMailHost(
            "x.example",
            "1.1.1.1",
            mailboxes=set(),
            on_delivered=lambda env, now: seen.append(env),
        )
        host.deliver(_envelope("ghost@x.example"), now=0.0)
        assert seen == []

    def test_add_mailbox(self):
        host = RemoteMailHost("x.example", "1.1.1.1")
        assert not host.has_mailbox("new")
        host.add_mailbox("new")
        assert host.has_mailbox("new")


class TestInternetRouting:
    def _internet(self):
        registry = DnsRegistry()
        resolver = Resolver(registry)
        internet = Internet(resolver)
        registry.register_mail_domain("alive.example", "1.1.1.1")
        registry.register_mail_domain("dead.example", "2.2.2.2")
        internet.register_host(
            RemoteMailHost("alive.example", "1.1.1.1", mailboxes={"bob"})
        )
        return internet

    def test_routes_to_registered_host(self):
        internet = self._internet()
        assert internet.submit(_envelope("bob@alive.example"), 0.0).accepted

    def test_unresolvable_domain_is_permanent_failure(self):
        internet = self._internet()
        response = internet.submit(_envelope("x@ghost.example"), 0.0)
        assert response.permanent

    def test_resolvable_but_dead_domain_is_transient(self):
        # dead.example resolves in DNS but no server answers: the classic
        # forged/parked sender domain, which makes challenges expire.
        internet = self._internet()
        response = internet.submit(_envelope("x@dead.example"), 0.0)
        assert response.code == Reply.CONNECT_FAIL
        assert response.transient

    def test_duplicate_host_registration_rejected(self):
        internet = self._internet()
        try:
            internet.register_host(RemoteMailHost("alive.example", "3.3.3.3"))
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_byte_accounting(self):
        internet = self._internet()
        before = internet.bytes_routed
        internet.submit(_envelope("bob@alive.example", size=2500), 0.0)
        assert internet.bytes_routed == before + 2500

    def test_host_lookup_case_insensitive(self):
        internet = self._internet()
        assert internet.host_for("ALIVE.example") is not None


class TestGreylisting:
    def test_first_attempt_greylisted_retry_accepted(self):
        host = RemoteMailHost(
            "x.example", "1.1.1.1", mailboxes={"bob"}, greylisting=True
        )
        first = host.deliver(_envelope("bob@x.example"), now=0.0)
        assert first.code == Reply.GREYLISTED
        assert first.transient
        second = host.deliver(_envelope("bob@x.example"), now=900.0)
        assert second.accepted
        assert host.greylisted_count == 1

    def test_greylist_memory_is_per_client_ip(self):
        host = RemoteMailHost(
            "x.example", "1.1.1.1", mailboxes={"bob"}, greylisting=True
        )
        host.deliver(_envelope("bob@x.example", client_ip="5.5.5.5"), now=0.0)
        other = host.deliver(
            _envelope("bob@x.example", client_ip="6.6.6.6"), now=1.0
        )
        assert other.code == Reply.GREYLISTED

    def test_greylisting_applies_after_mailbox_check(self):
        # Unknown mailboxes still bounce immediately (no greylist delay).
        host = RemoteMailHost(
            "x.example", "1.1.1.1", mailboxes={"bob"}, greylisting=True
        )
        response = host.deliver(_envelope("ghost@x.example"), now=0.0)
        assert response.code == Reply.MAILBOX_UNAVAILABLE

    def test_greylisted_challenge_delivered_on_retry_end_to_end(self):
        from repro.net.mta_out import OutboundMta
        from repro.net.smtp import FinalStatus
        from repro.sim.engine import Simulator

        simulator = Simulator()
        registry = DnsRegistry()
        resolver = Resolver(registry)
        internet = Internet(resolver)
        registry.register_mail_domain("grey.example", "7.7.7.7")
        internet.register_host(
            RemoteMailHost(
                "grey.example", "7.7.7.7", mailboxes={"bob"}, greylisting=True
            )
        )
        mta = OutboundMta("m", "9.0.0.9", simulator, internet)
        results = []
        mta.send(
            Envelope("c@x.com", "bob@grey.example", 1800, "ignored"),
            lambda env, result: results.append(result),
        )
        simulator.run()
        (result,) = results
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts == 2
        assert result.t_final > 0
