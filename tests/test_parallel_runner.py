"""The parallel execution layer's contract: determinism, ordering, caching.

The one property everything downstream leans on: fanning runs out over a
process pool changes *nothing* about the results — same content digests,
same spec order — so `jobs=N` is always a pure wall-time optimisation.
"""

import pickle
import warnings

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    ParallelRunner,
    RunCache,
    RunSpec,
    RunSummary,
    run_specs,
)
from repro.core.config import FilterSettings

#: The sweep both execution modes must agree on.
SPECS = [RunSpec("tiny", seed=3), RunSpec("tiny", seed=5)]


@pytest.fixture(scope="module")
def serial_summaries():
    """The sweep, executed on the jobs=1 bypass (no multiprocessing)."""
    return ParallelRunner(jobs=1, cache=None).run(SPECS)


class TestDeterminism:
    def test_jobs4_digests_match_jobs1(self, serial_summaries):
        """The acceptance gate: parallel output is bit-identical to serial."""
        parallel_summaries = ParallelRunner(jobs=4, cache=None).run(SPECS)
        assert [s.digest for s in parallel_summaries] == [
            s.digest for s in serial_summaries
        ]
        # Digest equality is meaningful: it covers every record list.
        assert all(len(s.digest) == 64 for s in parallel_summaries)
        for serial, par in zip(serial_summaries, parallel_summaries):
            assert serial.store.summary_counts() == par.store.summary_counts()

    def test_results_in_spec_order(self, serial_summaries):
        assert [s.seed for s in serial_summaries] == [s.seed for s in SPECS]
        # Different seeds really did produce different runs.
        assert serial_summaries[0].digest != serial_summaries[1].digest

    def test_summary_carries_analysis_inputs(self, serial_summaries):
        summary = serial_summaries[0]
        assert summary.store.summary_counts()["mta"] > 0
        assert summary.info.n_companies == 6
        assert set(summary.company_configs) == set(
            summary.info.users_per_company
        )
        assert summary.wall_seconds > 0


class TestSerialBypass:
    def test_jobs1_never_touches_multiprocessing(self, monkeypatch):
        """The jobs=1 path must not even construct a pool."""

        def explode(*_args, **_kwargs):
            raise AssertionError("jobs=1 must not create a process pool")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)
        runner = ParallelRunner(jobs=1, cache=None)
        [summary] = runner.run([RunSpec("tiny", seed=3)])
        assert summary.seed == 3

    def test_single_pending_spec_skips_pool_even_with_jobs4(self, monkeypatch):
        monkeypatch.setattr(
            parallel,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool")),
        )
        runner = ParallelRunner(jobs=4, cache=None)
        [summary] = runner.run([RunSpec("tiny", seed=3)])
        assert summary.seed == 3

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)


class TestCache:
    def test_cached_sweep_performs_zero_simulations(
        self, tmp_path, serial_summaries
    ):
        """Second invocation of a cached sweep is simulation-free."""
        cache = RunCache(tmp_path / "runs")
        # Warm the cache from the already-executed serial summaries.
        for spec, summary in zip(SPECS, serial_summaries):
            cache.save(spec.cache_key(), summary)

        runner = ParallelRunner(jobs=4, cache=cache)
        summaries = runner.run(SPECS)
        assert runner.runs_executed == 0
        assert runner.cache_hits == len(SPECS)
        assert [s.digest for s in summaries] == [
            s.digest for s in serial_summaries
        ]

    def test_runner_populates_cache_on_miss(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        first = ParallelRunner(jobs=1, cache=cache)
        first.run([RunSpec("tiny", seed=3)])
        assert (first.cache_hits, first.runs_executed) == (0, 1)
        assert cache.path_for(RunSpec("tiny", seed=3).cache_key()).exists()

        second = ParallelRunner(jobs=1, cache=cache)
        second.run([RunSpec("tiny", seed=3)])
        assert (second.cache_hits, second.runs_executed) == (1, 0)

    @pytest.mark.parametrize(
        "junk",
        [
            b"not a pickle",
            b"garbage\n",  # 'g' is a GET opcode: raises ValueError, not
            b"",           # UnpicklingError — load() must eat both
            pickle.dumps({"not": "a RunSummary"}),
        ],
    )
    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, junk):
        cache = RunCache(tmp_path / "runs")
        key = SPECS[0].cache_key()
        cache.root.mkdir(parents=True)
        cache.path_for(key).write_bytes(junk)
        # Corrupt ≠ absent: the miss must announce itself so an operator
        # learns the cache was damaged rather than silently rebuilt.
        with pytest.warns(RuntimeWarning, match="recomputing"):
            assert cache.load(key) is None

    def test_missing_cache_entry_is_a_silent_miss(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load(SPECS[0].cache_key()) is None

    def test_corrupt_entry_is_recomputed_by_the_runner(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        spec = RunSpec("tiny", seed=3)
        cache.root.mkdir(parents=True)
        cache.path_for(spec.cache_key()).write_bytes(b"\x80garbage")
        runner = ParallelRunner(jobs=1, cache=cache)
        with pytest.warns(RuntimeWarning, match="corrupt run-cache entry"):
            summaries = runner.run([spec])
        assert not summaries[0].failed
        assert (runner.cache_hits, runner.runs_executed) == (0, 1)
        # The recomputed summary replaced the garbage entry.
        fresh = ParallelRunner(jobs=1, cache=cache)
        assert fresh.run([spec])[0].digest == summaries[0].digest
        assert fresh.cache_hits == 1

    def test_run_specs_respects_use_cache_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
        run_specs([RunSpec("tiny", seed=3)], jobs=1, use_cache=False)
        assert not (tmp_path / "runs").exists()


#: A spec whose worker always raises (unknown crash preset) — exercises
#: the retry + failure-summary path without monkeypatching workers.
BAD_SPEC = RunSpec("tiny", seed=3, crashes="no-such-preset")


class TestFailureCapture:
    def test_failed_spec_becomes_failure_summary(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=None, checkpoint_root=tmp_path)
        good, bad = runner.run([RunSpec("tiny", seed=3), BAD_SPEC])
        assert not good.failed and good.digest
        assert bad.failed
        assert "no-such-preset" in bad.error
        assert "Traceback" in bad.error
        assert bad.seed == BAD_SPEC.seed
        assert len(bad.store.mta) == 0
        assert runner.failures == 1
        # Survivors merged deterministically: the good spec's digest is
        # exactly what a clean batch produces.
        clean = ParallelRunner(jobs=1, cache=None)
        assert clean.run([RunSpec("tiny", seed=3)])[0].digest == good.digest

    def test_failed_spec_in_pool_is_captured(self, tmp_path):
        runner = ParallelRunner(jobs=2, cache=None, checkpoint_root=tmp_path)
        good, bad = runner.run([RunSpec("tiny", seed=3), BAD_SPEC])
        assert not good.failed
        assert bad.failed and "no-such-preset" in bad.error

    def test_failed_summary_is_never_cached(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        runner = ParallelRunner(
            jobs=1, cache=cache, checkpoint_root=tmp_path / "ckpt"
        )
        (bad,) = runner.run([BAD_SPEC])
        assert bad.failed
        assert not cache.path_for(BAD_SPEC.cache_key()).exists()


class TestSpecKeys:
    def test_key_stable_and_order_insensitive(self):
        spec_a = RunSpec("tiny", seed=3, config_overrides={"a": 1, "b": 2})
        spec_b = RunSpec("tiny", seed=3, config_overrides={"b": 2, "a": 1})
        assert spec_a.cache_key() == spec_b.cache_key()

    def test_key_distinguishes_every_axis(self):
        base = RunSpec("tiny", seed=3)
        variants = [
            RunSpec("small", seed=3),
            RunSpec("tiny", seed=4),
            RunSpec("tiny", seed=3, filters_template=FilterSettings(spf=True)),
            RunSpec(
                "tiny", seed=3, config_overrides={"challenge_dedup": False}
            ),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_label_not_part_of_key(self):
        assert (
            RunSpec("tiny", seed=3, label="x").cache_key()
            == RunSpec("tiny", seed=3).cache_key()
        )

    def test_audit_is_part_of_key(self):
        # A cached unaudited summary must never satisfy an audit request
        # (and vice versa): the audited run carries per-message evidence.
        assert (
            RunSpec("tiny", seed=3, audit=True).cache_key()
            != RunSpec("tiny", seed=3).cache_key()
        )

    def test_audit_default_keeps_existing_keys(self):
        assert (
            RunSpec("tiny", seed=3, audit=False).cache_key()
            == RunSpec("tiny", seed=3).cache_key()
        )


class TestSummaryPickling:
    def test_summary_round_trips_through_pickle(self, serial_summaries):
        summary = serial_summaries[0]
        clone = pickle.loads(pickle.dumps(summary))
        assert isinstance(clone, RunSummary)
        assert clone.digest == summary.digest
        assert clone.store.summary_counts() == summary.store.summary_counts()
        assert parallel.store_digest(clone.store) == summary.digest
        assert clone.info == summary.info


class TestSweepConsumers:
    def test_variability_and_defence_sweeps_share_one_fanout(
        self, serial_summaries
    ):
        from repro.analysis import variability
        from repro.baselines import comparison

        sweep = variability.sweep_from_summaries(serial_summaries)
        assert [seed for seed, _stats in sweep.per_seed] == [3, 5]
        rendered = variability.render_sweep(sweep)
        assert "correlation stability across 2 seeds" in rendered

        results = comparison.defences_from_summaries(serial_summaries)
        assert [seed for seed, _cmp in results] == [3, 5]
        assert "2 independent deployments" in comparison.render_sweep(results)
