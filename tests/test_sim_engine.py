"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(9.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        seen = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: seen.append(l))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        observed = []
        sim.schedule(3.5, lambda: observed.append(sim.now))
        sim.run()
        assert observed == [3.5]

    def test_scheduling_into_the_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator(start_time=2.0)
        fired = []
        sim.schedule_after(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule_after(1.0, lambda: seen.append("second"))
            seen.append("first")

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("cancelled"))
        sim.schedule(2.0, lambda: seen.append("kept"))
        event.cancel()
        sim.run()
        assert seen == ["kept"]
        assert sim.events_processed == 1


class TestRunUntil:
    def test_until_is_exclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("at-5"))
        sim.run(until=5.0)
        assert seen == []
        sim.run()
        assert seen == ["at-5"]

    def test_consecutive_runs_do_not_double_fire(self):
        sim = Simulator()
        count = [0]
        sim.schedule(1.0, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=2.0)
        sim.run(until=3.0)
        assert count[0] == 1

    def test_clock_advances_to_until_even_if_queue_empty(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_clock_does_not_rewind(self):
        sim = Simulator()
        sim.schedule(50.0, lambda: None)
        sim.run()
        sim.run(until=10.0)
        assert sim.now == 50.0


class TestRecurring:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.schedule_every(10.0, lambda: times.append(sim.now), until=35.0)
        sim.run()
        assert times == [10.0, 20.0, 30.0]

    def test_explicit_start(self):
        sim = Simulator()
        times = []
        sim.schedule_every(
            10.0, lambda: times.append(sim.now), start=5.0, until=26.0
        )
        sim.run()
        assert times == [5.0, 15.0, 25.0]

    def test_non_positive_interval_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_every(0.0, lambda: None)

    def test_recurrence_sees_mutated_state(self):
        sim = Simulator()
        values = []
        state = {"x": 0}

        def tick():
            state["x"] += 1
            values.append(state["x"])

        sim.schedule_every(1.0, tick, until=4.5)
        sim.run()
        assert values == [1, 2, 3, 4]

    def test_pending_counts_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1


class TestCancellationAccounting:
    def test_pending_is_counter_based_not_a_scan(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10
        events[3].cancel()
        events[7].cancel()
        assert sim.pending == 8
        assert sim._cancelled == 2
        assert len(sim._queue) == 10  # below threshold: no compaction yet

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event = sim.schedule(3.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 2

    def test_cancel_after_pop_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)  # pops and executes the first event
        event.cancel()  # late cancel: already off the queue
        assert sim.pending == 1
        sim.run()
        assert sim.events_processed == 2

    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulator()
        keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(90)]
        for event in doomed:
            event.cancel()
        # Cancelled entries repeatedly exceeded half the queue, so the 90
        # dead entries were purged; the invariant "dead entries never
        # outnumber live ones" holds at every point.
        assert sim.compactions >= 1
        assert sim.pending == 10
        assert sim._cancelled * 2 <= len(sim._queue)
        assert len(sim._queue) < 2 * len(keep)

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        seen = []
        for i in range(8):
            sim.schedule(float(i), lambda i=i: seen.append(i))
        doomed = [sim.schedule(100.0 + i, lambda: None) for i in range(20)]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        sim.run()
        assert seen == list(range(8))

    def test_cancel_during_run_keeps_counter_consistent(self):
        sim = Simulator()
        later = [sim.schedule(10.0 + i, lambda: None) for i in range(6)]

        def cancel_most():
            for event in later[:5]:
                event.cancel()

        sim.schedule(1.0, cancel_most)
        sim.run()
        assert sim.pending == 0
        assert sim._cancelled == 0
        assert sim.events_processed == 2  # cancel_most + the one survivor


class TestRecurrenceStartValidation:
    def test_past_start_raises_clear_error(self):
        sim = Simulator()
        sim.run(until=100.0)
        with pytest.raises(SimulationError, match="cannot begin in the past"):
            sim.schedule_every(10.0, lambda: None, start=50.0)

    def test_start_exactly_now_is_allowed(self):
        sim = Simulator()
        sim.run(until=100.0)
        fired = []
        sim.schedule_every(10.0, lambda: fired.append(sim.now), start=100.0)
        sim.run(until=125.0)
        assert fired == [100.0, 110.0, 120.0]


class TestCounterReset:
    """Regression (ISSUE 6 satellite): an engine instance reused across
    logically separate runs kept accumulating ``events_processed`` and
    ``compactions``, so the second run reported the first run's work."""

    def test_reset_counters_zeroes_statistics(self):
        sim = Simulator()
        doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(90)]
        keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        for event in doomed:
            event.cancel()
        sim.run()
        assert sim.events_processed == len(keep)
        assert sim.compactions >= 1

        sim.reset_counters()
        assert sim.events_processed == 0
        assert sim.compactions == 0

        # The next "run" starts its statistics from zero...
        for i in range(5):
            sim.schedule(sim.now + float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5
        assert sim.compactions == 0

    def test_reset_counters_leaves_queue_accounting_alone(self):
        """pending/_cancelled are live state, not statistics — resetting
        statistics must not corrupt a queue with work still in it."""
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        cancelled = sim.schedule(6.0, lambda: None)
        cancelled.cancel()
        batch = sim.schedule_batch(
            [7.0, 8.0], [lambda _arg: None] * 2, [None, None]
        )
        assert batch is not None
        before = sim.pending
        sim.reset_counters()
        assert sim.pending == before == 3
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 3
