"""Unit tests for simulated-time helpers."""

import pytest

from repro.util import simtime
from repro.util.simtime import (
    DAY,
    HOUR,
    MINUTE,
    day_of,
    format_duration,
    format_timestamp,
    is_weekend,
    seconds_into_day,
    weekday_of,
)


class TestDayArithmetic:
    def test_day_of_epoch(self):
        assert day_of(0) == 0

    def test_day_of_boundary(self):
        assert day_of(DAY - 1) == 0
        assert day_of(DAY) == 1

    def test_seconds_into_day(self):
        assert seconds_into_day(3 * DAY + 42.0) == 42.0

    def test_epoch_is_a_thursday(self):
        # 2010-07-01 was a Thursday (weekday index 3).
        assert weekday_of(0) == 3

    def test_weekday_cycles(self):
        assert weekday_of(7 * DAY) == weekday_of(0)

    def test_weekend_detection(self):
        # Epoch Thursday -> +2 days = Saturday, +3 = Sunday, +4 = Monday.
        assert not is_weekend(0)
        assert is_weekend(2 * DAY)
        assert is_weekend(3 * DAY)
        assert not is_weekend(4 * DAY)


class TestFormatting:
    def test_format_timestamp_epoch(self):
        assert format_timestamp(0) == "2010-07-01T00:00:00"

    def test_format_timestamp_mid_window(self):
        # 92 days into the window lands in October.
        assert format_timestamp(92 * DAY).startswith("2010-10-01")

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0, "0s"),
            (59, "59s"),
            (MINUTE, "1m"),
            (90, "1m30s"),
            (HOUR, "1h"),
            (HOUR + 5 * MINUTE, "1h5m"),
            (DAY, "1d"),
            (DAY + HOUR, "1d1h"),
            (25 * HOUR, "1d1h"),
        ],
    )
    def test_format_duration(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_format_duration_negative(self):
        assert format_duration(-90) == "-1m30s"

    def test_constants_are_consistent(self):
        assert simtime.WEEK == 7 * DAY
        assert DAY == 24 * HOUR == 1440 * MINUTE
