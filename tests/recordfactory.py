"""Concise builders for synthetic log records used by analysis unit tests."""

from __future__ import annotations

from typing import Optional

from repro.analysis.records import (
    ChallengeOutcomeRecord,
    ChallengeRecord,
    DigestRecord,
    DispatchRecord,
    ExpiryRecord,
    MtaRecord,
    OutboundMailRecord,
    ReleaseRecord,
    WebAccessRecord,
    WhitelistChangeRecord,
)
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.filters.spf import SpfResult
from repro.core.message import MessageKind, SenderClass
from repro.core.mta_in import DropReason
from repro.core.spools import Category, ReleaseMechanism
from repro.core.whitelist import WhitelistSource
from repro.net.smtp import BounceReason, FinalStatus

_msg_ids = iter(range(1, 10_000_000))


def mta(
    store: LogStore,
    *,
    company: str = "c0",
    t: float = 0.0,
    drop: Optional[DropReason] = None,
    open_relay: bool = False,
    size: int = 10_000,
) -> int:
    msg_id = next(_msg_ids)
    store.add_mta(MtaRecord(company, t, msg_id, drop, open_relay, size))
    return msg_id


def dispatch(
    store: LogStore,
    *,
    company: str = "c0",
    t: float = 0.0,
    user: str = "u@c0.example",
    category: Category = Category.GRAY,
    filter_drop: Optional[str] = None,
    challenge_id: Optional[int] = None,
    challenge_created: bool = False,
    env_from: str = "s@x.example",
    subject: str = "one two three four five six seven eight nine ten",
    size: int = 10_000,
    spf: SpfResult = SpfResult.NONE,
    kind: MessageKind = MessageKind.SPAM,
    sender_class: SenderClass = SenderClass.NONEXISTENT_MAILBOX,
    campaign_id: Optional[str] = None,
    open_relay: bool = False,
    protected_user: bool = True,
) -> int:
    msg_id = next(_msg_ids)
    store.add_dispatch(
        DispatchRecord(
            company,
            t,
            msg_id,
            user,
            category,
            filter_drop,
            challenge_id,
            challenge_created,
            env_from,
            subject,
            size,
            spf,
            kind,
            sender_class,
            campaign_id,
            open_relay,
            protected_user,
        )
    )
    return msg_id


def challenge(
    store: LogStore,
    challenge_id: int,
    *,
    company: str = "c0",
    t: float = 0.0,
    user: str = "u@c0.example",
    sender: str = "s@x.example",
    server_ip: str = "198.51.100.1",
    size: int = 1_800,
) -> None:
    store.add_challenge(
        ChallengeRecord(company, challenge_id, t, user, sender, server_ip, size)
    )


def outcome(
    store: LogStore,
    challenge_id: int,
    *,
    company: str = "c0",
    status: FinalStatus = FinalStatus.DELIVERED,
    bounce_reason: Optional[BounceReason] = None,
    attempts: int = 1,
    t_final: float = 60.0,
) -> None:
    store.add_challenge_outcome(
        ChallengeOutcomeRecord(
            company, challenge_id, status, bounce_reason, attempts, t_final
        )
    )


def web(
    store: LogStore,
    challenge_id: int,
    action: WebAction,
    *,
    company: str = "c0",
    t: float = 100.0,
    success: bool = True,
) -> None:
    store.add_web_access(
        WebAccessRecord(company, challenge_id, t, action, success)
    )


def release(
    store: LogStore,
    *,
    company: str = "c0",
    user: str = "u@c0.example",
    msg_id: int = 1,
    t_arrival: float = 0.0,
    t_release: float = 600.0,
    mechanism: ReleaseMechanism = ReleaseMechanism.CAPTCHA,
    kind: MessageKind = MessageKind.LEGIT,
) -> None:
    store.add_release(
        ReleaseRecord(company, user, msg_id, t_arrival, t_release, mechanism, kind)
    )


def whitelist_change(
    store: LogStore,
    *,
    company: str = "c0",
    user: str = "u@c0.example",
    address: str = "s@x.example",
    t: float = 0.0,
    source: WhitelistSource = WhitelistSource.OUTBOUND,
) -> None:
    store.add_whitelist_change(
        WhitelistChangeRecord(company, user, address, t, source)
    )


def digest(
    store: LogStore,
    *,
    company: str = "c0",
    user: str = "u@c0.example",
    day: int = 0,
    pending: int = 1,
) -> None:
    store.add_digest(DigestRecord(company, user, day, pending))


def expiry(
    store: LogStore,
    *,
    company: str = "c0",
    user: str = "u@c0.example",
    msg_id: int = 1,
    t: float = 0.0,
) -> None:
    store.add_expiry(ExpiryRecord(company, user, msg_id, t))


def outbound(
    store: LogStore,
    *,
    company: str = "c0",
    t: float = 0.0,
    user: str = "u@c0.example",
    rcpt: str = "r@x.example",
    size: int = 10_000,
) -> None:
    store.add_outbound(OutboundMailRecord(company, t, user, rcpt, size))
