"""Unit tests for the dispatcher's white/black/gray sorting."""

from repro.core.challenge import ChallengeManager
from repro.core.dispatcher import Dispatcher
from repro.core.filters.base import FilterChain, SpamFilter
from repro.core.message import make_message
from repro.core.spools import Category, GraySpool
from repro.core.whitelist import WhitelistDirectory, WhitelistSource
from repro.util.simtime import DAY

USER = "u@c.com"


class _DropVirusOnly(SpamFilter):
    name = "virus-only"

    def should_drop(self, message, now):
        return message.has_virus


def _dispatcher(filters=()):
    whitelists = WhitelistDirectory()
    return (
        Dispatcher(
            whitelists=whitelists,
            filter_chain=FilterChain(list(filters)),
            gray_spool=GraySpool(),
            challenge_manager=ChallengeManager("c-test"),
            quarantine_days=30,
            challenge_size=1800,
        ),
        whitelists,
    )


def _msg(sender="s@x.com", has_virus=False, t=0.0):
    return make_message(t, sender, USER, has_virus=has_virus)


class TestCategories:
    def test_whitelisted_sender_goes_white(self):
        dispatcher, whitelists = _dispatcher()
        whitelists.lists_for(USER).add_to_whitelist(
            "s@x.com", 0.0, WhitelistSource.SEED
        )
        decision = dispatcher.process(_msg(), USER, 0.0)
        assert decision.category is Category.WHITE
        assert decision.challenge is None
        assert dispatcher.white_count == 1

    def test_whitelist_check_case_insensitive(self):
        dispatcher, whitelists = _dispatcher()
        whitelists.lists_for(USER).add_to_whitelist(
            "S@X.COM", 0.0, WhitelistSource.SEED
        )
        assert (
            dispatcher.process(_msg(sender="s@x.com"), USER, 0.0).category
            is Category.WHITE
        )

    def test_blacklisted_sender_goes_black(self):
        dispatcher, whitelists = _dispatcher()
        whitelists.lists_for(USER).add_to_blacklist("s@x.com")
        decision = dispatcher.process(_msg(), USER, 0.0)
        assert decision.category is Category.BLACK
        assert dispatcher.black_count == 1

    def test_unknown_sender_goes_gray_and_challenged(self):
        dispatcher, _ = _dispatcher()
        decision = dispatcher.process(_msg(), USER, 0.0)
        assert decision.category is Category.GRAY
        assert decision.filter_drop is None
        assert decision.challenge is not None
        assert decision.challenge_created

    def test_later_whitelisting_overrides_blacklist(self):
        # Whitelisting un-blacklists (UserLists invariant), so the sender's
        # next message goes white.
        dispatcher, whitelists = _dispatcher()
        lists = whitelists.lists_for(USER)
        lists.add_to_blacklist("s@x.com")
        lists.add_to_whitelist("s@x.com", 1.0, WhitelistSource.DIGEST)
        decision = dispatcher.process(_msg(t=2.0), USER, 2.0)
        assert decision.category is Category.WHITE


class TestGrayFlow:
    def test_filter_dropped_message_not_quarantined(self):
        dispatcher, _ = _dispatcher(filters=[_DropVirusOnly()])
        decision = dispatcher.process(_msg(has_virus=True), USER, 0.0)
        assert decision.category is Category.GRAY
        assert decision.filter_drop == "virus-only"
        assert decision.challenge is None
        assert dispatcher.gray_spool.pending_count == 0

    def test_quarantine_expiry_set_from_config(self):
        dispatcher, _ = _dispatcher()
        message = _msg(t=100.0)
        dispatcher.process(message, USER, 100.0)
        entry = dispatcher.gray_spool.get(message.msg_id)
        assert entry.expires_at == 100.0 + 30 * DAY

    def test_repeat_sender_attaches_no_new_challenge(self):
        dispatcher, _ = _dispatcher()
        first = dispatcher.process(_msg(), USER, 0.0)
        second = dispatcher.process(_msg(t=10.0), USER, 10.0)
        assert not second.challenge_created
        assert second.challenge is first.challenge
        assert dispatcher.gray_spool.pending_count == 2

    def test_distinct_senders_get_distinct_challenges(self):
        dispatcher, _ = _dispatcher()
        a = dispatcher.process(_msg(sender="a@x.com"), USER, 0.0)
        b = dispatcher.process(_msg(sender="b@x.com"), USER, 0.0)
        assert a.challenge.challenge_id != b.challenge.challenge_id

    def test_gray_entry_links_challenge(self):
        dispatcher, _ = _dispatcher()
        message = _msg()
        decision = dispatcher.process(message, USER, 0.0)
        entry = dispatcher.gray_spool.get(message.msg_id)
        assert entry.challenge_id == decision.challenge.challenge_id
