"""The committed performance trajectory: schema and threshold checks.

The repo root carries one ``BENCH_PR<n>.json`` per performance-relevant PR
(written by ``scripts/update_bench.py``). These tests make the trajectory
load-bearing: deleting the files, mangling their schema, or committing an
entry that regresses throughput against its predecessor all fail the
build. The *live* counterpart (re-measuring this tree against the recorded
baseline commit) runs in ``benchmarks/test_bench_hot_path.py`` and the CI
bench job — this module only validates what is committed, so it stays
fast and host-independent.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _update_bench():
    """Import scripts/update_bench.py (not a package) for its helpers."""
    spec = importlib.util.spec_from_file_location(
        "update_bench", REPO_ROOT / "scripts" / "update_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

#: Every committed entry must carry these keys (schema version 1).
REQUIRED_KEYS = {
    "schema",
    "pr",
    "preset",
    "seed",
    "repeats",
    "messages",
    "events",
    "wall_seconds_best",
    "wall_seconds_median",
    "msgs_per_sec",
    "baseline_pr",
    "baseline_commit",
    "python",
    "notes",
}

#: The batching PR's committed floor: its measured speedup over the PR 5
#: tree. The honest same-host ratio is committed in BENCH_PR6.json
#: (1.77x); the floor asserts most of it, leaving room for re-measurement
#: on other machines without letting the claim quietly erode.
PR6_MIN_SPEEDUP = 1.5

#: Successive committed entries may not lose more than this fraction of
#: msgs/sec (the anti-backsliding rule for future PRs).
MAX_REGRESSION = 0.20


def _entries() -> list:
    entries = []
    for path in sorted(REPO_ROOT.glob("BENCH_PR*.json")):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match:
            entries.append((int(match.group(1)), path, json.loads(path.read_text())))
    return sorted(entries)


def test_trajectory_is_committed():
    """Removing the committed bench files fails the build."""
    prs = [pr for pr, _, _ in _entries()]
    assert 5 in prs, "BENCH_PR5.json (the trajectory root) is missing"
    assert 6 in prs, "BENCH_PR6.json (the batching PR entry) is missing"


@pytest.mark.parametrize("pr,path,data", _entries() or [(0, None, None)])
def test_entry_schema(pr, path, data):
    if path is None:
        pytest.fail("no committed BENCH_PR*.json found")
    missing = REQUIRED_KEYS - data.keys()
    assert not missing, f"{path.name} missing keys: {sorted(missing)}"
    assert data["schema"] == 1
    assert data["pr"] == pr
    assert data["preset"] == "small", "the trajectory preset is pinned"
    assert data["seed"] == 11, "the trajectory seed is pinned"
    assert data["repeats"] >= 3
    assert data["messages"] > 0 and data["events"] >= data["messages"]
    assert 0 < data["wall_seconds_best"] <= data["wall_seconds_median"]
    # msgs_per_sec must be derived from the recorded numbers, not typed in.
    derived = data["messages"] / data["wall_seconds_best"]
    assert data["msgs_per_sec"] == pytest.approx(derived, rel=0.01)


def test_entries_agree_on_workload():
    """Same pinned preset+seed => every entry saw the identical workload
    (the simulation is deterministic, so message/event counts must agree).

    Message counts are invariant across all entries — the trace draws are
    pinned by the preset and seed. Event counts may legitimately change
    when a PR reorganises *scheduling* (e.g. PR 7's per-company behavior
    RNG split altered reaction timing and hence event totals without
    touching the message workload); such PRs bump ``workload_epoch`` and
    the events-equality check applies within an epoch.
    """
    entries = _entries()
    messages = {data["messages"] for _, _, data in entries}
    assert len(messages) == 1, f"workload drifted between entries: {messages}"
    by_epoch: dict = {}
    for _, path, data in entries:
        epoch = data.get("workload_epoch", 1)
        by_epoch.setdefault(epoch, set()).add(data["events"])
    for epoch, events in by_epoch.items():
        assert len(events) == 1, (
            f"event counts drifted within workload epoch {epoch}: {events}"
        )


def test_pr6_speedup_vs_pr5():
    """The batching PR's committed speedup holds the trajectory floor."""
    by_pr = {pr: data for pr, _, data in _entries()}
    pr5, pr6 = by_pr[5], by_pr[6]
    ratio = pr6["msgs_per_sec"] / pr5["msgs_per_sec"]
    assert ratio >= PR6_MIN_SPEEDUP, (
        f"committed PR6/PR5 throughput ratio {ratio:.2f}x fell below the "
        f"{PR6_MIN_SPEEDUP}x floor"
    )
    # The recorded interleaved measurement must agree with the per-file
    # numbers (both came from the same session).
    assert pr6["speedup_vs_baseline"] == pytest.approx(ratio, rel=0.05)
    assert pr6["baseline_pr"] == 5
    assert pr6["baseline_commit"], "PR6 must pin the baseline commit"


def test_no_regression_between_consecutive_entries():
    """Each committed entry keeps >= 80% of its predecessor's msgs/sec.

    "Predecessor" means the previous *committed entry*, not ``pr - 1``:
    the trajectory is non-contiguous (PR 8 shipped no bench entry), so
    PR 9 is held against PR 7 and PR 10 against PR 9.
    """
    entries = _entries()
    for (prev_pr, _, prev), (cur_pr, _, cur) in zip(entries, entries[1:]):
        floor = prev["msgs_per_sec"] * (1.0 - MAX_REGRESSION)
        assert cur["msgs_per_sec"] >= floor, (
            f"PR {cur_pr} committed {cur['msgs_per_sec']} msgs/sec, a "
            f">{MAX_REGRESSION:.0%} regression from PR {prev_pr}'s "
            f"{prev['msgs_per_sec']}"
        )


class TestNonContiguousTrajectory:
    """The trajectory skips PR numbers (PR 8 shipped no perf change);
    gap handling in ``scripts/update_bench.py`` must treat that as
    normal — log it, select the latest entry, never assume ``pr - 1``.
    """

    def test_gap_computation(self):
        ub = _update_bench()
        assert ub.trajectory_gaps([5, 6, 7, 9]) == [8]
        assert ub.trajectory_gaps([5, 9, 12]) == [6, 7, 8, 10, 11]
        assert ub.trajectory_gaps([5, 6, 7]) == []
        assert ub.trajectory_gaps([7]) == []
        assert ub.trajectory_gaps([]) == []

    def test_committed_trajectory_has_the_pr8_gap(self):
        """The real committed trajectory is non-contiguous, and the
        describe line says so instead of failing."""
        ub = _update_bench()
        entries = ub.committed_entries()
        prs = [pr for pr, _, _ in entries]
        assert 8 not in prs, "PR 8 intentionally shipped no bench entry"
        line = ub.describe_trajectory(entries)
        assert "[8]" in line and "tolerated" in line

    def test_check_target_is_latest_entry_despite_gaps(self):
        """--check gates on the newest committed entry even when the PR
        numbering has holes before it."""
        ub = _update_bench()
        entries = ub.committed_entries()
        assert entries, "trajectory must not be empty"
        assert entries[-1][0] == max(pr for pr, _, _ in entries)

    def test_baselines_point_at_committed_entries(self):
        """Every recorded baseline_pr is an earlier *committed* entry —
        across the PR 8 gap, PR 9's baseline is PR 7, not PR 8."""
        by_pr = {pr: data for pr, _, data in _entries()}
        for pr, data in by_pr.items():
            baseline_pr = data.get("baseline_pr")
            if baseline_pr is None:
                continue
            assert baseline_pr in by_pr, (
                f"PR {pr} records baseline_pr={baseline_pr}, which has "
                f"no committed bench entry"
            )
            assert baseline_pr < pr
        if 9 in by_pr:
            assert by_pr[9]["baseline_pr"] == 7

    def test_default_baseline_resolves_across_gap(self):
        """resolve_default_baseline picks the latest committed entry
        below the PR being written — skipping the hole — and resolves
        it to a real commit."""
        import argparse

        ub = _update_bench()
        args = argparse.Namespace(
            pr=9, baseline_src=None, baseline_commit=None, baseline_pr=None
        )
        ub.resolve_default_baseline(args)
        assert args.baseline_pr == 7
        assert args.baseline_commit, "must resolve a commit for PR 7"
