"""Unit tests for the trace generator, run over a short window."""

import pytest

from repro.core.message import MessageKind, SenderClass
from repro.core.mta_in import DropReason
from repro.core.spools import Category
from repro.experiments import run_simulation
from repro.util.simtime import day_of


@pytest.fixture(scope="module")
def result():
    # A dedicated 10-day tiny run for generator-level assertions.
    return run_simulation("tiny", seed=13)


class TestTrafficMix:
    def test_all_streams_present(self, result):
        kinds = {r.kind for r in result.store.dispatch}
        assert kinds == {MessageKind.LEGIT, MessageKind.SPAM, MessageKind.NEWSLETTER}

    def test_all_drop_reasons_exercised(self, result):
        reasons = {
            r.drop_reason for r in result.store.mta if r.drop_reason
        }
        # Sender-rejected is rare (0.03 %) and may be absent at tiny scale.
        required = {
            DropReason.MALFORMED,
            DropReason.UNRESOLVABLE_DOMAIN,
            DropReason.NO_RELAY,
            DropReason.UNKNOWN_RECIPIENT,
        }
        assert required <= reasons

    def test_all_sender_classes_exercised(self, result):
        classes = {r.sender_class for r in result.store.dispatch}
        assert SenderClass.INNOCENT_THIRD_PARTY in classes
        assert SenderClass.DEAD_DOMAIN in classes
        assert SenderClass.REAL in classes

    def test_spam_dominates_gray(self, result):
        gray = [
            r for r in result.store.dispatch if r.category is Category.GRAY
        ]
        spam = sum(1 for r in gray if r.kind is MessageKind.SPAM)
        assert spam / len(gray) > 0.6

    def test_every_company_receives_traffic(self, result):
        companies = {r.company_id for r in result.store.mta}
        assert companies == set(result.installations)

    def test_spam_carries_campaign_ids(self, result):
        spam = [
            r
            for r in result.store.dispatch
            if r.kind is MessageKind.SPAM and r.campaign_id
        ]
        campaigns = {r.campaign_id for r in spam}
        assert len(campaigns) > 3
        assert all(c.startswith("sc-") for c in campaigns)

    def test_campaign_subjects_are_constant_within_campaign(self, result):
        by_campaign = {}
        for r in result.store.dispatch:
            if r.kind is MessageKind.SPAM and r.campaign_id:
                by_campaign.setdefault(r.campaign_id, set()).add(r.subject)
        # Sender-quality rewrites do not touch subjects, so every campaign
        # has exactly one subject.
        assert all(len(subjects) == 1 for subjects in by_campaign.values())


class TestTiming:
    def test_messages_span_the_horizon(self, result):
        days = {day_of(r.t) for r in result.store.mta}
        assert min(days) == 0
        assert max(days) == result.info.horizon_days - 1

    def test_record_times_monotone(self, result):
        times = [r.t for r in result.store.mta]
        assert times == sorted(times)

    def test_weekend_legit_dip(self, result):
        from repro.util.simtime import is_weekend

        legit_by_weekend = {True: 0, False: 0}
        days_by_weekend = {True: set(), False: set()}
        for r in result.store.dispatch:
            if r.kind is MessageKind.LEGIT:
                weekend = is_weekend(r.t)
                legit_by_weekend[weekend] += 1
                days_by_weekend[weekend].add(day_of(r.t))
        weekday_rate = legit_by_weekend[False] / max(
            len(days_by_weekend[False]), 1
        )
        weekend_rate = legit_by_weekend[True] / max(
            len(days_by_weekend[True]), 1
        )
        assert weekend_rate < weekday_rate


class TestOutboundAndChurn:
    def test_outbound_mail_generated(self, result):
        assert result.store.outbound

    def test_whitelist_changes_from_multiple_sources(self, result):
        from repro.core.whitelist import WhitelistSource

        sources = {c.source for c in result.store.whitelist_changes}
        assert WhitelistSource.OUTBOUND in sources
        assert WhitelistSource.MANUAL in sources

    def test_determinism_same_seed(self):
        a = run_simulation("tiny", seed=99)
        b = run_simulation("tiny", seed=99)
        assert a.store.summary_counts() == b.store.summary_counts()
        assert [r.msg_id for r in a.store.mta[:200]] == [
            r.msg_id for r in b.store.mta[:200]
        ]

    def test_different_seeds_differ(self, result):
        other = run_simulation("tiny", seed=14)
        assert (
            other.store.summary_counts() != result.store.summary_counts()
        )
