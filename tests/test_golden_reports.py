"""Golden-report regression tests.

The Fig. 1 / Fig. 3 / Tab. 1 reports at ``tiny``/seed 7, compared
line-by-line against the committed files in ``tests/goldens/``. These
pin the *exact* simulation output: any refactor that perturbs event
order, RNG stream consumption, or record emission — however subtly —
fails here loudly instead of silently shifting every measured number.

If a change is *meant* to alter the output, regenerate with::

    PYTHONPATH=src python scripts/update_goldens.py

and commit the refreshed goldens alongside the change.
"""

import difflib
import pathlib

import pytest

from repro.analysis import engine_breakdown, flow, general_stats

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "goldens"

#: exp_id -> renderer over the tiny/seed-7 run (must mirror
#: scripts/update_goldens.py).
GOLDEN_RENDERERS = {
    "fig1": lambda r: flow.render(r.store),
    "fig3": lambda r: engine_breakdown.render(r.store),
    "tab1": lambda r: general_stats.render(r.store, r.info),
}


@pytest.mark.parametrize("exp_id", sorted(GOLDEN_RENDERERS))
def test_report_matches_golden(exp_id, tiny_result):
    golden_path = GOLDEN_DIR / f"{exp_id}.txt"
    assert golden_path.exists(), (
        f"missing golden {golden_path}; generate it with "
        "`PYTHONPATH=src python scripts/update_goldens.py`"
    )
    expected = golden_path.read_text(encoding="utf-8").splitlines()
    actual = (GOLDEN_RENDERERS[exp_id](tiny_result) + "\n").splitlines()

    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected,
                actual,
                fromfile=f"goldens/{exp_id}.txt",
                tofile="rendered",
                lineterm="",
            )
        )
        pytest.fail(
            f"{exp_id} report drifted from its golden — if intentional, "
            f"rerun scripts/update_goldens.py and commit.\n{diff}"
        )


def test_goldens_have_no_stray_files():
    """Every committed golden corresponds to a rendered report."""
    stray = {
        path.stem for path in GOLDEN_DIR.glob("*.txt")
    } - set(GOLDEN_RENDERERS)
    assert not stray, f"goldens without a renderer: {sorted(stray)}"
