"""Hand-built micro-environments for unit-testing the CR engine.

``MicroEnv`` wires one company (one protected user), a resolver with a few
registered domains, an internet with controllable remote hosts, and a
DNSBL service — small enough that each test can reason about every message
individually.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.store import LogStore
from repro.blacklistd.service import DnsblService, ListingPolicy
from repro.core.config import CompanyConfig, FilterSettings
from repro.core.engine import BehaviorHooks, CompanyInstallation
from repro.core.message import (
    EmailMessage,
    MessageKind,
    SenderClass,
    make_message,
)
from repro.net.dns import DnsRegistry, Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.internet import Internet
from repro.sim.engine import Simulator
from repro.util.simtime import DAY

COMPANY_DOMAIN = "acme-corp.example"
USER = "alice"
USER_ADDRESS = f"{USER}@{COMPANY_DOMAIN}"
CONTACT_DOMAIN = "partner.example"
CONTACT = f"bob@{CONTACT_DOMAIN}"
CONTACT_IP = "10.1.0.1"
DEAD_DOMAIN = "parked.example"
MTA_IN_IP = "10.0.0.1"
MTA_OUT_IP = "10.0.0.2"
CHALLENGE_IP = "10.0.0.3"


@dataclass
class MicroEnv:
    simulator: Simulator
    registry: DnsRegistry
    resolver: Resolver
    internet: Internet
    store: LogStore
    rbl: DnsblService
    installation: CompanyInstallation
    contact_host: RemoteMailHost
    config: CompanyConfig
    hooks: BehaviorHooks = field(default_factory=BehaviorHooks)

    def inbound(
        self,
        env_from: str = CONTACT,
        env_to: str = USER_ADDRESS,
        *,
        at: Optional[float] = None,
        client_ip: str = CONTACT_IP,
        kind: MessageKind = MessageKind.LEGIT,
        sender_class: SenderClass = SenderClass.REAL,
        subject: str = "hello there",
        size: int = 5_000,
        has_virus: bool = False,
    ) -> EmailMessage:
        """Inject one inbound message at the current (or given) sim time."""
        if at is not None:
            self.simulator.run(until=at)
        message = make_message(
            self.simulator.now,
            env_from,
            env_to,
            subject=subject,
            size=size,
            client_ip=client_ip,
            kind=kind,
            sender_class=sender_class,
        )
        self.installation.handle_inbound(message)
        return message

    def run_days(self, days: float) -> None:
        self.simulator.run(until=self.simulator.now + days * DAY)

    def drain(self) -> None:
        self.simulator.run()


def make_micro_env(
    *,
    open_relay: bool = False,
    dual_outbound: bool = True,
    filters: Optional[FilterSettings] = None,
    hooks: Optional[BehaviorHooks] = None,
    horizon_days: int = 60,
    audit: bool = False,
) -> MicroEnv:
    simulator = Simulator()
    registry = DnsRegistry()
    resolver = Resolver(registry)
    internet = Internet(resolver)
    store = LogStore()

    registry.register_mail_domain(COMPANY_DOMAIN, MTA_IN_IP)
    registry.register_mail_domain(
        CONTACT_DOMAIN, CONTACT_IP, spf=f"v=spf1 ip4:{CONTACT_IP} -all"
    )
    registry.register_mail_domain(DEAD_DOMAIN, "10.9.9.9")  # no host: dead

    contact_host = RemoteMailHost(
        CONTACT_DOMAIN, CONTACT_IP, mailboxes={"bob", "carol"}
    )
    internet.register_host(contact_host)

    rbl = DnsblService(
        "spamhaus-zen",
        ListingPolicy(threshold=1, window=DAY, base_duration=2 * DAY),
    )
    config = CompanyConfig(
        company_id="c-test",
        name="Acme",
        domain=COMPANY_DOMAIN,
        users=(USER, "admin"),
        mta_in_ip=MTA_IN_IP,
        mta_out_ip=MTA_OUT_IP,
        challenge_ip=CHALLENGE_IP if dual_outbound else MTA_OUT_IP,
        relay_domains=("relayed.example",) if open_relay else (),
        rejected_senders=frozenset({f"blocked@{CONTACT_DOMAIN}"}),
        filters=filters or FilterSettings(),
    )
    installation = CompanyInstallation(
        config=config,
        simulator=simulator,
        internet=internet,
        resolver=resolver,
        store=store,
        dnsbl_services={"spamhaus-zen": rbl},
        rng=random.Random(0),
        hooks=hooks,
        audit=audit,
    )
    installation.start(until=horizon_days * DAY)
    return MicroEnv(
        simulator=simulator,
        registry=registry,
        resolver=resolver,
        internet=internet,
        store=store,
        rbl=rbl,
        installation=installation,
        contact_host=contact_host,
        config=config,
        hooks=hooks or BehaviorHooks(),
    )
