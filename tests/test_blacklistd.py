"""Unit + property tests for the DNSBL ecosystem."""

import random

from hypothesis import given, strategies as st

from repro.blacklistd.monitor import BlacklistMonitor
from repro.blacklistd.service import (
    DnsblService,
    ListingPolicy,
    make_default_services,
)
from repro.blacklistd.spamtrap import TrapDirectory
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, HOUR


def _service(threshold=2, window=DAY, base=DAY, escalation=2.0, max_d=30 * DAY):
    return DnsblService(
        "test-rbl",
        ListingPolicy(
            threshold=threshold,
            window=window,
            base_duration=base,
            escalation=escalation,
            max_duration=max_d,
        ),
    )


class TestTrapDirectory:
    def test_add_and_lookup(self):
        directory = TrapDirectory()
        directory.add_trap("Trap@X.example", "svc")
        assert directory.is_trap("trap@x.example")
        assert directory.owner_of("trap@x.example") == "svc"

    def test_unknown_address(self):
        directory = TrapDirectory()
        assert not directory.is_trap("a@b.com")
        assert directory.owner_of("a@b.com") is None

    def test_create_traps_counts(self):
        directory = TrapDirectory()
        created = directory.create_traps(
            "svc", ["a.example", "b.example"], 5, random.Random(0)
        )
        assert len(created) == 10
        assert len(directory) == 10
        assert all(directory.owner_of(t) == "svc" for t in created)

    def test_trap_locals_look_harvested(self):
        directory = TrapDirectory()
        (trap,) = directory.create_traps("svc", ["a.example"], 1, random.Random(0))
        assert trap.startswith("trap-")
        assert trap.endswith("@a.example")


class TestListingPolicy:
    def test_below_threshold_not_listed(self):
        service = _service(threshold=3)
        service.record_trap_hit("1.1.1.1", 0.0)
        service.record_trap_hit("1.1.1.1", 1.0)
        assert not service.is_listed("1.1.1.1", 2.0)

    def test_threshold_reached_lists(self):
        service = _service(threshold=2)
        service.record_trap_hit("1.1.1.1", 0.0)
        service.record_trap_hit("1.1.1.1", 1.0)
        assert service.is_listed("1.1.1.1", 2.0)

    def test_listing_expires(self):
        service = _service(threshold=1, base=DAY)
        service.record_trap_hit("1.1.1.1", 0.0)
        assert service.is_listed("1.1.1.1", DAY - 1)
        assert not service.is_listed("1.1.1.1", DAY + 1)

    def test_hits_outside_window_do_not_count(self):
        service = _service(threshold=2, window=HOUR)
        service.record_trap_hit("1.1.1.1", 0.0)
        service.record_trap_hit("1.1.1.1", 2 * HOUR)
        assert not service.is_listed("1.1.1.1", 2 * HOUR + 1)

    def test_relisting_escalates_duration(self):
        service = _service(threshold=1, base=DAY, escalation=2.0)
        service.record_trap_hit("1.1.1.1", 0.0)
        first = service.listed_intervals("1.1.1.1")[0]
        assert first.listed_until - first.listed_at == DAY
        # Second listing, after the first expired.
        service.record_trap_hit("1.1.1.1", 3 * DAY)
        second = service.listed_intervals("1.1.1.1")[1]
        assert second.listed_until - second.listed_at == 2 * DAY

    def test_escalation_capped_at_max(self):
        service = _service(threshold=1, base=DAY, escalation=10.0, max_d=3 * DAY)
        service.record_trap_hit("1.1.1.1", 0.0)
        service.record_trap_hit("1.1.1.1", 2 * DAY)  # expired? no: still listed
        service.record_trap_hit("1.1.1.1", 5 * DAY)
        last = service.listed_intervals("1.1.1.1")[-1]
        assert last.listed_until - last.listed_at <= 3 * DAY

    def test_hits_while_listed_do_not_relist(self):
        service = _service(threshold=1, base=5 * DAY)
        service.record_trap_hit("1.1.1.1", 0.0)
        service.record_trap_hit("1.1.1.1", 1 * DAY)
        assert len(service.listed_intervals("1.1.1.1")) == 1

    def test_ips_are_independent(self):
        service = _service(threshold=1)
        service.record_trap_hit("1.1.1.1", 0.0)
        assert not service.is_listed("2.2.2.2", 1.0)

    def test_force_list(self):
        service = _service()
        service.force_list("3.3.3.3", 0.0, 10 * DAY)
        assert service.is_listed("3.3.3.3", 5 * DAY)
        assert not service.is_listed("3.3.3.3", 11 * DAY)

    def test_total_listed_time_merges_overlaps(self):
        service = _service()
        service.force_list("4.4.4.4", 0.0, 2 * DAY)
        service.force_list("4.4.4.4", 1 * DAY, 2 * DAY)  # overlaps
        service.force_list("4.4.4.4", 10 * DAY, DAY)
        assert service.total_listed_time("4.4.4.4", 30 * DAY) == 4 * DAY

    def test_total_listed_time_clipped_at_horizon(self):
        service = _service()
        service.force_list("4.4.4.4", 0.0, 10 * DAY)
        assert service.total_listed_time("4.4.4.4", 5 * DAY) == 5 * DAY

    @given(
        st.lists(
            st.floats(min_value=0, max_value=30 * DAY),
            min_size=0,
            max_size=40,
        )
    )
    def test_listing_monotone_in_trap_hits(self, hit_times):
        """More trap hits never yield *less* cumulative listed time."""
        base_hits = sorted(hit_times)
        extra_hits = sorted(base_hits + [15 * DAY])
        horizon = 120 * DAY

        a = _service(threshold=2)
        for t in base_hits:
            a.record_trap_hit("9.9.9.9", t)
        b = _service(threshold=2)
        for t in extra_hits:
            b.record_trap_hit("9.9.9.9", t)
        # Tolerance absorbs float rounding in interval merging.
        assert b.total_listed_time("9.9.9.9", horizon) >= (
            a.total_listed_time("9.9.9.9", horizon) - 1e-5
        )


class TestDefaultServices:
    def test_eight_operators(self):
        services = make_default_services()
        assert len(services) == 8
        names = {s.name for s in services}
        assert "spamhaus-zen" in names
        assert "cbl-abuseat" in names

    def test_policies_differ(self):
        services = make_default_services()
        thresholds = {s.policy.threshold for s in services}
        assert len(thresholds) > 1


class TestMonitor:
    def test_probes_every_pair_at_interval(self):
        simulator = Simulator()
        service = _service(threshold=1)
        monitor = BlacklistMonitor(
            simulator, [service], ["1.1.1.1", "2.2.2.2"], interval=4 * HOUR
        )
        monitor.start(until=DAY)
        simulator.run()
        # 6 probes within [0, 1 day): at 0h, 4h, 8h, 12h, 16h, 20h.
        assert len(monitor.observations) == 6 * 2

    def test_listed_days_counts_distinct_days(self):
        simulator = Simulator()
        service = _service(threshold=1)
        service.force_list("1.1.1.1", 0.0, 2 * DAY)
        monitor = BlacklistMonitor(
            simulator, [service], ["1.1.1.1"], interval=4 * HOUR
        )
        monitor.start(until=5 * DAY)
        simulator.run()
        assert monitor.listed_days("1.1.1.1") == 2.0

    def test_never_listed_ips(self):
        simulator = Simulator()
        service = _service(threshold=1)
        service.force_list("1.1.1.1", 0.0, DAY)
        monitor = BlacklistMonitor(
            simulator, [service], ["1.1.1.1", "2.2.2.2"], interval=4 * HOUR
        )
        monitor.start(until=DAY)
        simulator.run()
        assert monitor.never_listed_ips() == ["2.2.2.2"]

    def test_sink_receives_observations(self):
        simulator = Simulator()
        service = _service(threshold=1)
        seen = []
        monitor = BlacklistMonitor(
            simulator, [service], ["1.1.1.1"], interval=HOUR, sink=seen.append
        )
        monitor.start(until=3 * HOUR + 1)
        simulator.run()
        assert len(seen) == 4  # probes at 0h, 1h, 2h, 3h
        assert all(not obs.listed for obs in seen)
