"""Unit tests for the Fig. 9/10 churn and Fig. 11/§5.1 blacklisting analyses."""

import pytest

from repro.analysis import blacklisting, churn
from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.blacklistd.monitor import ProbeObservation
from repro.net.smtp import BounceReason, FinalStatus
from repro.util.simtime import DAY

from tests import recordfactory as rf


def _info(horizon_days=60.0, users=100):
    return DeploymentInfo(
        n_companies=2,
        n_open_relays=0,
        users_per_company={"c0": users // 2, "c1": users // 2},
        horizon_days=horizon_days,
        min_cluster_size=3,
        volume_scale=0.5,
    )


class TestChurn:
    def test_counts_normalised_to_60_days(self):
        store = LogStore()
        # User A: 5 additions over a 30-day horizon -> 10 per 60 days.
        for i in range(5):
            rf.whitelist_change(store, user="a@c0.example", t=i * DAY)
        stats = churn.compute(store, _info(horizon_days=30.0))
        assert stats.modified_whitelists == 1
        assert stats.additions_per_60d[0] == pytest.approx(10.0)

    def test_bin_assignment(self):
        store = LogStore()
        # 5/60d lands in the 1-10 bin; 100 additions -> 100/60d in 60-120.
        for i in range(5):
            rf.whitelist_change(store, user="a@c0.example", t=float(i))
        for i in range(100):
            rf.whitelist_change(store, user="b@c0.example", t=float(i))
        stats = churn.compute(store, _info(horizon_days=60.0))
        assert stats.bin_shares[0] == pytest.approx(50.0)  # 1-10
        assert stats.bin_shares[3] == pytest.approx(50.0)  # 60-120

    def test_daily_rate_thresholds(self):
        store = LogStore()
        for i in range(120):  # 2/day over 60 days
            rf.whitelist_change(store, user="fast@c0.example", t=float(i))
        for i in range(6):
            rf.whitelist_change(store, user="slow@c0.example", t=float(i))
        stats = churn.compute(store, _info(horizon_days=60.0))
        assert stats.share_ge_1_per_day == pytest.approx(0.5)
        assert stats.share_ge_2_per_day == pytest.approx(0.5)
        assert stats.share_ge_5_per_day == 0.0

    def test_additions_per_user_day(self):
        store = LogStore()
        for i in range(300):
            rf.whitelist_change(store, user=f"u{i % 10}@c0.example", t=float(i))
        stats = churn.compute(store, _info(horizon_days=60.0, users=100))
        assert stats.additions_per_user_day == pytest.approx(
            300 / 60.0 / 100
        )

    def test_users_split_per_company(self):
        store = LogStore()
        rf.whitelist_change(store, company="c0", user="a@c0.example")
        rf.whitelist_change(store, company="c1", user="a@c1.example")
        stats = churn.compute(store, _info())
        assert stats.modified_whitelists == 2

    def test_digest_examples_picked(self):
        store = LogStore()
        for day in range(10):
            rf.digest(store, user="big@c0.example", day=day, pending=50)
            rf.digest(store, user="mid@c0.example", day=day, pending=5)
            rf.digest(
                store,
                user="bursty@c0.example",
                day=day,
                pending=40 if day == 5 else 1,
            )
        examples = churn.pick_digest_examples(store)
        assert len(examples) == 3
        users = {e.user for e in examples}
        assert "big@c0.example" in users
        assert "bursty@c0.example" in users

    def test_digest_examples_empty_store(self):
        assert churn.pick_digest_examples(LogStore()) == []

    def test_render_smoke(self, tiny_result):
        out = churn.render(tiny_result.store, tiny_result.info)
        assert "Fig. 9" in out


class TestBlacklisting:
    def _store(self):
        store = LogStore()
        # c0: big sender, never blacklisted. c1: small, often blacklisted.
        for cid in range(1, 101):
            rf.challenge(store, cid, company="c0", server_ip="9.0.0.1")
            rf.outcome(store, cid, company="c0", status=FinalStatus.DELIVERED)
        for cid in range(1, 11):
            rf.challenge(store, cid, company="c1", server_ip="9.0.0.2")
        for cid in range(1, 6):
            rf.outcome(
                store,
                cid,
                company="c1",
                status=FinalStatus.BOUNCED,
                bounce_reason=BounceReason.BLACKLISTED,
            )
        for cid in range(6, 11):
            rf.outcome(store, cid, company="c1", status=FinalStatus.DELIVERED)
        # Probes over 3 days: ip2 listed on days 0-1.
        for day in range(3):
            for hour in (0, 4):
                t = day * DAY + hour * 3600
                store.add_probe(
                    ProbeObservation(t, "9.0.0.1", "spamhaus-zen", False)
                )
                store.add_probe(
                    ProbeObservation(
                        t, "9.0.0.2", "spamhaus-zen", day < 2
                    )
                )
        return store

    def test_company_bounce_ratios(self):
        stats = blacklisting.compute(self._store(), _info())
        by_id = {c.company_id: c for c in stats.companies}
        assert by_id["c0"].bounce_ratio == 0.0
        assert by_id["c1"].bounce_ratio == pytest.approx(0.5)

    def test_listed_days_from_probes(self):
        stats = blacklisting.compute(self._store(), _info())
        by_ip = {s.ip: s for s in stats.servers}
        assert by_ip["9.0.0.1"].listed_days == 0.0
        assert by_ip["9.0.0.2"].listed_days == 2.0

    def test_never_listed_share(self):
        stats = blacklisting.compute(self._store(), _info())
        assert stats.never_listed_share == pytest.approx(0.5)

    def test_top_sender_is_clean(self):
        stats = blacklisting.compute(self._store(), _info())
        assert stats.top_senders_listed_days(top=1) == [0.0]

    def test_negative_volume_listing_correlation(self):
        # Big sender clean, small sender listed: negative correlation, i.e.
        # definitely not the naive "more challenges -> more listings".
        stats = blacklisting.compute(self._store(), _info())
        assert stats.volume_listing_correlation < 0

    def test_render_smoke(self, tiny_result):
        out = blacklisting.render(tiny_result.store, tiny_result.info)
        assert "Fig. 11" in out


class TestSparkline:
    def test_empty_series(self):
        assert churn.render_sparkline({}) == ""

    def test_peak_gets_highest_glyph(self):
        spark = churn.render_sparkline({0: 0, 1: 5, 2: 10})
        assert spark[-1] == "@"
        assert spark[0] == "."

    def test_missing_days_are_gaps(self):
        spark = churn.render_sparkline({0: 1, 3: 1})
        assert len(spark) == 4
        assert spark[1] == " "
        assert spark[2] == " "

    def test_constant_series(self):
        spark = churn.render_sparkline({0: 4, 1: 4, 2: 4})
        assert spark == "@@@"

    def test_zero_counts_render_as_dots(self):
        assert churn.render_sparkline({0: 0, 1: 0}) == ".."
