"""Unit tests for the Fig. 12 SPF study and Fig. 5 variability analyses."""

import pytest

from repro.analysis import spf_study, variability
from repro.analysis.context import DeploymentInfo
from repro.analysis.spf_study import ChallengeFate
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.filters.spf import SpfResult
from repro.core.spools import Category
from repro.net.smtp import BounceReason, FinalStatus

from tests import recordfactory as rf


class TestSpfStudy:
    def _store(self):
        store = LogStore()
        # Solved challenge, SPF pass.
        rf.dispatch(store, challenge_id=1, challenge_created=True,
                    spf=SpfResult.PASS)
        rf.challenge(store, 1)
        rf.outcome(store, 1, status=FinalStatus.DELIVERED)
        rf.web(store, 1, WebAction.SOLVE)
        # Delivered-unsolved, SPF fail.
        rf.dispatch(store, challenge_id=2, challenge_created=True,
                    spf=SpfResult.FAIL)
        rf.challenge(store, 2)
        rf.outcome(store, 2, status=FinalStatus.DELIVERED)
        # Bounced: one fail, one none.
        for cid, spf in ((3, SpfResult.FAIL), (4, SpfResult.NONE)):
            rf.dispatch(store, challenge_id=cid, challenge_created=True, spf=spf)
            rf.challenge(store, cid)
            rf.outcome(
                store,
                cid,
                status=FinalStatus.BOUNCED,
                bounce_reason=BounceReason.NONEXISTENT_RECIPIENT,
            )
        # Expired, SPF fail.
        rf.dispatch(store, challenge_id=5, challenge_created=True,
                    spf=SpfResult.FAIL)
        rf.challenge(store, 5)
        rf.outcome(store, 5, status=FinalStatus.EXPIRED)
        # Still in flight (no outcome yet).
        rf.dispatch(store, challenge_id=6, challenge_created=True,
                    spf=SpfResult.NONE)
        rf.challenge(store, 6)
        # Filter-dropped gray mail is not part of the study.
        rf.dispatch(store, filter_drop="rbl", spf=SpfResult.FAIL)
        return store

    def test_fate_classification(self):
        stats = spf_study.compute(self._store())
        totals = {
            fate: sum(counter.values())
            for fate, counter in stats.by_fate.items()
        }
        assert totals[ChallengeFate.SOLVED] == 1
        assert totals[ChallengeFate.DELIVERED_UNSOLVED] == 1
        assert totals[ChallengeFate.BOUNCED] == 2
        assert totals[ChallengeFate.EXPIRED] == 1
        assert totals[ChallengeFate.PENDING] == 1

    def test_fail_shares(self):
        stats = spf_study.compute(self._store())
        assert stats.fail_share(ChallengeFate.EXPIRED) == 1.0
        assert stats.fail_share(ChallengeFate.BOUNCED) == 0.5
        assert stats.fail_share(ChallengeFate.SOLVED) == 0.0

    def test_bad_challenge_share(self):
        stats = spf_study.compute(self._store())
        # bad = bounced(2) + expired(1) + delivered_unsolved(1); fails = 3.
        assert stats.bad_challenge_fail_share == pytest.approx(0.75)

    def test_attached_messages_counted(self):
        store = self._store()
        # A suppressed duplicate attached to challenge 5 (expired).
        rf.dispatch(store, challenge_id=5, challenge_created=False,
                    spf=SpfResult.NONE)
        stats = spf_study.compute(store)
        totals = sum(stats.by_fate[ChallengeFate.EXPIRED].values())
        assert totals == 2

    def test_render_smoke(self, tiny_store):
        out = spf_study.render(tiny_store)
        assert "Fig. 12" in out


class TestVariability:
    def _data(self):
        store = LogStore()
        info = DeploymentInfo(
            n_companies=3,
            n_open_relays=0,
            users_per_company={"c0": 10, "c1": 20, "c2": 40},
            horizon_days=10.0,
            min_cluster_size=3,
            volume_scale=1.0,
        )
        for company, n_mta, n_white, n_chal, n_solved in (
            ("c0", 100, 10, 5, 1),
            ("c1", 200, 30, 8, 2),
            ("c2", 400, 20, 30, 1),
        ):
            for _ in range(n_mta):
                rf.mta(store, company=company)
            for _ in range(n_white):
                rf.dispatch(store, company=company, category=Category.WHITE)
            for i in range(n_chal):
                rf.dispatch(
                    store,
                    company=company,
                    challenge_id=i + 1,
                    challenge_created=True,
                )
            for i in range(n_solved):
                rf.web(store, i + 1, WebAction.SOLVE, company=company)
        return store, info

    def test_per_company_points(self):
        store, info = self._data()
        stats = variability.compute(store, info)
        assert len(stats.points) == 3
        c0 = next(p for p in stats.points if p.company_id == "c0")
        assert c0.users == 10
        assert c0.emails_per_day == pytest.approx(10.0)
        assert c0.white_share == pytest.approx(10 / 15)
        assert c0.reflection == pytest.approx(5 / 15)
        assert c0.captcha_share == pytest.approx(1 / 5)

    def test_correlation_matrix_symmetric_and_bounded(self):
        store, info = self._data()
        stats = variability.compute(store, info)
        for a in variability.VARIABLES:
            for b in variability.VARIABLES:
                if a == b:
                    continue
                r = stats.correlation(a, b)
                assert -1.0 <= r <= 1.0
                assert r == stats.correlation(b, a)

    def test_render_smoke(self, tiny_result):
        out = variability.render(tiny_result.store, tiny_result.info)
        assert "Pearson" in out
        assert "captcha" in out
