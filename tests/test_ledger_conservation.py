"""Message-lifecycle conservation: every accepted message reaches exactly
one terminal disposition.

The invariant: ``accepted == delivered + black_dropped + filter_dropped +
released + deleted + expired + pending_at_horizon`` for every company,
regardless of the seed, the fault plan, or where the horizon falls. These
tests run full simulations with the continuous audit enabled (so any
illegal edge raises at the offending call, not just at the end-of-run
check) and pin the output-invariance properties: audit mode must not
change what the run produces, and a cached substrate must balance exactly
like an uncached one.
"""

from __future__ import annotations

import pytest

from repro.blacklistd.service import DnsblService
from repro.experiments import run_simulation
from repro.experiments.parallel import store_digest
from repro.net.dns import Resolver
from repro.net.internet import Internet


def _assert_conserved(result):
    stats = result.ledger_stats
    assert stats is not None
    assert stats.conserved, "; ".join(stats.violations)
    assert stats.accepted == stats.terminal_total
    assert stats.stranded == 0
    assert stats.leaked_challenge_slots == 0
    # The per-company rows sum to the totals — no company is double
    # counted or missing from the rollup.
    assert stats.accepted == sum(
        snap.accepted for snap in stats.per_company
    )


class TestConservationAcrossSeedsAndWeather:
    @pytest.mark.parametrize("seed", [3, 5, 7])
    @pytest.mark.parametrize("faults", [None, "mild", "stormy"])
    def test_audited_runs_conserve(self, seed, faults):
        result = run_simulation("tiny", seed=seed, faults=faults, audit=True)
        _assert_conserved(result)
        assert result.ledger_stats.audit is True

    def test_unaudited_run_still_checked_at_end(self):
        # Counters-only mode skips per-message tracking but the partition
        # equation is still verified once at end of run.
        result = run_simulation("tiny", seed=7)
        _assert_conserved(result)
        assert result.ledger_stats.audit is False

    def test_quarantine_residual_matches_spools(self):
        result = run_simulation("tiny", seed=7, audit=True)
        stats = result.ledger_stats
        total_at_horizon = sum(
            inst.gray_spool.total_pending_at_horizon
            for inst in result.installations.values()
        )
        assert stats.pending_at_horizon == total_at_horizon
        assert stats.quarantined_total == (
            stats.released
            + stats.deleted
            + stats.expired
            + stats.pending_at_horizon
        )


class TestAuditIsOutputInvariant:
    def test_audit_on_equals_audit_off(self):
        # The auditor observes; it must never steer. Byte-identical store
        # output is the strongest form of that claim.
        baseline = run_simulation("tiny", seed=7)
        audited = run_simulation("tiny", seed=7, audit=True)
        assert store_digest(audited.store) == store_digest(baseline.store)

    def test_env_var_enables_audit(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        result = run_simulation("tiny", seed=7)
        assert result.ledger_stats.audit is True
        monkeypatch.setenv("REPRO_AUDIT", "0")
        result = run_simulation("tiny", seed=7)
        assert result.ledger_stats.audit is False


class TestCachedEqualsUncachedWithAuditOn:
    def test_store_digests_identical(self, monkeypatch):
        cached = run_simulation("tiny", seed=3, faults="stormy", audit=True)
        _assert_conserved(cached)

        monkeypatch.setattr(Resolver, "CACHE_ENABLED", False)
        monkeypatch.setattr(DnsblService, "CACHE_ENABLED", False)
        monkeypatch.setattr(Internet, "CACHE_ENABLED", False)
        uncached = run_simulation("tiny", seed=3, faults="stormy", audit=True)
        _assert_conserved(uncached)

        assert store_digest(cached.store) == store_digest(uncached.store)
        # The ledger totals agree too — the lifecycle mix is a pure
        # function of (seed, settings), not of cache hit patterns.
        assert cached.ledger_stats.accepted == uncached.ledger_stats.accepted
        assert (
            cached.ledger_stats.pending_at_horizon
            == uncached.ledger_stats.pending_at_horizon
        )


class TestConservationUnderBatchedDelivery:
    """PR 6's batched data plane must be invisible to the lifecycle
    ledger: audited batched runs balance, and flipping batching off
    changes no output byte."""

    @pytest.mark.parametrize("seed", [3, 7])
    def test_audited_batched_run_conserves(self, seed):
        result = run_simulation(
            "tiny", seed=seed, audit=True, batch_delivery=True
        )
        _assert_conserved(result)
        assert result.ledger_stats.audit is True

    def test_batched_equals_unbatched_with_audit_on(self):
        batched = run_simulation(
            "tiny", seed=5, audit=True, batch_delivery=True
        )
        unbatched = run_simulation(
            "tiny", seed=5, audit=True, batch_delivery=False
        )
        _assert_conserved(batched)
        _assert_conserved(unbatched)
        assert store_digest(batched.store) == store_digest(unbatched.store)
