"""Crash-fault injection: the product survives component crashes with
zero message loss — and the oracles actually catch losses when the
durability model is deliberately lossy.

Two conservation oracles cover the two loss classes:

* the **inbound lifecycle ledger** (raises :class:`LedgerError`
  unconditionally at end of run) catches quarantine-store losses —
  a gray-spool entry that vanishes leaves its accepted message with no
  terminal disposition;
* **outbound delivery conservation** (``fault_stats.conserved``) catches
  in-flight mail dropped from a crashed outbound MTA's queue.
"""

import pytest

from repro.core.ledger import LedgerError
from repro.experiments.parallel import (
    RunSpec,
    run_specs,
    store_digest,
)
from repro.experiments.runner import run_simulation
from repro.net.crashes import (
    CRASH_PRESETS,
    COMPONENTS,
    CrashSettings,
    JOURNALED,
    LOSSY,
    get_crash_preset,
)
from repro.util.simtime import HOUR, MINUTE

#: The acceptance grid: flaky components + continuous audit, three seeds.
SEEDS = (3, 5, 7)


class TestZeroLossUnderCrashes:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_flaky_audit_conserves_every_message(self, seed):
        # Completing at all is the first assertion: the continuous
        # auditor raises LedgerError on any violated transition.
        result = run_simulation("tiny", seed=seed, crashes="flaky", audit=True)
        crash = result.crash_stats
        assert crash.enabled
        assert crash.crashes > 0, "flaky preset must actually crash things"
        assert crash.lost == 0
        assert crash.journal_mismatches == 0
        assert crash.clean_recovery
        assert result.ledger_stats.conserved
        assert result.fault_stats.conserved

    def test_crashes_off_is_byte_identical_to_no_crash_plan(self):
        plain = run_simulation("tiny", seed=7)
        off = run_simulation("tiny", seed=7, crashes="off")
        assert store_digest(off.store) == store_digest(plain.store)
        assert not off.crash_stats.enabled
        assert off.crash_stats.crashes == 0

    def test_crash_records_reach_the_store(self):
        result = run_simulation("tiny", seed=7, crashes="flaky")
        assert len(result.store.crashes) == result.crash_stats.crashes
        components = {record.component for record in result.store.crashes}
        assert components <= set(COMPONENTS)


class TestLossyDurability:
    """The zero-loss verdict is earned, not asserted: turn journaling
    off and the oracles must catch the resulting losses."""

    def test_lossy_gray_spool_violates_the_ledger(self):
        settings = CrashSettings(
            crashes_per_component_month=3.0,
            downtime_range=(10 * MINUTE, 4 * HOUR),
            durability=LOSSY,
            lossy_window=12 * HOUR,
        )
        with pytest.raises(LedgerError, match="conservation"):
            run_simulation("tiny", seed=7, crashes=settings, audit=True)

    def test_lossy_mta_breaks_outbound_conservation(self):
        settings = CrashSettings(
            crashes_per_component_month=3.0,
            downtime_range=(10 * MINUTE, 4 * HOUR),
            durability=LOSSY,
            lossy_window=10 * MINUTE,
        )
        result = run_simulation("tiny", seed=7, crashes=settings)
        assert result.crash_stats.lost > 0
        assert not result.fault_stats.conserved


class TestSettingsValidation:
    def test_presets_exist_and_default_to_journaled(self):
        assert set(CRASH_PRESETS) == {"off", "rare", "flaky"}
        assert not CRASH_PRESETS["off"].enabled
        assert CRASH_PRESETS["flaky"].durability == JOURNALED

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(KeyError, match="no-such"):
            get_crash_preset("no-such")
        with pytest.raises(KeyError):
            run_simulation("tiny", seed=3, crashes="no-such")

    def test_unknown_durability_rejected(self):
        with pytest.raises(ValueError, match="durability"):
            CrashSettings(durability="hopeful")

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="components"):
            CrashSettings(components=("dispatcher", "mainframe"))


class TestFaultComposition:
    """Network weather + component crashes + audit, together."""

    def test_stormy_flaky_audit_conserves_across_seeds(self, tmp_path):
        specs = [
            RunSpec("tiny", seed=seed, faults="stormy", crashes="flaky",
                    audit=True)
            for seed in SEEDS
        ]
        # First pass computes (audited: any lifecycle violation raises
        # inside the worker and would surface as a failed summary).
        uncached = run_specs(specs, jobs=1, cache_dir=tmp_path / "runs")
        assert not any(s.failed for s in uncached)
        # Second pass must be answered from the cache, byte-identically.
        cached = run_specs(specs, jobs=1, cache_dir=tmp_path / "runs")
        assert [s.digest for s in cached] == [s.digest for s in uncached]
        assert all(store_digest(s.store) == s.digest for s in cached)
