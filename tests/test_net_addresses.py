"""Unit + property tests for RFC822-lite address parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    Address,
    AddressError,
    domain_of,
    is_well_formed,
    parse_address,
)

VALID = [
    "alice@example.com",
    "a@b.co",
    "dept-x.p@scn-1.com",
    "first.last@sub.domain.example.org",
    "user+tag@example.com",
    "o'brien@example.ie",
    "x_y=z{q}@weird-but-legal.net",
    "UPPER@CASE.COM",
    "1digit@start.com",
]

INVALID = [
    "",
    "no-at-sign.example.com",
    "double@@at.example.com",
    "@missing-local.com",
    "missing-domain@",
    "two@at@signs.com",
    "bad local@example.com",
    "local@nodot",
    "local@.leadingdot.com",
    "local@trailing.dot.",
    "local@-dash.start.com",
    "local@dash.end-.com",
    "local@example.c0m0@",
    "local@example.1234",  # all-numeric TLD
    ".leading@example.com",
    "trailing.@example.com",
    "dou..ble@example.com",
    "unicodeé@exaçmple.com",
    "a" * 65 + "@example.com",  # local too long
    "x@" + "a" * 250 + ".com",  # domain too long
]


class TestParsing:
    @pytest.mark.parametrize("raw", VALID)
    def test_valid_addresses_parse(self, raw):
        address = parse_address(raw)
        assert address.local
        assert "." in address.domain

    @pytest.mark.parametrize("raw", INVALID)
    def test_invalid_addresses_rejected(self, raw):
        with pytest.raises(AddressError):
            parse_address(raw)
        assert not is_well_formed(raw)

    def test_domain_lowercased_local_preserved(self):
        address = parse_address("Dept-X.P@SCN-1.COM")
        assert address.domain == "scn-1.com"
        assert address.local == "Dept-X.P"

    def test_full_roundtrip(self):
        assert parse_address("a.b@c.de").full == "a.b@c.de"

    def test_str_is_full(self):
        assert str(Address("a", "b.com")) == "a@b.com"

    def test_domain_of(self):
        assert domain_of("x@Example.COM") == "example.com"

    def test_domain_of_malformed_raises(self):
        with pytest.raises(AddressError):
            domain_of("nonsense")

    def test_non_string_rejected(self):
        with pytest.raises(AddressError):
            parse_address(None)  # type: ignore[arg-type]


class TestProperties:
    @given(st.text(max_size=300))
    def test_never_crashes_on_arbitrary_text(self, raw):
        # Must classify, never raise anything but AddressError.
        is_well_formed(raw)

    @given(st.text(max_size=300))
    def test_parse_agrees_with_is_well_formed(self, raw):
        if is_well_formed(raw):
            parsed = parse_address(raw)
            # Re-parsing the canonical form must succeed and be stable.
            again = parse_address(parsed.full)
            assert again == parsed
        else:
            with pytest.raises(AddressError):
                parse_address(raw)

    @given(
        st.from_regex(r"[A-Za-z0-9]{1,10}(\.[A-Za-z0-9]{1,10}){0,2}", fullmatch=True),
        st.from_regex(
            r"[a-z0-9]{1,10}(\.[a-z0-9]{1,10}){0,2}\.[a-z]{2,6}", fullmatch=True
        ),
    )
    def test_generated_dot_atoms_always_parse(self, local, domain):
        address = parse_address(f"{local}@{domain}")
        assert address.local == local
        assert address.domain == domain


def _parser_accepts(raw: str) -> bool:
    """Ground truth: does :func:`parse_address` accept *raw*?"""
    try:
        parse_address(raw)
        return True
    except AddressError:
        return False


class TestFastPathPin:
    """Pin ``is_well_formed``'s single-regex fast path to ``parse_address``.

    The fast path falls back to the parser on rejection, so the only way
    the two can diverge is the fast path *accepting* a string the parser
    rejects. These tests therefore generate acceptance-shaped strings
    hugging every length boundary the fast path checks with arithmetic
    (whole address 254, local 64, domain 253, final label 63) and assert
    the memoised verdict equals the parser's. The memo cache is cleared
    each time so a stale verdict can never mask a divergence.
    """

    def _verdict(self, raw: str) -> bool:
        from repro.net.addresses import _WELL_FORMED_CACHE

        _WELL_FORMED_CACHE.clear()
        return is_well_formed(raw)

    # Deterministic boundary probes: (local_len, label, tld) shapes around
    # every limit the fast path enforces arithmetically.
    BOUNDARIES = [
        "a" * 64 + "@example.com",          # local at the 64 limit: valid
        "a" * 65 + "@example.com",          # local over: invalid
        "x@" + "a." * 124 + "com",          # domain 251 chars: valid
        "x@" + ("a" * 63 + ".") * 3 + "a" * 61 + ".com",  # domain 257: invalid
        "x@b." + "c" * 63,                  # final label at 63: valid
        "x@b." + "c" * 64,                  # final label over 63: invalid
        "a" * 64 + "@" + "b." * 92 + "com", # total 252: valid
        "a" * 64 + "@" + "b." * 93 + "com", # total 254 but domain fine: valid
        "a" * 64 + "@" + "b." * 94 + "com", # total 256: invalid
        "x@" + "a" * 62 + "b.com",          # label at 63: valid
        "x@" + "a" * 63 + "b.com",          # label at 64: invalid
        "x@a-b.com",                        # interior hyphen: valid
        "x@-ab.com",                        # leading hyphen label: invalid
        "x@ab-.com",                        # trailing hyphen label: invalid
        "x@ab.c",                           # 1-char TLD: invalid
        "x@ab.co",                          # 2-char TLD: valid
        "x@ab.c0",                          # digit in TLD: invalid
        "x.y@a.b.c.d.example.org",          # deep nesting: valid
        "x..y@example.com",                 # empty atom: invalid
        "x@example..com",                   # empty label: invalid
    ]

    @pytest.mark.parametrize("raw", BOUNDARIES)
    def test_boundary_probes_match_parser(self, raw):
        assert self._verdict(raw) == _parser_accepts(raw), raw

    @given(
        st.from_regex(
            r"[A-Za-z0-9!#$%&'*+/=?^_`{|}~.-]{1,70}", fullmatch=True
        ),
        st.lists(
            st.from_regex(r"[A-Za-z0-9-]{1,66}", fullmatch=True),
            min_size=1,
            max_size=5,
        ),
        st.from_regex(r"[A-Za-z]{1,66}", fullmatch=True),
    )
    def test_fuzzed_acceptance_shapes_match_parser(self, local, labels, tld):
        # Assemble strings that plausibly match _FULL_RE (atext locals with
        # dots anywhere, LDH labels up to 66 chars, alpha TLDs up to 66) —
        # exactly the population where an arithmetic slip in the fast path
        # would over-accept relative to the parser.
        raw = local + "@" + ".".join(labels + [tld])
        assert self._verdict(raw) == _parser_accepts(raw), raw

    @given(st.text(max_size=300))
    def test_arbitrary_text_matches_parser(self, raw):
        assert self._verdict(raw) == _parser_accepts(raw)


class TestLiveTrafficHardening:
    """Inputs live SMTP traffic produces that the simulator never does.

    A real client can hand the envelope parser CRLF pairs (command
    injection), bare LFs, NUL bytes, and other C0 controls. Both paths —
    the single-regex fast path and the slow parser — must reject every one
    of these identically; in particular ``$``-anchored regexes would accept
    a trailing ``\\n`` (``$`` matches before a final newline), which is why
    the grammar anchors with ``\\Z``.
    """

    INJECTIONS = [
        "a@b.com\n",                       # the classic $-anchor hole
        "a@b.com\r\n",
        "a@b.com\r",
        "a\n@b.com",
        "a@b.com\nRCPT TO:<evil@x.com>",   # smuggled pipelined command
        "a@b.com\r\nDATA",
        "victim@example.com\rMAIL FROM:<x@y.co>",
        "a\x00@b.com",                     # NUL truncation probe
        "a@b.com\x00",
        "\x00a@b.com",
        "a@b\x7f.com",                     # DEL
        "a\t@b.com",                       # HT is not atext
        "a@b.com\x0b",                     # VT
        "\na@b.com",
    ]

    @pytest.mark.parametrize("raw", INJECTIONS)
    def test_injection_rejected_by_parser(self, raw):
        with pytest.raises(AddressError):
            parse_address(raw)

    @pytest.mark.parametrize("raw", INJECTIONS)
    def test_injection_rejected_identically_by_fast_path(self, raw):
        from repro.net.addresses import _WELL_FORMED_CACHE

        _WELL_FORMED_CACHE.clear()
        assert not is_well_formed(raw)
        assert is_well_formed(raw) == _parser_accepts(raw)

    def test_overlong_local_part_rejected_with_valid_tail(self):
        # 64 is the limit; a valid-looking 200-char local must not slip
        # through either path.
        raw = "a" * 200 + "@example.com"
        assert not is_well_formed(raw)
        with pytest.raises(AddressError):
            parse_address(raw)

    @given(
        st.from_regex(r"[A-Za-z0-9.]{1,20}@[a-z0-9.]{1,20}\.[a-z]{2,4}",
                      fullmatch=True),
        st.sampled_from(["\r", "\n", "\r\n", "\x00", "\x01", "\x7f"]),
        st.integers(min_value=0, max_value=20),
    )
    def test_fuzzed_control_injection_never_accepted(self, base, ctrl, pos):
        from repro.net.addresses import _WELL_FORMED_CACHE

        # Splice a control sequence into an otherwise plausible address at
        # an arbitrary position; both paths must reject.
        cut = min(pos, len(base))
        raw = base[:cut] + ctrl + base[cut:]
        _WELL_FORMED_CACHE.clear()
        assert not is_well_formed(raw)
        assert not _parser_accepts(raw)


class TestSplitAddress:
    """``split_address`` is a plain textual split used after validation."""

    def test_splits_and_lowercases_domain(self):
        from repro.net.addresses import split_address

        assert split_address("Dept-X.P@SCN-1.COM") == ("Dept-X.P", "scn-1.com")

    def test_memoised_verdict_is_stable(self):
        from repro.net.addresses import _SPLIT_CACHE, split_address

        _SPLIT_CACHE.clear()
        first = split_address("alice@Example.COM")
        second = split_address("alice@Example.COM")
        assert first == second == ("alice", "example.com")
        assert "alice@Example.COM" in _SPLIT_CACHE

    @given(
        st.from_regex(r"[A-Za-z0-9.+_-]{1,40}", fullmatch=True),
        st.from_regex(r"[A-Za-z0-9.-]{1,40}", fullmatch=True),
    )
    def test_agrees_with_rpartition(self, local, domain):
        from repro.net.addresses import _SPLIT_CACHE, split_address

        raw = f"{local}@{domain}"
        _SPLIT_CACHE.clear()
        expect_local, _, expect_domain = raw.rpartition("@")
        assert split_address(raw) == (expect_local, expect_domain.lower())
