"""Unit + property tests for RFC822-lite address parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    Address,
    AddressError,
    domain_of,
    is_well_formed,
    parse_address,
)

VALID = [
    "alice@example.com",
    "a@b.co",
    "dept-x.p@scn-1.com",
    "first.last@sub.domain.example.org",
    "user+tag@example.com",
    "o'brien@example.ie",
    "x_y=z{q}@weird-but-legal.net",
    "UPPER@CASE.COM",
    "1digit@start.com",
]

INVALID = [
    "",
    "no-at-sign.example.com",
    "double@@at.example.com",
    "@missing-local.com",
    "missing-domain@",
    "two@at@signs.com",
    "bad local@example.com",
    "local@nodot",
    "local@.leadingdot.com",
    "local@trailing.dot.",
    "local@-dash.start.com",
    "local@dash.end-.com",
    "local@example.c0m0@",
    "local@example.1234",  # all-numeric TLD
    ".leading@example.com",
    "trailing.@example.com",
    "dou..ble@example.com",
    "unicodeé@exaçmple.com",
    "a" * 65 + "@example.com",  # local too long
    "x@" + "a" * 250 + ".com",  # domain too long
]


class TestParsing:
    @pytest.mark.parametrize("raw", VALID)
    def test_valid_addresses_parse(self, raw):
        address = parse_address(raw)
        assert address.local
        assert "." in address.domain

    @pytest.mark.parametrize("raw", INVALID)
    def test_invalid_addresses_rejected(self, raw):
        with pytest.raises(AddressError):
            parse_address(raw)
        assert not is_well_formed(raw)

    def test_domain_lowercased_local_preserved(self):
        address = parse_address("Dept-X.P@SCN-1.COM")
        assert address.domain == "scn-1.com"
        assert address.local == "Dept-X.P"

    def test_full_roundtrip(self):
        assert parse_address("a.b@c.de").full == "a.b@c.de"

    def test_str_is_full(self):
        assert str(Address("a", "b.com")) == "a@b.com"

    def test_domain_of(self):
        assert domain_of("x@Example.COM") == "example.com"

    def test_domain_of_malformed_raises(self):
        with pytest.raises(AddressError):
            domain_of("nonsense")

    def test_non_string_rejected(self):
        with pytest.raises(AddressError):
            parse_address(None)  # type: ignore[arg-type]


class TestProperties:
    @given(st.text(max_size=300))
    def test_never_crashes_on_arbitrary_text(self, raw):
        # Must classify, never raise anything but AddressError.
        is_well_formed(raw)

    @given(st.text(max_size=300))
    def test_parse_agrees_with_is_well_formed(self, raw):
        if is_well_formed(raw):
            parsed = parse_address(raw)
            # Re-parsing the canonical form must succeed and be stable.
            again = parse_address(parsed.full)
            assert again == parsed
        else:
            with pytest.raises(AddressError):
                parse_address(raw)

    @given(
        st.from_regex(r"[A-Za-z0-9]{1,10}(\.[A-Za-z0-9]{1,10}){0,2}", fullmatch=True),
        st.from_regex(
            r"[a-z0-9]{1,10}(\.[a-z0-9]{1,10}){0,2}\.[a-z]{2,6}", fullmatch=True
        ),
    )
    def test_generated_dot_atoms_always_parse(self, local, domain):
        address = parse_address(f"{local}@{domain}")
        assert address.local == local
        assert address.domain == domain
