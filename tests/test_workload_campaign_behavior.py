"""Unit tests for spam campaigns and behaviour models."""

import random

import pytest

from repro.core.message import MessageKind, SenderClass, make_message
from repro.util.rng import RngStreams
from repro.workload.behavior import BehaviorModel
from repro.workload.calibration import DEFAULT_CALIBRATION
from repro.workload.entities import build_world
from repro.workload.scale import get_preset
from repro.workload.spamcampaign import CampaignFactory


@pytest.fixture(scope="module")
def world():
    return build_world(get_preset("tiny"), DEFAULT_CALIBRATION, RngStreams(5))


@pytest.fixture()
def campaign(world):
    factory = CampaignFactory(DEFAULT_CALIBRATION, random.Random(1))
    return factory.spawn(world, now=0.0)


class TestCampaign:
    def test_subject_long_enough_for_clustering(self, campaign):
        low, high = DEFAULT_CALIBRATION.campaign_subject_words
        assert low <= len(campaign.subject.split()) <= high

    def test_activity_window(self, campaign):
        assert campaign.active_at(campaign.start)
        assert not campaign.active_at(campaign.end)

    def test_bots_from_world_pool(self, world, campaign):
        assert campaign.bot_ips
        bot = campaign.sample_bot(random.Random(0))
        assert bot in campaign.bot_ips

    def test_sender_classes_match_company_mix(self, world, campaign):
        rng = random.Random(2)
        company = world.companies[0]
        classes = []
        for _ in range(3000):
            _, sender_class = campaign.sample_sender(world, company, rng)
            classes.append(sender_class)
        mix = DEFAULT_CALIBRATION.spoof_mix(company.trap_affinity)
        observed_innocent = classes.count(
            SenderClass.INNOCENT_THIRD_PARTY
        ) / len(classes)
        assert observed_innocent == pytest.approx(mix["innocent"], abs=0.05)
        observed_dead = classes.count(SenderClass.DEAD_DOMAIN) / len(classes)
        assert observed_dead == pytest.approx(mix["dead_domain"], abs=0.05)

    def test_sender_pool_reuse(self, world, campaign):
        rng = random.Random(3)
        company = world.companies[0]
        senders = [
            campaign.sample_sender(world, company, rng)[0] for _ in range(400)
        ]
        # Finite pools: substantially fewer distinct senders than draws.
        assert len(set(senders)) < len(senders) * 0.8

    def test_targets_are_subset_of_company_users(self, world, campaign):
        rng = random.Random(4)
        company = world.companies[0]
        targets = {
            campaign.sample_target(company, rng).address for _ in range(200)
        }
        all_users = {u.address for u in company.users}
        assert targets <= all_users
        coverage = len(targets) / len(all_users)
        low, high = campaign.target_coverage
        assert coverage <= high + 0.25

    def test_factory_ids_unique(self, world):
        factory = CampaignFactory(DEFAULT_CALIBRATION, random.Random(5))
        a = factory.spawn(world, 0.0)
        b = factory.spawn(world, 0.0)
        assert a.campaign_id != b.campaign_id

    def test_virus_campaigns_are_minority(self, world):
        factory = CampaignFactory(DEFAULT_CALIBRATION, random.Random(6))
        campaigns = [factory.spawn(world, 0.0) for _ in range(200)]
        with_virus = sum(1 for c in campaigns if c.virus_prob > 0)
        assert 0 < with_virus < 40


class TestBehaviorModel:
    def _model(self, world):
        return BehaviorModel(world, DEFAULT_CALIBRATION, RngStreams(7))

    def test_solve_delay_distribution_shape(self, world):
        model = self._model(world)
        rng = random.Random(7)
        delays = [model._solve_delay(rng) for _ in range(5000)]
        under_5min = sum(1 for d in delays if d < 300) / len(delays)
        under_30min = sum(1 for d in delays if d < 1800) / len(delays)
        assert 0.15 < under_5min < 0.5
        assert under_30min > under_5min
        assert max(delays) <= 3 * 86400 * 1.01

    def test_attempts_capped_at_five(self, world):
        model = self._model(world)
        rng = random.Random(7)
        attempts = [model._sample_attempts(rng) for _ in range(5000)]
        assert max(attempts) <= 5
        assert min(attempts) >= 1
        share_one = attempts.count(1) / len(attempts)
        assert share_one == pytest.approx(
            DEFAULT_CALIBRATION.captcha_attempts_probs[0], abs=0.05
        )

    def test_newsletter_solve_probs_include_marketing(self, world):
        model = self._model(world)
        for source in world.marketing_sources:
            assert source.source_id in model._newsletter_solve_prob

    @staticmethod
    def _fresh_entry(kind=MessageKind.LEGIT):
        from repro.core.spools import GrayEntry, GrayStatus

        return GrayEntry(
            message=make_message(0.0, "s@x.com", "u@c.com", kind=kind),
            user="u@c.com",
            entered_at=0.0,
            expires_at=100.0,
            challenge_id=None,
            status=GrayStatus.PENDING,
        )

    def test_digest_review_sometimes_skipped(self, world):
        model = self._model(world)
        outcomes = {True: 0, False: 0}
        for _ in range(300):
            decisions = model.digest_review(
                None, "u@c.com", [self._fresh_entry()], 0.0
            )
            outcomes[bool(decisions)] += 1
        assert outcomes[True] > 0
        assert outcomes[False] > 0

    def test_digest_decisions_are_one_shot(self, world):
        model = self._model(world)
        entry = self._fresh_entry()
        total = 0
        for _ in range(200):
            total += len(model.digest_review(None, "u@c.com", [entry], 0.0))
        # Once decided (whitelist/delete/ignore), an entry is never
        # re-decided on later digests.
        assert total <= 1

    def test_digest_never_whitelists_spam(self, world):
        model = self._model(world)
        from repro.core.digest import DigestAction

        for _ in range(300):
            entries = [self._fresh_entry(kind=MessageKind.SPAM)]
            for decision in model.digest_review(None, "u@c.com", entries, 0.0):
                assert decision.action is DigestAction.DELETE
