"""Delivery conservation: no message is ever silently lost.

The invariant: every envelope handed to an :class:`OutboundMta` reaches
exactly one terminal status (DELIVERED, BOUNCED, or EXPIRED) — regardless
of the fault plan, the seed, or where the horizon falls. These tests run
full simulations under heavy weather and check the ledger, plus the
cache-composition property: a fully cached substrate must behave
identically to an uncached one even while faults are firing.
"""

from __future__ import annotations

import pytest

from repro.blacklistd.service import DnsblService
from repro.experiments import run_simulation
from repro.experiments.parallel import store_digest
from repro.experiments.runner import _unique_mtas
from repro.net.dns import Resolver
from repro.net.internet import Internet
from repro.net.smtp import FinalStatus


def _assert_conserved(result):
    stats = result.fault_stats
    assert stats.conserved, (
        f"{stats.messages_sent} sent != {stats.delivered} delivered "
        f"+ {stats.bounced} bounced + {stats.expired} expired"
    )
    for mta in _unique_mtas(result.installations):
        assert not mta.in_flight, f"{mta.name} still has in-flight messages"
        assert mta.sent_messages == mta.delivered + mta.bounced + mta.expired


class TestConservationUnderFaults:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_stormy_runs_conserve_every_message(self, seed):
        result = run_simulation("tiny", seed=seed, faults="stormy")
        _assert_conserved(result)
        stats = result.fault_stats
        assert stats.enabled
        # The weather really happened and the run still balanced.
        assert stats.greylist_deferrals > 0
        assert stats.retries_scheduled > 0

    def test_mild_run_conserves(self):
        result = run_simulation("tiny", seed=5, faults="mild")
        _assert_conserved(result)

    def test_fault_free_run_conserves_and_reports_disabled(self):
        result = run_simulation("tiny", seed=7)
        _assert_conserved(result)
        stats = result.fault_stats
        assert stats.enabled is False
        assert stats.greylist_deferrals == 0
        assert stats.storm_rejections == 0
        assert stats.dns_failures == 0

    def test_off_preset_equals_no_faults(self):
        # faults="off" must not even install a plan, so the run is
        # byte-identical to the default reliable substrate.
        baseline = run_simulation("tiny", seed=7)
        off = run_simulation("tiny", seed=7, faults="off")
        assert store_digest(off.store) == store_digest(baseline.store)

    def test_terminal_statuses_partition_challenge_outcomes(self):
        result = run_simulation("tiny", seed=3, faults="stormy")
        statuses = {o.status for o in result.store.challenge_outcomes}
        assert statuses <= {
            FinalStatus.DELIVERED,
            FinalStatus.BOUNCED,
            FinalStatus.EXPIRED,
        }
        # Every challenge sent got exactly one outcome record.
        sent = {
            (c.company_id, c.challenge_id) for c in result.store.challenges
        }
        resolved = {
            (o.company_id, o.challenge_id)
            for o in result.store.challenge_outcomes
        }
        assert resolved == sent


class TestCachedEqualsUncachedUnderFaults:
    def test_store_digests_identical(self, monkeypatch):
        cached = run_simulation("tiny", seed=3, faults="stormy")
        _assert_conserved(cached)

        monkeypatch.setattr(Resolver, "CACHE_ENABLED", False)
        monkeypatch.setattr(DnsblService, "CACHE_ENABLED", False)
        monkeypatch.setattr(Internet, "CACHE_ENABLED", False)
        uncached = run_simulation("tiny", seed=3, faults="stormy")
        _assert_conserved(uncached)

        assert store_digest(cached.store) == store_digest(uncached.store)
        # The fault counters agree too — the weather is a pure function of
        # (seed, settings), not of cache hit patterns.
        assert (
            cached.fault_stats.greylist_deferrals
            == uncached.fault_stats.greylist_deferrals
        )
        assert (
            cached.fault_stats.storm_rejections
            == uncached.fault_stats.storm_rejections
        )
