"""Unit tests for the fault-injection substrate (network weather).

Each fault class is exercised end to end through the outbound MTA so the
tests pin the *observable* SMTP behaviour — deferral codes, retry-then-
success, retry-until-expiry — not just the plan's internal window maths.
"""

from __future__ import annotations

import pytest

from repro.blacklistd.service import DnsblService, ListingPolicy
from repro.net.dns import DnsRegistry, DnsTemporaryFailure, Resolver
from repro.net.faults import (
    FAULT_PRESETS,
    FaultPlan,
    FaultSettings,
    fault_preset_names,
    get_fault_preset,
)
from repro.net.hosts import RemoteMailHost
from repro.net.internet import NO_ROUTE, Internet
from repro.net.mta_out import DEFAULT_RETRY_DELAYS, OutboundMta
from repro.net.smtp import Envelope, FinalStatus, Reply
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, HOUR

#: Weather disabled, greylisting everywhere — isolates the greylist path.
GREYLIST_ONLY = FaultSettings(
    greylist_host_frac=1.0,
    storms_per_host_month=0.0,
    outages_per_host_month=0.0,
    dns_episodes_per_month=0.0,
)

#: No randomly drawn faults at all; windows are pinned via force_* helpers.
QUIET = FaultSettings(
    greylist_host_frac=0.0,
    storms_per_host_month=0.0,
    outages_per_host_month=0.0,
    dns_episodes_per_month=0.0,
)

HORIZON = 30 * DAY


def _setup(settings):
    simulator = Simulator()
    registry = DnsRegistry()
    resolver = Resolver(registry)
    internet = Internet(resolver)
    registry.register_mail_domain("remote.example", "1.1.1.1")
    host = RemoteMailHost("remote.example", "1.1.1.1", mailboxes={"bob"})
    internet.register_host(host)
    plan = FaultPlan(settings, seed=7, horizon=HORIZON, clock=simulator)
    internet.install_fault_plan(plan)
    resolver.fault_plan = plan
    mta = OutboundMta("test-mta", "9.0.0.1", simulator, internet)
    return simulator, internet, mta, host, plan


def _send(mta, rcpt, results, mail_from="challenge@corp.example"):
    envelope = Envelope(
        mail_from=mail_from,
        rcpt_to=rcpt,
        size=1800,
        client_ip="ignored",
        payload_id=1,
    )
    mta.send(envelope, lambda env, result: results.append(result))


class TestPresets:
    def test_known_presets(self):
        assert set(fault_preset_names()) == {"off", "mild", "stormy"}
        assert get_fault_preset("off").enabled is False
        assert get_fault_preset("stormy").enabled is True

    def test_unknown_preset_raises_with_available_names(self):
        with pytest.raises(KeyError, match="mild"):
            get_fault_preset("hurricane")

    def test_off_preset_draws_nothing(self):
        plan = FaultPlan(
            FAULT_PRESETS["off"], seed=3, horizon=HORIZON, clock=Simulator()
        )
        assert plan._dns_episodes == []
        assert plan._windows_for("any.example") == ([], [])


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        settings = FAULT_PRESETS["stormy"]
        a = FaultPlan(settings, seed=11, horizon=HORIZON, clock=Simulator())
        b = FaultPlan(settings, seed=11, horizon=HORIZON, clock=Simulator())
        assert a._dns_episodes == b._dns_episodes
        assert a._windows_for("x.example") == b._windows_for("x.example")
        assert a.dnsbl_lag_for("spamcop-bl") == b.dnsbl_lag_for("spamcop-bl")

    def test_schedule_independent_of_query_order(self):
        settings = FAULT_PRESETS["stormy"]
        a = FaultPlan(settings, seed=11, horizon=HORIZON, clock=Simulator())
        b = FaultPlan(settings, seed=11, horizon=HORIZON, clock=Simulator())
        first_a = a._windows_for("first.example")
        b._windows_for("other.example")  # different materialisation order
        assert b._windows_for("first.example") == first_a

    def test_different_seeds_differ(self):
        settings = FAULT_PRESETS["stormy"]
        a = FaultPlan(settings, seed=1, horizon=HORIZON, clock=Simulator())
        b = FaultPlan(settings, seed=2, horizon=HORIZON, clock=Simulator())
        domains = [f"d{i}.example" for i in range(8)]
        assert any(
            a._windows_for(d) != b._windows_for(d) for d in domains
        ) or a._dns_episodes != b._dns_episodes


class TestGreylisting:
    def test_first_attempt_deferred_retry_delivered(self):
        simulator, _, mta, host, plan = _setup(GREYLIST_ONLY)
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        result = results[0]
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts == 2
        assert result.t_final == DEFAULT_RETRY_DELAYS[0]
        assert host.greylisted_count == 1
        assert host.accepted_count == 1
        assert plan.counters.greylist_deferrals == 1

    def test_known_triple_not_deferred_again(self):
        simulator, _, mta, host, plan = _setup(GREYLIST_ONLY)
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        # Same (client_ip, mail_from, rcpt_to) triple: sails through.
        _send(mta, "bob@remote.example", results)
        simulator.run()
        assert results[1].attempts == 1
        assert plan.counters.greylist_deferrals == 1

    def test_new_triple_deferred_independently(self):
        simulator, _, mta, _, plan = _setup(GREYLIST_ONLY)
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        _send(mta, "bob@remote.example", results, mail_from="other@corp.example")
        simulator.run()
        assert results[1].attempts == 2
        assert plan.counters.greylist_deferrals == 2

    def test_zero_host_frac_never_defers(self):
        simulator, _, mta, _, plan = _setup(QUIET)
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        assert results[0].attempts == 1
        assert plan.counters.greylist_deferrals == 0


class TestStormsAndOutages:
    def test_storm_covering_all_retries_expires(self):
        simulator, _, mta, host, plan = _setup(QUIET)
        plan.force_weather(
            "remote.example", storms=((0.0, sum(DEFAULT_RETRY_DELAYS) + DAY),)
        )
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        result = results[0]
        assert result.status is FinalStatus.EXPIRED
        assert result.attempts == len(DEFAULT_RETRY_DELAYS) + 1
        assert result.last_code is Reply.SERVICE_UNAVAILABLE
        assert plan.counters.storm_rejections == result.attempts
        assert host.accepted_count == 0

    def test_storm_ends_delivery_succeeds(self):
        simulator, _, mta, host, plan = _setup(QUIET)
        plan.force_weather("remote.example", storms=((0.0, 10 * 60.0),))
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        result = results[0]
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts == 2  # first retry lands after the storm
        assert host.accepted_count == 1

    def test_outage_fails_like_connect_timeout_then_recovers(self):
        simulator, _, mta, _, plan = _setup(QUIET)
        plan.force_weather("remote.example", outages=((0.0, 10 * 60.0),))
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        result = results[0]
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts == 2
        assert plan.counters.outage_failures == 1

    def test_weather_checked_before_host_policy(self):
        # Even a nonexistent mailbox gets the 4xx during a storm — the
        # server is not answering RCPT at all, so no 550 leaks out.
        simulator, internet, _, _, plan = _setup(QUIET)
        plan.force_weather("remote.example", storms=((0.0, HOUR),))
        response = internet.submit(
            Envelope(
                mail_from="x@a.example",
                rcpt_to="ghost@remote.example",
                size=1,
                client_ip="9.9.9.9",
                payload_id=2,
            ),
            now=0.0,
        )
        assert response.code is Reply.SERVICE_UNAVAILABLE
        assert response.transient


class TestDnsEpisodes:
    def test_servfail_is_transient_and_retried(self):
        simulator, _, mta, _, plan = _setup(QUIET)
        plan.force_dns_episode(0.0, 10 * 60.0, failure_frac=1.0)
        results = []
        _send(mta, "bob@remote.example", results)
        simulator.run()
        result = results[0]
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts == 2
        assert plan.counters.dns_failures >= 1

    def test_servfail_never_cached_as_no_route(self):
        simulator, internet, _, _, plan = _setup(QUIET)
        plan.force_dns_episode(0.0, 10 * 60.0, failure_frac=1.0)
        with pytest.raises(DnsTemporaryFailure):
            internet.route_for("remote.example")
        # After the episode the same domain routes normally — the failure
        # must not have been stored as NO_ROUTE or poisoned the cache.
        simulator.run(until=HOUR)
        route = internet.route_for("remote.example")
        assert route is not NO_ROUTE
        assert route is not None

    def test_warm_route_cache_does_not_mask_the_outage(self):
        simulator, internet, _, _, plan = _setup(QUIET)
        assert internet.route_for("remote.example") is not None  # cache warm
        plan.force_dns_episode(HOUR, 2 * HOUR, failure_frac=1.0)
        simulator.run(until=HOUR + 1)
        with pytest.raises(DnsTemporaryFailure):
            internet.route_for("remote.example")

    def test_failure_frac_partitions_namespace(self):
        simulator, internet, _, _, plan = _setup(QUIET)
        registry = internet.resolver.registry
        domains = []
        for i in range(40):
            domain = f"d{i}.example"
            registry.register_mail_domain(domain, f"10.0.0.{i}")
            domains.append(domain)
        plan.force_dns_episode(0.0, HOUR, failure_frac=0.5)
        failing = [d for d in domains if plan.dns_unavailable(d)]
        assert 0 < len(failing) < len(domains)
        # The failing subset is stable for the episode's whole duration.
        assert [d for d in domains if plan.dns_unavailable(d)] == failing


class TestDnsblLag:
    POLICY = ListingPolicy(threshold=1, window=DAY, base_duration=DAY)

    def test_listing_becomes_visible_after_lag(self):
        service = DnsblService("rbl", self.POLICY, listing_lag=HOUR)
        service.record_trap_hit("198.51.100.9", now=0.0)
        assert service.is_listed("198.51.100.9", now=10.0) is False
        assert service.is_listed("198.51.100.9", now=HOUR - 1) is False
        assert service.is_listed("198.51.100.9", now=HOUR + 1) is True

    def test_cached_not_listed_expires_when_listing_appears(self):
        service = DnsblService("rbl", self.POLICY, listing_lag=HOUR)
        service.record_trap_hit("198.51.100.9", now=0.0)
        assert service.is_listed("198.51.100.9", now=1.0) is False
        hits = service.cache_hits
        assert service.is_listed("198.51.100.9", now=2.0) is False
        assert service.cache_hits == hits + 1  # still a valid cached answer
        assert service.is_listed("198.51.100.9", now=HOUR + 1) is True

    def test_delisting_lag_keeps_ip_listed_past_expiry(self):
        service = DnsblService("rbl", self.POLICY, delisting_lag=DAY)
        service.record_trap_hit("198.51.100.9", now=0.0)
        assert service.is_listed("198.51.100.9", now=DAY + HOUR) is True
        assert service.is_listed("198.51.100.9", now=2 * DAY + 1) is False

    def test_zero_lag_is_the_instantaneous_behaviour(self):
        service = DnsblService("rbl", self.POLICY)
        service.record_trap_hit("198.51.100.9", now=0.0)
        assert service.is_listed("198.51.100.9", now=0.0) is True
        interval = service.listed_intervals("198.51.100.9")[0]
        assert interval.listed_at == 0.0
        assert interval.listed_until == DAY

    def test_plan_lags_fall_in_configured_ranges(self):
        plan = FaultPlan(
            FAULT_PRESETS["stormy"], seed=5, horizon=HORIZON, clock=Simulator()
        )
        settings = FAULT_PRESETS["stormy"]
        for name in ("a-rbl", "b-rbl", "c-rbl"):
            listing, delisting = plan.dnsbl_lag_for(name)
            low, high = settings.dnsbl_listing_lag_range
            assert low <= listing <= high
            low, high = settings.dnsbl_delisting_lag_range
            assert low <= delisting <= high
