"""Unit tests for the outbound MTA (retry schedule, expiry, stamping)."""

from repro.blacklistd.service import DnsblService, ListingPolicy
from repro.net.dns import DnsRegistry, Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.internet import Internet
from repro.net.mta_out import DEFAULT_RETRY_DELAYS, OutboundMta
from repro.net.smtp import BounceReason, Envelope, FinalStatus
from repro.sim.engine import Simulator
from repro.util.simtime import DAY


def _setup():
    simulator = Simulator()
    registry = DnsRegistry()
    resolver = Resolver(registry)
    internet = Internet(resolver)
    registry.register_mail_domain("alive.example", "1.1.1.1")
    registry.register_mail_domain("dead.example", "2.2.2.2")
    host = RemoteMailHost("alive.example", "1.1.1.1", mailboxes={"bob"})
    internet.register_host(host)
    mta = OutboundMta("test-mta", "9.0.0.1", simulator, internet)
    return simulator, internet, mta, host, registry


def _send(mta, rcpt, results):
    envelope = Envelope(
        mail_from="challenge@corp.example",
        rcpt_to=rcpt,
        size=1800,
        client_ip="ignored",
        payload_id=42,
    )
    mta.send(envelope, lambda env, result: results.append((env, result)))


class TestDelivery:
    def test_immediate_delivery(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "bob@alive.example", results)
        simulator.run()
        assert len(results) == 1
        _, result = results[0]
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts == 1
        assert result.t_final == 0.0

    def test_mta_stamps_its_own_ip(self):
        simulator, _, mta, host, _ = _setup()
        seen_ips = []
        host.on_delivered = lambda env, now: seen_ips.append(env.client_ip)
        results = []
        _send(mta, "bob@alive.example", results)
        simulator.run()
        assert seen_ips == ["9.0.0.1"]

    def test_payload_id_preserved(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "bob@alive.example", results)
        simulator.run()
        assert results[0][0].payload_id == 42

    def test_counters(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "bob@alive.example", results)
        simulator.run()
        assert mta.sent_messages == 1
        assert mta.sent_bytes == 1800


class TestBounces:
    def test_nonexistent_recipient_bounces_without_retry(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "ghost@alive.example", results)
        simulator.run()
        _, result = results[0]
        assert result.status is FinalStatus.BOUNCED
        assert result.bounce_reason is BounceReason.NONEXISTENT_RECIPIENT
        assert result.attempts == 1

    def test_blacklist_bounce_counted(self):
        simulator, internet, mta, host, _ = _setup()
        service = DnsblService(
            "rbl", ListingPolicy(threshold=1, window=DAY, base_duration=DAY)
        )
        service.force_list("9.0.0.1", now=0.0, duration=DAY)
        host.dnsbl_services.append(service)
        results = []
        _send(mta, "bob@alive.example", results)
        simulator.run()
        assert results[0][1].bounce_reason is BounceReason.BLACKLISTED
        assert mta.blacklist_bounces == 1


class TestRetriesAndExpiry:
    def test_dead_domain_retries_then_expires(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "x@dead.example", results)
        simulator.run()
        _, result = results[0]
        assert result.status is FinalStatus.EXPIRED
        assert result.attempts == len(DEFAULT_RETRY_DELAYS) + 1
        assert result.t_final == sum(DEFAULT_RETRY_DELAYS)

    def test_recovery_during_retries_delivers(self):
        simulator, internet, mta, _, registry = _setup()
        registry.register_mail_domain("flaky.example", "3.3.3.3")
        results = []
        # Domain resolves but no host yet: first attempts fail transiently.
        _send(mta, "carol@flaky.example", results)
        simulator.run(until=DEFAULT_RETRY_DELAYS[0] + 1)
        assert results == []
        internet.register_host(
            RemoteMailHost("flaky.example", "3.3.3.3", mailboxes={"carol"})
        )
        simulator.run()
        _, result = results[0]
        assert result.status is FinalStatus.DELIVERED
        assert result.attempts >= 2

    def test_blacklisting_between_retries_bounces(self):
        # The server gets listed while a transient failure is retrying:
        # the retry then hits a 554 and the message bounces as blacklisted.
        simulator, internet, mta, _, registry = _setup()
        service = DnsblService(
            "rbl", ListingPolicy(threshold=1, window=DAY, base_duration=5 * DAY)
        )
        registry.register_mail_domain("late.example", "4.4.4.4")
        results = []
        _send(mta, "dave@late.example", results)
        simulator.run(until=1.0)
        service.force_list("9.0.0.1", now=1.0, duration=5 * DAY)
        internet.register_host(
            RemoteMailHost(
                "late.example",
                "4.4.4.4",
                mailboxes={"dave"},
                dnsbl_services=[service],
            )
        )
        simulator.run()
        assert results[0][1].bounce_reason is BounceReason.BLACKLISTED

    def test_custom_retry_schedule(self):
        simulator, internet, _, _, registry = _setup()
        mta = OutboundMta(
            "short", "9.0.0.2", simulator, internet, retry_delays=(10.0,)
        )
        results = []
        _send(mta, "x@dead.example", results)
        simulator.run()
        result = results[0][1]
        assert result.status is FinalStatus.EXPIRED
        assert result.attempts == 2
        assert result.t_final == 10.0


class TestDrain:
    def test_drain_finalizes_in_flight_messages(self):
        # Regression: a run truncated mid-retry used to strand the message
        # with no terminal status — the end-of-horizon leak.
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "x@dead.example", results)
        simulator.run(until=100.0)  # before the first retry (15 min)
        assert results == []
        assert mta.in_flight == 1

        assert mta.drain() == 1

        assert mta.in_flight == 0
        assert mta.drained == 1
        _, result = results[0]
        assert result.status is FinalStatus.EXPIRED
        assert result.attempts == 1
        assert result.t_final == 100.0
        assert mta.sent_messages == mta.delivered + mta.bounced + mta.expired

    def test_drain_cancels_pending_retries(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "x@dead.example", results)
        simulator.run(until=100.0)
        mta.drain()
        # The cancelled retry must never fire: no double finalization.
        simulator.run()
        assert len(results) == 1
        assert mta.expired == 1

    def test_drain_after_complete_run_is_noop(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "bob@alive.example", results)
        _send(mta, "x@dead.example", results)
        simulator.run()
        assert mta.drain() == 0
        assert mta.drained == 0
        assert len(results) == 2

    def test_ledger_balances_at_every_instant(self):
        simulator, _, mta, _, _ = _setup()
        results = []
        _send(mta, "bob@alive.example", results)
        _send(mta, "ghost@alive.example", results)
        _send(mta, "x@dead.example", results)
        for until in (1.0, 1000.0, 10000.0, None):
            simulator.run(until=until)
            assert mta.sent_messages == (
                mta.delivered + mta.bounced + mta.expired + mta.in_flight
            )
