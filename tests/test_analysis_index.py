"""Regression tests for the shared AnalysisIndex and its invalidation.

Satellite guarantee: appending to ANY table after an aggregate was built
over it must invalidate that aggregate — a reader never sees stale data —
while aggregates over *other* tables stay cached (precise invalidation).
"""

import pytest

from repro.analysis.records import CrashRecord
from repro.analysis.store import TABLES, LogStore
from repro.blacklistd.monitor import ProbeObservation
from repro.core.challenge import WebAction
from repro.core.spools import ReleaseMechanism

from tests import recordfactory as rf


def _probe(store, ip="198.51.100.9", t=0.0):
    store.add_probe(ProbeObservation(t=t, ip=ip, service="rbl0", listed=False))


def _outbound(store):
    rf.outbound(store)


def _crash(store):
    store.add_crash(
        CrashRecord("c00", 0.0, "dispatcher", 60.0, 0, 0, True)
    )


#: Tables without an aggregate: appended directly, version must still move.
_NO_AGGREGATE_PROBES = {"outbound": _outbound, "crashes": _crash}


#: table -> (append one record, read an integer that must count appends).
TABLE_PROBES = {
    "mta": (lambda s: rf.mta(s), lambda i: i.mta.total),
    "dispatch": (lambda s: rf.dispatch(s), lambda i: i.dispatch.total),
    "challenges": (
        lambda s: rf.challenge(s, next(rf._msg_ids)),
        lambda i: sum(i.challenges.per_company.values()),
    ),
    "challenge_outcomes": (
        lambda s: rf.outcome(s, next(rf._msg_ids)),
        lambda i: len(i.outcomes.by_challenge),
    ),
    "web_access": (
        lambda s: rf.web(s, 1, WebAction.OPEN),
        lambda i: sum(len(v) for v in i.web.by_challenge.values()),
    ),
    "releases": (
        lambda s: rf.release(s, mechanism=ReleaseMechanism.CAPTCHA),
        lambda i: sum(i.releases.mechanism_counts.values()),
    ),
    "whitelist_changes": (
        lambda s: rf.whitelist_change(s),
        lambda i: sum(i.whitelist.per_user_counts.values()),
    ),
    "digests": (
        lambda s: rf.digest(s),
        lambda i: sum(c for _, c in i.digests.per_company.values()),
    ),
    "expiries": (lambda s: rf.expiry(s), lambda i: i.expiries.total),
    "probes": (
        lambda s: _probe(s, ip=f"198.51.100.{len(s.probes)}"),
        lambda i: len(i.probes.probed_ips),
    ),
}

#: outbound and crashes have no aggregate yet; their versions must still
#: advance so any future aggregate over them inherits the invalidation
#: guarantee for free.
assert set(TABLE_PROBES) | {"outbound", "crashes"} == set(TABLES)


@pytest.mark.parametrize("table", sorted(TABLE_PROBES))
def test_append_after_read_invalidates(table):
    append, measure = TABLE_PROBES[table]
    store = LogStore()
    append(store)
    index = store.index()
    before = measure(index)
    assert before >= 1
    builds_before = index.builds

    append(store)  # append AFTER the aggregate was materialised

    assert measure(store.index()) > before
    assert store.index().builds == builds_before + 1  # rebuilt, not stale


@pytest.mark.parametrize("table", sorted(TABLES))
def test_every_append_helper_bumps_version(table):
    store = LogStore()
    appender = (
        TABLE_PROBES[table][0]
        if table in TABLE_PROBES
        else _NO_AGGREGATE_PROBES[table]
    )
    v0 = store.table_version(table)
    appender(store)
    assert store.table_version(table) == v0 + 1
    assert len(getattr(store, table)) == 1


def test_direct_list_append_is_detected_by_length():
    """persistence.load_run fills record lists without the add_* helpers;
    the index must notice via the length check even at equal version."""
    store = LogStore()
    rf.mta(store)
    assert store.index().mta.total == 1
    store.mta.append(store.mta[0])  # bypass add_mta on purpose
    assert store.index().mta.total == 2


def test_invalidation_is_per_table():
    store = LogStore()
    rf.mta(store)
    rf.release(store)
    index = store.index()
    mta_aggregate = index.mta
    assert sum(index.releases.mechanism_counts.values()) == 1

    rf.release(store)  # must not throw away the MTA pass

    index = store.index()
    assert index.mta is mta_aggregate
    assert sum(index.releases.mechanism_counts.values()) == 2


def test_repeated_reads_hit_the_cache():
    store = LogStore()
    rf.mta(store)
    index = store.index()
    assert index.mta.total == 1
    builds = index.builds
    for _ in range(3):
        assert index.mta.total == 1
    assert index.builds == builds
    assert index.hits >= 3


def test_drop_indices_then_requery_rebuilds():
    store = LogStore()
    rf.outcome(store, 1)
    assert store.outcome_of("c0", 1) is not None
    store.drop_indices()
    assert store._index is None
    assert store.outcome_of("c0", 1) is not None
