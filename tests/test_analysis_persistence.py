"""Tests for saving/loading the measurement database (JSONL)."""

import json

import hypothesis as _hyp
import pytest
from hypothesis import strategies as _st

from repro.analysis.persistence import (
    LoadedRun,
    PersistenceError,
    load_run,
    save_run,
)


class TestRoundTrip:
    def test_full_round_trip_preserves_every_record(self, tiny_result, tmp_path):
        path = tmp_path / "run.jsonl"
        written = save_run(tiny_result.store, tiny_result.info, path)
        loaded = load_run(path)
        assert isinstance(loaded, LoadedRun)
        assert written == sum(tiny_result.store.summary_counts().values())
        assert loaded.store.summary_counts() == (
            tiny_result.store.summary_counts()
        )

    def test_record_contents_preserved(self, tiny_result, tmp_path):
        path = tmp_path / "run.jsonl"
        save_run(tiny_result.store, tiny_result.info, path)
        loaded = load_run(path)
        for original, restored in zip(
            tiny_result.store.dispatch[:50], loaded.store.dispatch[:50]
        ):
            assert original == restored
        for original, restored in zip(
            tiny_result.store.challenge_outcomes[:50],
            loaded.store.challenge_outcomes[:50],
        ):
            assert original == restored

    def test_info_preserved(self, tiny_result, tmp_path):
        path = tmp_path / "run.jsonl"
        save_run(tiny_result.store, tiny_result.info, path)
        loaded = load_run(path)
        assert loaded.info.n_companies == tiny_result.info.n_companies
        assert loaded.info.horizon_days == tiny_result.info.horizon_days
        assert dict(loaded.info.users_per_company) == dict(
            tiny_result.info.users_per_company
        )

    def test_analyses_identical_on_loaded_store(self, tiny_result, tmp_path):
        from repro.analysis import flow, reflection

        path = tmp_path / "run.jsonl"
        save_run(tiny_result.store, tiny_result.info, path)
        loaded = load_run(path)
        assert flow.render(loaded.store) == flow.render(tiny_result.store)
        assert reflection.render(loaded.store) == reflection.render(
            tiny_result.store
        )

    def test_registry_runs_on_loaded_run(self, tiny_result, tmp_path):
        from repro.experiments.registry import run_experiment

        path = tmp_path / "run.jsonl"
        save_run(tiny_result.store, tiny_result.info, path)
        loaded = load_run(path)
        assert run_experiment("fig4a", loaded) == run_experiment(
            "fig4a", tiny_result
        )


class TestErrorHandling:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mta", "c": "c0"}\n')
        with pytest.raises(PersistenceError, match="bad mta record|missing header"):
            load_run(path)

    def test_header_only_is_valid_empty_run(self, tmp_path, tiny_result):
        path = tmp_path / "empty.jsonl"
        from repro.analysis.store import LogStore

        save_run(LogStore(), tiny_result.info, path)
        loaded = load_run(path)
        assert sum(loaded.store.summary_counts().values()) == 0

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(PersistenceError, match="invalid JSON"):
            load_run(path)

    def test_unknown_record_type(self, tmp_path, tiny_result):
        path = tmp_path / "bad.jsonl"
        from repro.analysis.store import LogStore

        save_run(LogStore(), tiny_result.info, path)
        with open(path, "a") as handle:
            handle.write(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(PersistenceError, match="unknown record type"):
            load_run(path)

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"type": "header", "schema": 99}) + "\n")
        with pytest.raises(PersistenceError, match="unsupported schema"):
            load_run(path)

    def test_bad_enum_value(self, tmp_path, tiny_result):
        path = tmp_path / "bad.jsonl"
        from repro.analysis.store import LogStore

        save_run(LogStore(), tiny_result.info, path)
        with open(path, "a") as handle:
            handle.write(
                json.dumps(
                    {
                        "type": "mta",
                        "c": "c0",
                        "t": 0.0,
                        "m": 1,
                        "d": "not-a-reason",
                        "o": False,
                        "s": 100,
                    }
                )
                + "\n"
            )
        with pytest.raises(PersistenceError, match="bad mta record"):
            load_run(path)

    def test_blank_lines_skipped(self, tmp_path, tiny_result):
        path = tmp_path / "gaps.jsonl"
        from repro.analysis.store import LogStore

        save_run(LogStore(), tiny_result.info, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        load_run(path)  # must not raise


class TestCliIntegration:
    def test_save_then_load_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.jsonl"
        assert main(
            ["run", "--preset", "tiny", "--seed", "3", "--save", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        assert path.exists()

        assert main(["experiment", "sec31", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "reflection ratio R" in out


class TestRoundTripProperties:
    """Hypothesis: arbitrary record mixes survive save/load unchanged."""

    @staticmethod
    def _random_store(plan):
        from repro.analysis.store import LogStore
        from repro.core.challenge import WebAction
        from repro.core.message import MessageKind
        from repro.core.mta_in import DropReason
        from repro.core.spools import Category
        from repro.net.smtp import BounceReason, FinalStatus

        from tests import recordfactory as rf

        store = LogStore()
        for kind, variant in plan:
            if kind == "mta":
                rf.mta(
                    store,
                    drop=(
                        list(DropReason)[variant % len(DropReason)]
                        if variant % 3 == 0
                        else None
                    ),
                    open_relay=bool(variant % 2),
                    t=float(variant),
                )
            elif kind == "dispatch":
                rf.dispatch(
                    store,
                    category=list(Category)[variant % 3],
                    kind=list(MessageKind)[variant % 3],
                    challenge_id=variant if variant % 2 else None,
                    subject=f"subject {variant} with words",
                )
            elif kind == "outcome":
                rf.challenge(store, variant)
                rf.outcome(
                    store,
                    variant,
                    status=list(FinalStatus)[variant % 3],
                    bounce_reason=(
                        list(BounceReason)[variant % 3]
                        if variant % 3 == 1
                        else None
                    ),
                )
            elif kind == "web":
                rf.web(store, variant, list(WebAction)[variant % 3])
            elif kind == "release":
                rf.release(store, msg_id=variant, t_release=float(variant))
        return store

    @_hyp.settings(max_examples=40, deadline=None)
    @_hyp.given(
        plan=_st.lists(
            _st.tuples(
                _st.sampled_from(
                    ["mta", "dispatch", "outcome", "web", "release"]
                ),
                _st.integers(0, 1000),
            ),
            max_size=50,
        )
    )
    def test_random_records_round_trip(self, tmp_path_factory, plan):
        from repro.analysis.context import DeploymentInfo

        info = DeploymentInfo(
            n_companies=1,
            n_open_relays=0,
            users_per_company={"c0": 5},
            horizon_days=3.0,
            min_cluster_size=2,
            volume_scale=1.0,
        )
        store = self._random_store(plan)
        path = tmp_path_factory.mktemp("prop") / "run.jsonl"
        save_run(store, info, path)
        loaded = load_run(path)
        assert loaded.store.summary_counts() == store.summary_counts()
        assert loaded.store.mta == store.mta
        assert loaded.store.dispatch == store.dispatch
        assert loaded.store.challenge_outcomes == store.challenge_outcomes
        assert loaded.store.web_access == store.web_access
        assert loaded.store.releases == store.releases
