"""Unit tests for the Fig. 4 and §3.1–3.3 analyses."""

import pytest

from repro.analysis import challenges, reflection
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.spools import Category
from repro.core.whitelist import WhitelistSource
from repro.net.smtp import BounceReason, FinalStatus

from tests import recordfactory as rf


def _challenge_store():
    """10 challenges: 5 delivered (2 solved, 1 visited), 3 bounced
    (2 nonexistent, 1 blacklisted), 2 expired."""
    store = LogStore()
    for cid in range(1, 11):
        rf.challenge(store, cid)
    for cid in (1, 2, 3, 4, 5):
        rf.outcome(store, cid, status=FinalStatus.DELIVERED)
    for cid in (6, 7):
        rf.outcome(
            store,
            cid,
            status=FinalStatus.BOUNCED,
            bounce_reason=BounceReason.NONEXISTENT_RECIPIENT,
        )
    rf.outcome(
        store,
        8,
        status=FinalStatus.BOUNCED,
        bounce_reason=BounceReason.BLACKLISTED,
    )
    for cid in (9, 10):
        rf.outcome(store, cid, status=FinalStatus.EXPIRED, attempts=7)
    # Challenge 1: opened, 2 failed attempts, solved (3 tries total).
    rf.web(store, 1, WebAction.OPEN, t=100.0)
    rf.web(store, 1, WebAction.ATTEMPT, t=130.0, success=False)
    rf.web(store, 1, WebAction.ATTEMPT, t=160.0, success=False)
    rf.web(store, 1, WebAction.SOLVE, t=190.0)
    # Challenge 2: solved on first try.
    rf.web(store, 2, WebAction.OPEN, t=200.0)
    rf.web(store, 2, WebAction.SOLVE, t=230.0)
    # Challenge 3: visited but never solved.
    rf.web(store, 3, WebAction.OPEN, t=300.0)
    return store


class TestChallengeStats:
    def test_delivery_breakdown(self):
        stats = challenges.compute(_challenge_store())
        assert stats.sent == 10
        assert stats.delivered == 5
        assert stats.bounced_nonexistent == 2
        assert stats.bounced_blacklisted == 1
        assert stats.expired == 2
        assert stats.delivered_share == 0.5
        assert stats.nonexistent_share_of_undelivered == pytest.approx(0.4)

    def test_web_shares(self):
        stats = challenges.compute(_challenge_store())
        assert stats.solved == 2
        assert stats.visited_not_solved == 1
        assert stats.never_opened_share == pytest.approx(1 - 3 / 5)
        assert stats.solved_share_of_delivered == pytest.approx(0.4)
        assert stats.solved_share_of_sent == pytest.approx(0.2)

    def test_attempts_histogram(self):
        stats = challenges.compute(_challenge_store())
        assert stats.attempts_histogram == {3: 1, 1: 1}
        assert stats.max_attempts == 3

    def test_render_smoke(self):
        out = challenges.render(_challenge_store())
        assert "Fig. 4(a)" in out
        assert "CAPTCHA" in out

    def test_empty_store(self):
        stats = challenges.compute(LogStore())
        assert stats.delivered_share == 0.0
        assert stats.max_attempts == 0


class TestReflection:
    def _store(self):
        store = LogStore()
        # 20 MTA messages of 10 KB each; 10 reach the dispatcher.
        for _ in range(20):
            rf.mta(store, size=10_000)
        for i in range(10):
            quarantined = i < 2
            rf.dispatch(
                store,
                category=Category.GRAY,
                size=10_000,
                filter_drop=None if quarantined else "rbl",
                challenge_id=i + 1 if quarantined else None,
                challenge_created=quarantined,
                env_from=f"s{i}@x.example",
            )
        # 2 challenges of 1 KB; one delivered and solved, one delivered.
        rf.challenge(store, 1, size=1_000)
        rf.challenge(store, 2, size=1_000)
        rf.outcome(store, 1)
        rf.outcome(store, 2)
        rf.web(store, 1, WebAction.SOLVE)
        return store

    def test_reflection_ratios(self):
        stats = reflection.compute(self._store())
        assert stats.reflection_cr == pytest.approx(0.2)
        assert stats.reflection_mta == pytest.approx(0.1)
        assert stats.emails_per_challenge == pytest.approx(10.0)

    def test_backscatter(self):
        stats = reflection.compute(self._store())
        # 1 of 2 challenges delivered-but-never-solved.
        assert stats.backscatter_share == pytest.approx(0.5)
        assert stats.beta_cr == pytest.approx(0.1)
        assert stats.beta_mta == pytest.approx(0.05)

    def test_traffic_ratios(self):
        stats = reflection.compute(self._store())
        assert stats.rt_cr == pytest.approx(2_000 / 100_000)
        assert stats.rt_mta == pytest.approx(2_000 / 200_000)

    def test_digest_whitelist_share_counts_gray_senders(self):
        store = self._store()
        # s0 was quarantined; user whitelists them from the digest.
        rf.whitelist_change(
            store, address="s0@x.example", source=WhitelistSource.DIGEST
        )
        # An address never seen in the gray spool must not count.
        rf.whitelist_change(
            store, address="unrelated@y.example", source=WhitelistSource.DIGEST
        )
        stats = reflection.compute(store)
        assert stats.digest_whitelisted_senders == 1
        # 2 quarantined senders (s0, s1).
        assert stats.gray_spool_senders == 2
        assert stats.digest_whitelist_share == pytest.approx(0.5)

    def test_render_smoke(self, tiny_store):
        out = reflection.render(tiny_store)
        assert "reflection ratio R" in out
