"""Checkpoint/restore contract: resume ≡ uninterrupted, byte for byte.

The pinned property (ISSUE 5's tentpole): a run checkpointed at time *T*
and resumed from that snapshot produces a byte-identical measurement
store — same :func:`store_digest` — as the same run left alone, across
seeds and checkpoint times, and enabling checkpointing changes nothing
about an uninterrupted run either.
"""

import pickle

import pytest

from repro.core.recovery import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    checkpoint_paths,
    latest_checkpoint,
    load_checkpoint,
)
from repro.experiments.parallel import store_digest
from repro.experiments.runner import run_simulation
from repro.util.simtime import DAY

#: Two seeds x (first, last) checkpoint times = the >=2x>=2 resume grid.
SEEDS = (3, 7)


@pytest.fixture(scope="module")
def baseline_digests():
    """Uninterrupted flaky+audit runs, one per seed."""
    return {
        seed: store_digest(
            run_simulation("tiny", seed=seed, crashes="flaky", audit=True).store
        )
        for seed in SEEDS
    }


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory, baseline_digests):
    """Same runs with snapshots every 3 sim-days; returns seed -> paths."""
    snapshots = {}
    for seed in SEEDS:
        directory = str(tmp_path_factory.mktemp(f"ckpt-seed{seed}"))
        result = run_simulation(
            "tiny",
            seed=seed,
            crashes="flaky",
            audit=True,
            checkpoint_every=3 * DAY,
            checkpoint_dir=directory,
        )
        # Checkpointing is observation-free: the checkpointed run itself
        # is byte-identical to the run without snapshots.
        assert store_digest(result.store) == baseline_digests[seed]
        snapshots[seed] = checkpoint_paths(directory)
        assert len(snapshots[seed]) >= 2
    return snapshots


class TestResumeDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("which", [0, -1])
    def test_resume_equals_uninterrupted(
        self, seed, which, checkpointed, baseline_digests
    ):
        snapshot = checkpointed[seed][which]
        resumed = run_simulation(resume_from=snapshot)
        assert store_digest(resumed.store) == baseline_digests[seed]
        assert resumed.checkpoint_stats.restored_from == snapshot
        assert resumed.checkpoint_stats.restore_seconds > 0

    def test_resumed_run_reports_crashes(self, checkpointed):
        resumed = run_simulation(resume_from=checkpointed[SEEDS[0]][0])
        assert resumed.crash_stats.crashes > 0
        assert resumed.crash_stats.lost == 0

    def test_latest_checkpoint_is_the_newest(self, checkpointed):
        paths = checkpointed[SEEDS[0]]
        directory = paths[0].rsplit("/", 1)[0]
        assert latest_checkpoint(directory) == paths[-1]


class TestCheckpointValidation:
    def test_checkpoint_every_requires_a_directory(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_simulation("tiny", seed=3, checkpoint_every=3 * DAY)

    def test_missing_snapshot_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "checkpoint-000000000000.pkl"))

    @pytest.mark.parametrize(
        "junk", [b"", b"garbage", pickle.dumps(["not", "a", "snapshot"])]
    )
    def test_garbage_snapshot_refused(self, tmp_path, junk):
        path = tmp_path / "checkpoint-000000000000.pkl"
        path.write_bytes(junk)
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(str(path))

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "checkpoint-000000000000.pkl"
        path.write_bytes(
            pickle.dumps(
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": "0.0.0-other",
                    "sim_time": 0.0,
                    "state": None,
                }
            )
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_format_mismatch_refused(self, tmp_path):
        path = tmp_path / "checkpoint-000000000000.pkl"
        path.write_bytes(
            pickle.dumps(
                {
                    "format": CHECKPOINT_FORMAT + 1,
                    "version": "whatever",
                    "sim_time": 0.0,
                    "state": None,
                }
            )
        )
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(str(path))

    def test_resume_from_missing_snapshot_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            run_simulation(resume_from=str(tmp_path / "nope.pkl"))


# -- the batched data plane through the pickle boundary (PR 6) ---------------


class _Recorder:
    """Picklable callback target: travels inside the snapshot graph."""

    def __init__(self):
        self.fired = []

    def __call__(self, tag):
        self.fired.append(tag)


class TestBatchedRepresentationPickles:
    """ISSUE 6: slotted/columnar structures must checkpoint and resume
    byte-identically — covered end-to-end by TestResumeDeterminism (whole
    runs), pinned here at the structure level."""

    def test_slotted_message_round_trip(self):
        from repro.core.message import EmailMessage, MessageKind, SenderClass

        message = EmailMessage(
            7, 1.5, "a@b.example", "c@d.example", "subj", 1200, "1.2.3.4",
            MessageKind.SPAM, SenderClass.SPAM_TRAP, "sc-1", True,
            mta_hint=(None, "b.example", None),
        )
        clone = pickle.loads(pickle.dumps(message))
        assert clone == message
        assert clone.mta_hint == (None, "b.example", None)

    def test_message_batch_round_trip_finalizes_identically(self):
        from repro.core.message import (
            MessageBatch,
            MessageKind,
            SenderClass,
            restore_msg_ids,
            snapshot_msg_ids,
        )

        recorder = _Recorder()
        batch = MessageBatch()
        for i, t in enumerate([5.0, 1.0, 5.0, 3.0]):
            batch.rows.append((
                t, f"s{i}@x.example", f"r{i}@y.example", "s", 100 + i,
                "9.9.9.9", MessageKind.SPAM, SenderClass.REAL, None, False,
            ))
            batch.handlers.append(recorder)
        clone = pickle.loads(pickle.dumps(batch))

        mark = snapshot_msg_ids()
        times_a, handlers_a, messages_a = batch.finalize()
        restore_msg_ids(mark)
        times_b, handlers_b, messages_b = clone.finalize()
        assert times_a == times_b == [1.0, 3.0, 5.0, 5.0]
        assert messages_a == messages_b  # same ids, same stable tie order
        assert len(handlers_b) == 4

    def test_simulator_resumes_mid_batch_after_pickle(self):
        """A snapshot taken with a batch partially consumed must resume
        exactly where it stopped: remaining items fire once, in order."""
        from repro.sim.engine import Simulator

        recorder = _Recorder()
        sim = Simulator()
        times = [float(t) for t in range(10)]
        sim.schedule_batch(times, [recorder] * 10, list(range(10)))
        sim.run(until=4.5)
        assert recorder.fired == [0, 1, 2, 3, 4]
        assert sim.pending == 5

        blob = pickle.dumps((sim, recorder))
        sim.run()
        assert recorder.fired == list(range(10))

        restored_sim, restored_recorder = pickle.loads(blob)
        assert restored_recorder.fired == [0, 1, 2, 3, 4]
        assert restored_sim.pending == 5
        restored_sim.run()
        assert restored_recorder.fired == list(range(10))
        assert restored_sim.pending == 0
