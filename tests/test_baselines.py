"""Tests for the naive-Bayes baseline and the CR-vs-content comparison."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.comparison import build_table, compare_defences
from repro.baselines.naive_bayes import (
    ClassifierScore,
    NaiveBayesFilter,
    score_classifier,
)
from repro.core.message import MessageKind
from repro.core.spools import Category

from tests import recordfactory as rf
from repro.analysis.store import LogStore


class TestNaiveBayes:
    def _trained(self):
        nb = NaiveBayesFilter()
        nb.train(
            [
                ("cheap meds online pharmacy", True),
                ("exclusive offer limited time", True),
                ("replica watches discount", True),
                ("meeting notes tomorrow agenda", False),
                ("project status report attached", False),
                ("lunch plans this weekend", False),
            ]
        )
        return nb

    def test_classifies_obvious_spam(self):
        assert self._trained().classify("cheap pharmacy meds")

    def test_classifies_obvious_ham(self):
        assert not self._trained().classify("meeting agenda attached")

    def test_log_odds_sign_matches_classification(self):
        nb = self._trained()
        for subject in ("cheap meds", "status report"):
            assert nb.classify(subject) == (nb.spam_log_odds(subject) > 0)

    def test_unknown_tokens_fall_back_to_prior(self):
        nb = NaiveBayesFilter()
        # Balanced token totals so unknown tokens are class-neutral and
        # the document prior (2 ham docs vs 1 spam doc) decides.
        nb.train(
            [
                ("spam spam spam spam", True),
                ("ham ham", False),
                ("ham two", False),
            ]
        )
        assert not nb.classify("completely novel words")

    def test_untrained_raises(self):
        nb = NaiveBayesFilter()
        with pytest.raises(RuntimeError):
            nb.classify("anything")
        nb.train([("only spam", True)])
        with pytest.raises(RuntimeError):
            nb.classify("still missing ham examples")

    def test_incremental_training(self):
        nb = NaiveBayesFilter()
        first = nb.train([("cheap meds", True)])
        second = nb.train([("meeting notes", False)])
        assert first.spam_messages == 1
        assert second.ham_messages == 1
        assert nb.trained

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            NaiveBayesFilter(smoothing=0.0)

    def test_threshold_shifts_decisions(self):
        strict = self._trained()
        lenient = self._trained()
        lenient.threshold = 50.0
        assert strict.classify("cheap meds")
        assert not lenient.classify("cheap meds")

    def test_train_from_records(self):
        store = LogStore()
        rf.dispatch(store, subject="cheap meds pharmacy", kind=MessageKind.SPAM)
        rf.dispatch(store, subject="meeting notes agenda", kind=MessageKind.LEGIT)
        nb = NaiveBayesFilter()
        summary = nb.train_from_records(store.dispatch)
        assert summary.spam_messages == 1
        assert summary.ham_messages == 1

    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet="abcdefg ", min_size=1, max_size=30
                ).filter(str.strip),
                st.booleans(),
            ),
            min_size=2,
            max_size=40,
        ).filter(
            lambda pairs: any(s for _, s in pairs)
            and any(not s for _, s in pairs)
        )
    )
    def test_never_crashes_and_returns_bool(self, pairs):
        nb = NaiveBayesFilter()
        nb.train(pairs)
        for subject, _ in pairs:
            assert isinstance(nb.classify(subject), bool)


class TestScoring:
    def test_confusion_counts(self):
        store = LogStore()
        rf.dispatch(store, kind=MessageKind.SPAM, subject="s1")  # TP
        rf.dispatch(store, kind=MessageKind.SPAM, subject="s2")  # FN
        rf.dispatch(store, kind=MessageKind.LEGIT, subject="h1")  # FP
        rf.dispatch(store, kind=MessageKind.LEGIT, subject="h2")  # TN
        verdicts = {"s1": True, "s2": False, "h1": True, "h2": False}
        score = score_classifier(
            store.dispatch, lambda r: verdicts[r.subject]
        )
        assert score == ClassifierScore(1, 1, 1, 1)
        assert score.false_positive_rate == 0.5
        assert score.false_negative_rate == 0.5
        assert score.accuracy == 0.5

    def test_empty_score(self):
        score = score_classifier([], lambda r: True)
        assert score.accuracy == 0.0
        assert score.false_positive_rate == 0.0


class TestComparison:
    def test_cr_accounting_on_synthetic_store(self):
        store = LogStore()
        # Train slice (first 30%): ensure both classes present.
        for _ in range(2):
            rf.dispatch(
                store, kind=MessageKind.SPAM, subject="cheap meds now buy"
            )
            rf.dispatch(
                store,
                kind=MessageKind.LEGIT,
                category=Category.WHITE,
                subject="meeting notes agenda today",
            )
        # Test slice: one whitelisted spam (CR FN), one quarantined legit
        # that is released (not an FP), one quarantined legit lost (FP).
        rf.dispatch(
            store,
            kind=MessageKind.SPAM,
            category=Category.WHITE,
            subject="cheap meds now buy",
        )
        released_id = rf.dispatch(
            store,
            kind=MessageKind.LEGIT,
            subject="project report attached",
            challenge_id=1,
        )
        rf.release(store, msg_id=released_id)
        rf.dispatch(
            store,
            kind=MessageKind.LEGIT,
            subject="lunch plans weekend",
            challenge_id=2,
        )
        for _ in range(3):
            rf.dispatch(
                store, kind=MessageKind.SPAM, subject="replica watches offer"
            )
        comparison = compare_defences(store, train_fraction=0.3)
        assert comparison.cr_spam_delivered == 1
        assert comparison.cr_legit_lost == 1
        assert 0 < comparison.cr_false_negative_rate < 1
        assert 0 < comparison.cr_false_positive_rate < 1

    def test_invalid_train_fraction(self):
        with pytest.raises(ValueError):
            compare_defences(LogStore(), train_fraction=1.5)

    def test_on_real_run_cr_beats_bayes_on_fn(self, small_store):
        comparison = compare_defences(small_store)
        # The paper's (cited) finding: CR has essentially zero false
        # negatives, content filtering does not.
        assert comparison.cr_false_negative_rate < 0.005
        assert comparison.bayes.false_negative_rate > (
            comparison.cr_false_negative_rate
        )
        # And both keep false positives low-single-digit.
        assert comparison.cr_false_positive_rate < 0.05
        assert comparison.bayes.false_positive_rate < 0.20
        # The content filter is still a competent classifier.
        assert comparison.bayes.accuracy > 0.9

    def test_render(self, small_store):
        out = build_table(compare_defences(small_store)).render()
        assert "challenge-response" in out
        assert "naive Bayes" in out


class TestComparisonStreaming:
    """compare_defences on spilled and sharded stores: same answer as the
    in-memory path, without materialising the dispatch table."""

    def _fill(self, store, rows):
        """Synthetic mixed traffic; returns the records for mirroring."""
        for i in range(rows):
            if i % 3 == 0:
                rf.dispatch(
                    store,
                    kind=MessageKind.LEGIT,
                    category=Category.WHITE,
                    subject="meeting notes agenda today",
                )
            elif i % 3 == 1:
                rf.dispatch(store, kind=MessageKind.SPAM,
                            subject="cheap meds now buy today")
            else:
                msg_id = rf.dispatch(
                    store, kind=MessageKind.LEGIT,
                    subject="project report attached", challenge_id=i,
                )
                if i % 6 == 2:
                    rf.release(store, msg_id=msg_id)

    def test_spilled_store_comparison_matches_in_memory(self, tmp_path):
        from repro.analysis.store import SpillConfig

        plain = LogStore()
        self._fill(plain, rows=90)
        spilled = LogStore(
            spill=SpillConfig(directory=str(tmp_path), chunk_rows=16)
        )
        # Mirror the exact record objects (the factory's msg-id counter is
        # global, so generating twice would not produce equal stores).
        for record in plain.dispatch:
            spilled.add_dispatch(record)
        for record in plain.releases:
            spilled.add_release(record)
        assert spilled.dispatch.bytes_spilled > 0  # really on disk

        assert compare_defences(spilled) == compare_defences(plain)

    def test_sharded_store_comparison_matches_plain(self, tiny_result):
        from repro.experiments import run_simulation

        sharded = run_simulation("tiny", seed=7, shards=2, shard_jobs=1)
        assert compare_defences(sharded.store) == compare_defences(
            tiny_result.store
        )

    def test_spilled_comparison_peak_memory_is_bounded(self, tmp_path):
        """Regression for the slicing bug: the streaming pass must hold
        roughly one spill chunk, not the whole table."""
        import tracemalloc

        from repro.analysis.store import SpillConfig

        store = LogStore(
            spill=SpillConfig(directory=str(tmp_path), chunk_rows=128)
        )
        self._fill(store, rows=4_000)
        assert store.dispatch.bytes_spilled > 0

        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            compare_defences(store)
            _, streaming_peak = tracemalloc.get_traced_memory()

            tracemalloc.reset_peak()
            materialised = list(store.dispatch)
            _, materialise_peak = tracemalloc.get_traced_memory()
            del materialised
        finally:
            tracemalloc.stop()

        assert streaming_peak < materialise_peak / 2
