"""Unit tests for Table 1 and the §6 discussion analyses + context."""

import pytest

from repro.analysis import discussion, general_stats
from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.mta_in import DropReason
from repro.core.spools import Category, ReleaseMechanism

from tests import recordfactory as rf

INFO = DeploymentInfo(
    n_companies=2,
    n_open_relays=1,
    users_per_company={"c0": 10, "c1": 5},
    horizon_days=10.0,
    min_cluster_size=3,
    volume_scale=0.5,
)


class TestDeploymentInfo:
    def test_total_users(self):
        assert INFO.total_users == 15

    def test_company_days(self):
        assert INFO.company_days == 20.0

    def test_effective_churn_days_is_horizon(self):
        # Churn streams run at paper rates regardless of volume scale.
        assert INFO.effective_churn_days == 10.0


class TestGeneralStats:
    def _store(self):
        store = LogStore()
        for _ in range(6):
            rf.mta(store, drop=DropReason.UNKNOWN_RECIPIENT)
        for _ in range(4):
            rf.mta(store)
        rf.dispatch(store, category=Category.WHITE)
        rf.dispatch(store, category=Category.BLACK)
        rf.dispatch(store, filter_drop="rbl")
        rf.dispatch(store, challenge_id=1, challenge_created=True)
        rf.challenge(store, 1)
        rf.outcome(store, 1)
        rf.web(store, 1, WebAction.SOLVE)
        rf.release(store, mechanism=ReleaseMechanism.DIGEST)
        return store

    def test_counts(self):
        stats = general_stats.compute(self._store(), INFO)
        assert stats.total_incoming == 10
        assert stats.dropped_at_mta == 6
        assert stats.white == 1
        assert stats.black == 1
        assert stats.gray == 2
        assert stats.challenges_sent == 1
        assert stats.solved_captchas == 1
        assert stats.whitelisted_from_digest == 1
        assert stats.dropped_rbl == 1

    def test_daily_rates(self):
        stats = general_stats.compute(self._store(), INFO)
        assert stats.emails_per_day == pytest.approx(1.0)
        assert stats.analyzed_days == pytest.approx(20.0)

    def test_render_contains_paper_numbers(self):
        out = general_stats.render(self._store(), INFO)
        assert "90,368,573" in out
        assert "4,299,610" in out


class TestDiscussion:
    def test_compute_pulls_from_all_analyses(self, tiny_result):
        stats = discussion.compute(tiny_result.store, tiny_result.info)
        assert stats.emails_per_challenge > 1
        assert 0 <= stats.traffic_increase < 0.1
        assert 0 <= stats.challenges_solved_share <= 1
        assert 0 <= stats.inbox_instant_share <= 1
        assert stats.inbox_instant_share + stats.inbox_quarantined_share == (
            pytest.approx(1.0)
        )

    def test_render_smoke(self, tiny_result):
        out = discussion.render(tiny_result.store, tiny_result.info)
        assert "Sec. 6" in out
        assert "traffic increase" in out
