"""Unit tests for SMTP primitives."""

from repro.net.smtp import (
    BounceReason,
    Envelope,
    Reply,
    SmtpResponse,
    bounce_reason_for,
)


class TestSmtpResponse:
    def test_250_accepted(self):
        response = SmtpResponse(Reply.OK)
        assert response.accepted
        assert not response.transient
        assert not response.permanent

    def test_451_transient(self):
        response = SmtpResponse(Reply.GREYLISTED)
        assert response.transient
        assert not response.accepted
        assert not response.permanent

    def test_connect_fail_treated_as_transient(self):
        response = SmtpResponse(Reply.CONNECT_FAIL)
        assert response.transient
        assert not response.permanent

    def test_550_permanent(self):
        response = SmtpResponse(Reply.MAILBOX_UNAVAILABLE)
        assert response.permanent
        assert not response.transient
        assert not response.accepted

    def test_554_permanent(self):
        assert SmtpResponse(Reply.BLACKLISTED).permanent


class TestBounceReasonMapping:
    def test_550_is_nonexistent_recipient(self):
        assert (
            bounce_reason_for(Reply.MAILBOX_UNAVAILABLE)
            is BounceReason.NONEXISTENT_RECIPIENT
        )

    def test_554_is_blacklisted(self):
        assert bounce_reason_for(Reply.BLACKLISTED) is BounceReason.BLACKLISTED

    def test_other_5xx_is_other(self):
        assert bounce_reason_for(Reply.RELAY_DENIED) is BounceReason.OTHER
        assert bounce_reason_for(Reply.CONTENT_REJECTED) is BounceReason.OTHER


class TestEnvelope:
    def test_fields_and_immutability(self):
        envelope = Envelope(
            mail_from="a@x.com", rcpt_to="b@y.com", size=100, client_ip="1.1.1.1"
        )
        assert envelope.payload_id is None
        try:
            envelope.size = 5  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Envelope should be frozen")
