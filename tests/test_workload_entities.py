"""Unit tests for world construction."""

import random

import pytest

from repro.net.addresses import is_well_formed
from repro.util.rng import RngStreams
from repro.workload.calibration import DEFAULT_CALIBRATION
from repro.workload.entities import build_world
from repro.workload.scale import get_preset


@pytest.fixture(scope="module")
def world():
    return build_world(get_preset("tiny"), DEFAULT_CALIBRATION, RngStreams(5))


class TestCompanies:
    def test_company_count_matches_scale(self, world):
        assert len(world.companies) == world.scale.n_companies

    def test_open_relay_count(self, world):
        relays = [c for c in world.companies if c.config.open_relay]
        assert len(relays) == world.scale.open_relays

    def test_total_users_near_scale(self, world):
        total = sum(c.n_users for c in world.companies)
        assert total == pytest.approx(world.scale.total_users, rel=0.35)

    def test_every_company_has_minimum_users(self, world):
        assert all(c.n_users >= 3 for c in world.companies)

    def test_company_domains_registered_in_dns(self, world):
        for company in world.companies:
            assert world.resolver.resolves(company.config.domain)

    def test_relay_domains_registered(self, world):
        for company in world.companies:
            for relay_domain in company.config.relay_domains:
                assert world.resolver.resolves(relay_domain)

    def test_dual_outbound_for_about_a_third(self, world):
        dual = [c for c in world.companies if c.config.dual_outbound]
        assert 0 < len(dual) <= len(world.companies) // 2

    def test_unique_ips_per_company(self, world):
        ips = set()
        for company in world.companies:
            config = company.config
            for ip in {config.mta_in_ip, config.mta_out_ip, config.challenge_ip}:
                assert ip not in ips
                ips.add(ip)

    def test_rejected_senders_resolve(self, world):
        # The sender-rejected check runs after domain resolution, so the
        # blocked addresses must live at resolvable domains.
        for company in world.companies:
            for sender in company.config.rejected_senders:
                domain = sender.rsplit("@", 1)[-1]
                assert world.resolver.resolves(domain)

    def test_dirty_companies_have_high_affinity(self, world):
        cal = DEFAULT_CALIBRATION
        dirty = [
            c
            for c in world.companies
            if c.trap_affinity > cal.trap_affinity_clean_max
        ]
        assert 1 <= len(dirty) <= cal.dirty_companies
        assert all(a in cal.trap_affinity_dirty for a in
                   (c.trap_affinity for c in dirty))

    def test_user_profiles_complete(self, world):
        for company in world.companies:
            for user in company.users:
                assert user.address.endswith("@" + company.config.domain)
                assert user.sociality > 0
                assert user.contacts
                assert user.nuisance_senders


class TestExternalWorld:
    def test_contact_addresses_are_deliverable(self, world):
        rng = random.Random(0)
        for _ in range(30):
            contact = rng.choice(world.contact_pool)
            local, domain = contact.rsplit("@", 1)
            host = world.internet.host_for(domain)
            assert host is not None
            assert host.has_mailbox(local)

    def test_innocent_addresses_are_deliverable(self, world):
        rng = random.Random(1)
        for _ in range(30):
            innocent = rng.choice(world.innocent_pool)
            local, domain = innocent.rsplit("@", 1)
            assert world.internet.host_for(domain).has_mailbox(local)

    def test_dead_domains_resolve_but_have_no_host(self, world):
        for domain in world.dead_domains[:20]:
            assert world.resolver.resolves(domain)
            assert world.internet.host_for(domain) is None

    def test_unresolvable_domains_do_not_resolve(self, world):
        for domain in world.unresolvable_domains[:20]:
            assert not world.resolver.resolves(domain)

    def test_trap_addresses_owned_by_services(self, world):
        for trap in world.trap_addresses[:20]:
            owner = world.trap_directory.owner_of(trap)
            assert owner in world.services

    def test_trap_hosts_report_hits(self, world):
        trap = world.trap_addresses[0]
        service_name = world.trap_directory.owner_of(trap)
        service = world.services[service_name]
        local, domain = trap.rsplit("@", 1)
        host = world.internet.host_for(domain)
        from repro.net.smtp import Envelope

        before = len(service.history)
        for _ in range(10):
            host.deliver(
                Envelope("c@x.com", trap, 100, "203.0.113.7"), now=0.0
            )
        assert service.is_listed("203.0.113.7", 1.0)
        assert len(service.history) > before

    def test_eight_dnsbl_services(self, world):
        assert len(world.services) == 8

    def test_sampling_helpers_produce_valid_addresses(self, world):
        rng = random.Random(2)
        samples = [
            world.sample_nonexistent_sender(rng),
            world.sample_dead_domain_sender(rng),
            world.sample_innocent_sender(rng),
            world.sample_trap_sender(rng),
            world.sample_spammer_sender(rng),
        ]
        assert all(is_well_formed(s) for s in samples)
        # Unresolvable senders are well-formed but do not resolve.
        unresolvable = world.sample_unresolvable_sender(rng)
        assert is_well_formed(unresolvable)
        assert not world.resolver.resolves(unresolvable.rsplit("@", 1)[-1])

    def test_create_new_contact_registers_mailbox(self, world):
        address, client_ip = world.create_new_contact(random.Random(3))
        local, domain = address.rsplit("@", 1)
        assert world.internet.host_for(domain).has_mailbox(local)
        assert client_ip == world.internet.host_for(domain).ip

    def test_create_bot_ips_properties(self, world):
        rng = random.Random(4)
        bots = world.create_bot_ips(200, rng, listed_duration=10_000, now=0.0)
        assert len(set(bots)) == 200
        with_ptr = sum(1 for ip in bots if world.resolver.ptr(ip))
        share = with_ptr / len(bots)
        assert 0.4 < share < 0.85  # around bot_ptr_prob
        rbl = world.services["spamhaus-zen"]
        listed = sum(1 for ip in bots if rbl.is_listed(ip, 1.0))
        assert 0.5 < listed / len(bots) < 0.9  # around bot coverage

    def test_newsletter_sources_have_subscribers(self, world):
        assert world.newsletter_sources
        total_subs = sum(len(s.subscribers) for s in world.newsletter_sources)
        assert total_subs > 0

    def test_marketing_sources_built(self, world):
        assert world.marketing_sources
        for source in world.marketing_sources[:5]:
            assert source.senders
            assert 0 <= source.solve_prob <= 1.0
            assert world.internet.host_for(source.domain) is not None


class TestDeterminism:
    def test_same_seed_same_world(self):
        scale = get_preset("tiny")
        a = build_world(scale, DEFAULT_CALIBRATION, RngStreams(9))
        b = build_world(scale, DEFAULT_CALIBRATION, RngStreams(9))
        assert [c.config.domain for c in a.companies] == [
            c.config.domain for c in b.companies
        ]
        assert a.contact_pool == b.contact_pool
        assert [c.trap_affinity for c in a.companies] == [
            c.trap_affinity for c in b.companies
        ]

    def test_different_seed_different_world(self):
        scale = get_preset("tiny")
        a = build_world(scale, DEFAULT_CALIBRATION, RngStreams(9))
        b = build_world(scale, DEFAULT_CALIBRATION, RngStreams(10))
        assert a.contact_pool != b.contact_pool
