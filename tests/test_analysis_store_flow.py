"""Unit tests for the LogStore and the Fig. 1 / Fig. 2 analyses."""

import pytest

from repro.analysis import flow, mta_breakdown
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.mta_in import DropReason
from repro.core.spools import Category, ReleaseMechanism
from repro.net.smtp import FinalStatus

from tests import recordfactory as rf


class TestLogStore:
    def test_summary_counts_empty(self):
        assert all(v == 0 for v in LogStore().summary_counts().values())

    def test_outcome_index(self):
        store = LogStore()
        rf.outcome(store, 1, company="c0")
        rf.outcome(store, 2, company="c1", status=FinalStatus.EXPIRED)
        assert store.outcome_of("c0", 1).status is FinalStatus.DELIVERED
        assert store.outcome_of("c1", 2).status is FinalStatus.EXPIRED
        assert store.outcome_of("c0", 2) is None

    def test_outcome_index_invalidated_on_append(self):
        store = LogStore()
        rf.outcome(store, 1)
        # Materialize the lazy index, then append: the new record must be
        # visible on re-query (the append bumps the table version, so the
        # cached aggregate is rebuilt).
        assert store.outcome_of("c0", 1) is not None
        rf.outcome(store, 2)
        assert store.outcome_of("c0", 2) is not None

    def test_web_index_invalidated_on_append(self):
        store = LogStore()
        rf.web(store, 1, WebAction.OPEN, t=10.0)
        assert len(store.web_events_of("c0", 1)) == 1
        rf.web(store, 1, WebAction.SOLVE, t=20.0)
        assert [e.action for e in store.web_events_of("c0", 1)] == [
            WebAction.OPEN,
            WebAction.SOLVE,
        ]

    def test_drop_indices_discards_caches_without_losing_records(self):
        store = LogStore()
        rf.outcome(store, 1)
        rf.web(store, 1, WebAction.OPEN, t=10.0)
        store.outcome_of("c0", 1)
        store.web_events_of("c0", 1)
        store.drop_indices()
        assert store._index is None
        # Queries rebuild transparently.
        assert store.outcome_of("c0", 1) is not None
        assert len(store.web_events_of("c0", 1)) == 1

    def test_web_index_groups_events(self):
        store = LogStore()
        rf.web(store, 1, WebAction.OPEN, t=10.0)
        rf.web(store, 1, WebAction.SOLVE, t=20.0)
        rf.web(store, 2, WebAction.OPEN, t=30.0)
        events = store.web_events_of("c0", 1)
        assert [e.action for e in events] == [WebAction.OPEN, WebAction.SOLVE]
        assert store.web_events_of("c0", 99) == []

    def test_company_ids_first_seen_order(self):
        store = LogStore()
        rf.mta(store, company="c2")
        rf.mta(store, company="c0")
        rf.mta(store, company="c2")
        assert store.company_ids() == ["c2", "c0"]


class TestRunSummaryPickling:
    def _summary(self):
        from repro.analysis.context import DeploymentInfo
        from repro.experiments.parallel import RunSummary, store_digest

        store = LogStore()
        rf.mta(store)
        msg = rf.dispatch(store, challenge_id=1, challenge_created=True)
        rf.outcome(store, 1)
        rf.web(store, 1, WebAction.SOLVE, t=5.0)
        rf.release(store, msg_id=msg, mechanism=ReleaseMechanism.CAPTCHA)
        info = DeploymentInfo(
            n_companies=1,
            n_open_relays=0,
            users_per_company={"c0": 5},
            horizon_days=10.0,
            min_cluster_size=2,
        )
        return RunSummary(
            store=store,
            info=info,
            seed=7,
            wall_seconds=0.1,
            digest=store_digest(store),
        )

    def test_round_trips_through_pickle_unchanged(self):
        import pickle

        from repro.experiments.parallel import store_digest

        summary = self._summary()
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.digest == summary.digest
        assert store_digest(clone.store) == summary.digest
        assert clone.store.summary_counts() == summary.store.summary_counts()
        assert clone.info == summary.info
        assert clone.seed == summary.seed
        # Correlation indices still work on the clone.
        assert clone.store.outcome_of("c0", 1) is not None


class TestMtaBreakdown:
    def _store(self):
        store = LogStore()
        # Closed relay: 6 dropped (4 unknown, 1 unresolvable, 1 malformed),
        # 4 accepted.
        for _ in range(4):
            rf.mta(store, drop=DropReason.UNKNOWN_RECIPIENT)
        rf.mta(store, drop=DropReason.UNRESOLVABLE_DOMAIN)
        rf.mta(store, drop=DropReason.MALFORMED)
        for _ in range(4):
            rf.mta(store)
        # Open relay: 1 dropped, 3 accepted.
        rf.mta(store, company="c9", open_relay=True, drop=DropReason.NO_RELAY)
        for _ in range(3):
            rf.mta(store, company="c9", open_relay=True)
        return store

    def test_drop_shares(self):
        result = mta_breakdown.compute(self._store())
        assert result.closed_total == 10
        assert result.open_total == 4
        assert result.drop_shares[DropReason.UNKNOWN_RECIPIENT] == 0.4
        assert result.drop_shares[DropReason.MALFORMED] == 0.1
        assert result.drop_shares[DropReason.SENDER_REJECTED] == 0.0

    def test_pass_rates(self):
        result = mta_breakdown.compute(self._store())
        assert result.closed_pass_rate == 0.4
        assert result.open_pass_rate == 0.75

    def test_render_contains_paper_values(self):
        out = mta_breakdown.render(self._store())
        assert "62.36%" in out
        assert "Unknown recipient" in out


class TestFlow:
    def _store(self):
        store = LogStore()
        # 10 messages at a closed-relay MTA: 5 dropped, 5 accepted.
        for _ in range(5):
            rf.mta(store, drop=DropReason.UNKNOWN_RECIPIENT)
        for _ in range(5):
            rf.mta(store)
        # Dispatch: 1 white, 1 black, 3 gray (1 filtered, 2 quarantined,
        # 1 challenge created + 1 suppressed).
        rf.dispatch(store, category=Category.WHITE)
        rf.dispatch(store, category=Category.BLACK)
        rf.dispatch(store, filter_drop="rbl")
        msg_a = rf.dispatch(store, challenge_id=1, challenge_created=True)
        rf.dispatch(store, challenge_id=1, challenge_created=False)
        rf.release(store, msg_id=msg_a, mechanism=ReleaseMechanism.CAPTCHA)
        return store

    def test_per_1000_scaling(self):
        result = flow.compute(self._store())
        assert result.dropped_at_mta == 500.0
        assert result.to_dispatcher == 500.0
        assert result.white == 100.0
        assert result.black == 100.0
        assert result.gray == 300.0
        assert result.filter_dropped == 100.0
        assert result.quarantined == 200.0
        assert result.challenges_sent == 100.0
        assert result.released_captcha == 100.0

    def test_conservation_check(self):
        result = flow.compute(self._store())
        assert flow.conservation_check(result)

    def test_open_relay_traffic_excluded(self):
        store = self._store()
        rf.mta(store, company="c9", open_relay=True)
        rf.dispatch(
            store, company="c9", open_relay=True, category=Category.WHITE
        )
        result = flow.compute(store)
        assert result.white == 100.0  # unchanged

    def test_empty_store_raises(self):
        with pytest.raises(ValueError):
            flow.compute(LogStore())


class TestFlowOnSimulation:
    def test_conservation_on_real_run(self, tiny_store):
        result = flow.compute(tiny_store)
        assert flow.conservation_check(result)

    def test_render_smoke(self, tiny_store):
        out = flow.render(tiny_store)
        assert "Fig. 1" in out
        assert "challenges sent" in out
