"""In-suite chaos and load-generator tests.

A trimmed version of the CI ``serve-smoke`` gate (2 kill -9 injections
instead of 20, small bursts) so the zero-loss machinery is exercised on
every test run, not only in the dedicated workflow job. The full-size
gate lives in ``scripts/serve_smoke.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.chaos import run_chaos
from repro.serve.sstress import StressConfig, run_stress, scenario_messages
from tests.serve_harness import live_stack, pick_targets


@pytest.mark.slow
def test_kill9_zero_loss_two_rounds(tmp_path):
    """Two randomized SIGKILLs against a real subprocess under load:
    every 250-acked message must be in the replayed ledger, the ledger
    must reconcile on every restart, and the final SIGTERM must drain
    cleanly with exit code 0."""
    report = asyncio.run(
        run_chaos(
            str(tmp_path),
            kills=2,
            messages_per_burst=80,
            rate=250.0,
            rng_seed=97,
        )
    )
    assert report["zero_loss"] is True
    assert report["graceful_exit_code"] == 0
    final = report["final_reconciliation"]
    assert final["reconciled"]
    assert final["accepted"] >= report["cumulative_acked"] - report["clean_burst"]["acked"]
    assert final["accepted"] >= sum(r["acked_this_burst"] for r in report["rounds"])
    assert report["clean_burst"]["errors"] == 0
    assert report["clean_burst"]["accept_latency_ms"]["p99"] > 0


def test_sstress_open_loop_report(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, web):
            report = await run_stress(
                StressConfig(
                    smtp_port=smtp.port,
                    web_port=web.port,
                    rate=500.0,
                    messages=100,
                    connections=4,
                    seed=11,
                )
            )
            assert report["offered"] == report["completed"] == 100
            assert report["acked"] == report["codes"]["250"]
            assert report["errors"] == 0
            assert report["accept_latency_ms"]["p99"] >= report[
                "accept_latency_ms"
            ]["p50"]
            assert report["sustained_msgs_per_sec"] > 0
            reconciliation = service.reconcile()
            assert reconciliation["reconciled"]
            assert reconciliation["accepted"] == report["acked"]

    asyncio.run(scenario())


def test_sstress_workload_is_deterministic(tmp_path):
    from repro.serve.sstress import build_messages, default_senders

    config = StressConfig(smtp_port=1, messages=50, seed=9)
    first = build_messages(config, ["u@d.example"], default_senders())
    second = build_messages(config, ["u@d.example"], default_senders())
    assert first == second
    assert any(s.startswith("SPAM:") for _, _, s in first)


def test_scenario_replay_through_live_server(tmp_path):
    """Satellite (d): the composite pack scenario, replayed as live SMTP
    traffic. All attack volume routes to the attacked company and the
    ledger conserves it."""

    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, web):
            report = await run_stress(
                StressConfig(
                    smtp_port=smtp.port,
                    web_port=web.port,
                    scenario="combined-assault",
                    rate=500.0,
                    messages=80,
                    connections=6,
                    seed=3,
                )
            )
            assert report["scenario"] == "combined-assault"
            assert report["offered"] > 0
            assert report["errors"] == 0
            assert report["acked"] == report["codes"]["250"] == report["offered"]
            reconciliation = service.reconcile()
            assert reconciliation["reconciled"]
            # Both attacks target c01: every replayed message lands there.
            assert (
                reconciliation["per_company"]["c01"]["accepted"]
                == report["acked"]
            )

    asyncio.run(scenario())


def test_scenario_workload_mirrors_attack_volumes(tmp_path):
    """The compiled live workload respects the scenario's relative attack
    volumes and stamps every message as ground-truth spam."""
    directory = {
        "companies": [{"company_id": "c01", "users": ["a@x.example"]}],
        "sender_domains": [],
    }
    workload = scenario_messages("combined-assault", directory, 200, seed=1)
    assert len(workload) <= 200
    kinds = {"captcha-farm": 0, "newsletter-flood": 0}
    for _frm, rcpt, subject in workload:
        assert rcpt == "a@x.example"
        assert subject.startswith("SPAM: [")
        for kind in kinds:
            if f"[{kind}]" in subject:
                kinds[kind] += 1
    # flood (120/day) outweighs farm (80/day) at the scenario's ratio.
    assert kinds["newsletter-flood"] > kinds["captcha-farm"] > 0
