"""Unit tests for the inbound MTA checks (the §2 drop table)."""

import pytest

from repro.core.message import make_message
from repro.core.mta_in import DropReason, MtaIn
from repro.net.dns import DnsRegistry, Resolver

from tests.helpers import (
    COMPANY_DOMAIN,
    CONTACT,
    CONTACT_DOMAIN,
    USER_ADDRESS,
    make_micro_env,
)


@pytest.fixture
def env():
    return make_micro_env()


def _check(env, env_from=CONTACT, env_to=USER_ADDRESS):
    message = make_message(0.0, env_from, env_to)
    return env.installation.mta_in.check(message)


class TestChecks:
    def test_accepts_clean_message(self, env):
        assert _check(env) is None

    def test_malformed_sender(self, env):
        assert _check(env, env_from="no-at-sign") is DropReason.MALFORMED

    def test_malformed_recipient(self, env):
        assert (
            _check(env, env_to="double@@" + COMPANY_DOMAIN)
            is DropReason.MALFORMED
        )

    def test_unresolvable_sender_domain(self, env):
        assert (
            _check(env, env_from="x@ghost-domain.example")
            is DropReason.UNRESOLVABLE_DOMAIN
        )

    def test_no_relay_for_foreign_recipient(self, env):
        assert (
            _check(env, env_to=f"someone@{CONTACT_DOMAIN}")
            is DropReason.NO_RELAY
        )

    def test_rejected_sender(self, env):
        assert (
            _check(env, env_from=f"blocked@{CONTACT_DOMAIN}")
            is DropReason.SENDER_REJECTED
        )

    def test_rejected_sender_case_insensitive(self, env):
        assert (
            _check(env, env_from=f"Blocked@{CONTACT_DOMAIN.upper()}")
            is DropReason.SENDER_REJECTED
        )

    def test_unknown_recipient(self, env):
        assert (
            _check(env, env_to=f"ghost@{COMPANY_DOMAIN}")
            is DropReason.UNKNOWN_RECIPIENT
        )

    def test_check_order_malformed_before_unresolvable(self, env):
        # A malformed sender is reported as MALFORMED even though its
        # "domain" would also fail to resolve.
        assert _check(env, env_from="bad<chars>@ghost.example") is (
            DropReason.MALFORMED
        )

    def test_check_order_unresolvable_before_unknown_recipient(self, env):
        assert _check(
            env,
            env_from="x@ghost-domain.example",
            env_to=f"ghost@{COMPANY_DOMAIN}",
        ) is DropReason.UNRESOLVABLE_DOMAIN

    def test_check_order_relay_before_recipient_validation(self, env):
        # Foreign recipients hit the relay policy, not recipient validation.
        assert (
            _check(env, env_to="anyone@unrelated.example")
            is DropReason.NO_RELAY
        )


class TestOpenRelay:
    def test_relay_domain_recipient_accepted_without_validation(self):
        env = make_micro_env(open_relay=True)
        assert _check(env, env_to="whoever@relayed.example") is None

    def test_non_relay_foreign_domain_still_refused(self):
        env = make_micro_env(open_relay=True)
        assert (
            _check(env, env_to="whoever@other.example") is DropReason.NO_RELAY
        )

    def test_own_domain_still_validated(self):
        env = make_micro_env(open_relay=True)
        assert (
            _check(env, env_to=f"ghost@{COMPANY_DOMAIN}")
            is DropReason.UNKNOWN_RECIPIENT
        )


class TestCounters:
    def test_counters_track_decisions(self, env):
        mta = env.installation.mta_in
        _check(env)
        _check(env, env_to=f"ghost@{COMPANY_DOMAIN}")
        _check(env, env_to=f"ghost2@{COMPANY_DOMAIN}")
        assert mta.accepted == 1
        assert mta.dropped[DropReason.UNKNOWN_RECIPIENT] == 2

    def test_standalone_mta_in(self):
        registry = DnsRegistry()
        registry.register_mail_domain(CONTACT_DOMAIN, "1.1.1.1")
        from repro.core.config import CompanyConfig

        config = CompanyConfig(
            company_id="c",
            name="C",
            domain="solo.example",
            users=("a",),
            mta_in_ip="2.2.2.2",
            mta_out_ip="2.2.2.3",
            challenge_ip="2.2.2.3",
        )
        mta = MtaIn(config, Resolver(registry))
        message = make_message(0.0, CONTACT, "a@solo.example")
        assert mta.check(message) is None


class TestPrecheckBatchEquivalence:
    """``precheck_batch`` + hinted ``check`` must equal the plain
    ``_classify`` walk — same verdict, same counters — for every drop
    reason and for open-relay configs.

    The batch path lowercases addresses itself (mirroring what
    ``normalize_ingress`` does before ``check`` reads the hint), so the
    hinted arm normalizes the message fields the same way the engine does.
    """

    # (env_from, env_to) envelopes covering every verdict, with mixed-case
    # variants to exercise the islower fast paths on both arms.
    ENVELOPES = [
        (CONTACT, USER_ADDRESS),                          # accept
        ("", USER_ADDRESS),                               # null sender accept
        ("Bob@Partner.Example", f"Alice@{COMPANY_DOMAIN}"),  # mixed case
        ("no-at-sign", USER_ADDRESS),                     # malformed sender
        (CONTACT, "double@@" + COMPANY_DOMAIN),           # malformed rcpt
        (CONTACT, "what even is this"),                   # malformed rcpt
        ("x@ghost-domain.example", USER_ADDRESS),         # unresolvable
        (CONTACT, f"someone@{CONTACT_DOMAIN}"),           # no relay
        ("", f"someone@{CONTACT_DOMAIN}"),                # null + no relay
        (f"blocked@{CONTACT_DOMAIN}", USER_ADDRESS),      # rejected sender
        (f"BLOCKED@{CONTACT_DOMAIN}", USER_ADDRESS),      # rejected, cased
        (CONTACT, f"nobody@{COMPANY_DOMAIN}"),            # unknown recipient
        (CONTACT, f"NoBody@{COMPANY_DOMAIN}"),            # unknown, cased
        (CONTACT, "anyone@relayed.example"),              # relay (if open)
        (f"blocked@{CONTACT_DOMAIN}", "anyone@relayed.example"),
        ("x@ghost-domain.example", "anyone@relayed.example"),
    ]

    @staticmethod
    def _normalize(message):
        # What the engine's inlined normalize_ingress does before check().
        if not message.env_from.islower():
            message.env_from = message.env_from.lower()
        if not message.env_to.islower():
            message.env_to = message.env_to.lower()

    @pytest.mark.parametrize("open_relay", [False, True])
    def test_hinted_check_equals_classify(self, open_relay):
        batched_env = make_micro_env(open_relay=open_relay)
        plain_env = make_micro_env(open_relay=open_relay)
        batched_mta = batched_env.installation.mta_in
        plain_mta = plain_env.installation.mta_in

        batch = [
            make_message(0.0, f, t, client_ip="10.2.0.9")
            for f, t in self.ENVELOPES
        ]
        batched_mta.precheck_batch(batch)
        for message in batch:
            assert message.mta_hint is not None

        for (env_from, env_to), message in zip(self.ENVELOPES, batch):
            self._normalize(message)
            hinted = batched_mta.check(message)
            # The plain arm goes through the same ingress normalization —
            # in production normalize runs before check() either way.
            twin = make_message(0.0, env_from, env_to, client_ip="10.2.0.9")
            self._normalize(twin)
            plain = plain_mta.check(twin)
            assert hinted is plain, (env_from, env_to, hinted, plain)

        assert batched_mta.accepted == plain_mta.accepted
        assert batched_mta.dropped == plain_mta.dropped
        assert batched_mta.dns_tempfails == plain_mta.dns_tempfails

    def test_hint_resolution_is_deferred_to_check_time(self):
        """The hint must not bake in a DNS verdict: a domain that becomes
        unresolvable between precheck and delivery is still dropped."""
        env = make_micro_env()
        mta = env.installation.mta_in
        message = make_message(0.0, CONTACT, USER_ADDRESS)
        mta.precheck_batch([message])
        pre_dns, sender_domain, post = message.mta_hint
        assert pre_dns is None and post is None
        assert sender_domain == CONTACT_DOMAIN
        # Remove the sender's records after precheck: check() must notice.
        env.registry.remove_records(CONTACT_DOMAIN, DnsRegistry.A)
        env.registry.remove_records(CONTACT_DOMAIN, DnsRegistry.MX)
        assert mta.check(message) is DropReason.UNRESOLVABLE_DOMAIN
