"""Unit tests for the inbound MTA checks (the §2 drop table)."""

import pytest

from repro.core.message import make_message
from repro.core.mta_in import DropReason, MtaIn
from repro.net.dns import DnsRegistry, Resolver

from tests.helpers import (
    COMPANY_DOMAIN,
    CONTACT,
    CONTACT_DOMAIN,
    USER_ADDRESS,
    make_micro_env,
)


@pytest.fixture
def env():
    return make_micro_env()


def _check(env, env_from=CONTACT, env_to=USER_ADDRESS):
    message = make_message(0.0, env_from, env_to)
    return env.installation.mta_in.check(message)


class TestChecks:
    def test_accepts_clean_message(self, env):
        assert _check(env) is None

    def test_malformed_sender(self, env):
        assert _check(env, env_from="no-at-sign") is DropReason.MALFORMED

    def test_malformed_recipient(self, env):
        assert (
            _check(env, env_to="double@@" + COMPANY_DOMAIN)
            is DropReason.MALFORMED
        )

    def test_unresolvable_sender_domain(self, env):
        assert (
            _check(env, env_from="x@ghost-domain.example")
            is DropReason.UNRESOLVABLE_DOMAIN
        )

    def test_no_relay_for_foreign_recipient(self, env):
        assert (
            _check(env, env_to=f"someone@{CONTACT_DOMAIN}")
            is DropReason.NO_RELAY
        )

    def test_rejected_sender(self, env):
        assert (
            _check(env, env_from=f"blocked@{CONTACT_DOMAIN}")
            is DropReason.SENDER_REJECTED
        )

    def test_rejected_sender_case_insensitive(self, env):
        assert (
            _check(env, env_from=f"Blocked@{CONTACT_DOMAIN.upper()}")
            is DropReason.SENDER_REJECTED
        )

    def test_unknown_recipient(self, env):
        assert (
            _check(env, env_to=f"ghost@{COMPANY_DOMAIN}")
            is DropReason.UNKNOWN_RECIPIENT
        )

    def test_check_order_malformed_before_unresolvable(self, env):
        # A malformed sender is reported as MALFORMED even though its
        # "domain" would also fail to resolve.
        assert _check(env, env_from="bad<chars>@ghost.example") is (
            DropReason.MALFORMED
        )

    def test_check_order_unresolvable_before_unknown_recipient(self, env):
        assert _check(
            env,
            env_from="x@ghost-domain.example",
            env_to=f"ghost@{COMPANY_DOMAIN}",
        ) is DropReason.UNRESOLVABLE_DOMAIN

    def test_check_order_relay_before_recipient_validation(self, env):
        # Foreign recipients hit the relay policy, not recipient validation.
        assert (
            _check(env, env_to="anyone@unrelated.example")
            is DropReason.NO_RELAY
        )


class TestOpenRelay:
    def test_relay_domain_recipient_accepted_without_validation(self):
        env = make_micro_env(open_relay=True)
        assert _check(env, env_to="whoever@relayed.example") is None

    def test_non_relay_foreign_domain_still_refused(self):
        env = make_micro_env(open_relay=True)
        assert (
            _check(env, env_to="whoever@other.example") is DropReason.NO_RELAY
        )

    def test_own_domain_still_validated(self):
        env = make_micro_env(open_relay=True)
        assert (
            _check(env, env_to=f"ghost@{COMPANY_DOMAIN}")
            is DropReason.UNKNOWN_RECIPIENT
        )


class TestCounters:
    def test_counters_track_decisions(self, env):
        mta = env.installation.mta_in
        _check(env)
        _check(env, env_to=f"ghost@{COMPANY_DOMAIN}")
        _check(env, env_to=f"ghost2@{COMPANY_DOMAIN}")
        assert mta.accepted == 1
        assert mta.dropped[DropReason.UNKNOWN_RECIPIENT] == 2

    def test_standalone_mta_in(self):
        registry = DnsRegistry()
        registry.register_mail_domain(CONTACT_DOMAIN, "1.1.1.1")
        from repro.core.config import CompanyConfig

        config = CompanyConfig(
            company_id="c",
            name="C",
            domain="solo.example",
            users=("a",),
            mta_in_ip="2.2.2.2",
            mta_out_ip="2.2.2.3",
            challenge_ip="2.2.2.3",
        )
        mta = MtaIn(config, Resolver(registry))
        message = make_message(0.0, CONTACT, "a@solo.example")
        assert mta.check(message) is None
