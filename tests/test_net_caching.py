"""Tests for the simulated-substrate caches (DNS, DNSBL, SMTP routing).

The caches are pure speed: every test here pins either "a hit returns the
very same answer" or "an authoritative change invalidates exactly the
affected answers", and the run-level test pins that a fully cached run
produces a byte-identical report digest to an uncached one.
"""

from __future__ import annotations

import pytest

from repro.blacklistd.service import DnsblService, ListingPolicy
from repro.experiments import run_simulation
from repro.experiments.parallel import store_digest
from repro.net.dns import DnsRegistry, Resolver
from repro.net.internet import NO_ROUTE, Internet
from repro.net.smtp import domain_of


@pytest.fixture
def registry():
    registry = DnsRegistry()
    registry.register_mail_domain("corp.example", "192.0.2.1")
    registry.register_client_ptr("203.0.113.5", "smtp.legit.example")
    return registry


class TestResolverCache:
    def test_hit_returns_identical_answer_object(self, registry):
        resolver = Resolver(registry)
        first = resolver._lookup("corp.example", DnsRegistry.MX)
        second = resolver._lookup("corp.example", DnsRegistry.MX)
        assert second is first  # the cached tuple IS the answer
        assert resolver.ptr("203.0.113.5") is resolver.ptr("203.0.113.5")
        assert resolver.cache_hits >= 2

    def test_negative_answers_are_cached_too(self, registry):
        resolver = Resolver(registry)
        assert resolver.mx_host("nosuch.example") is None
        misses = resolver.cache_misses
        assert resolver.mx_host("nosuch.example") is None
        assert resolver.cache_misses == misses
        assert resolver.cache_hits >= 1

    def test_queries_counter_still_counts_cached_calls(self, registry):
        resolver = Resolver(registry)
        resolver.resolves("corp.example")
        before = resolver.queries
        resolver.resolves("corp.example")  # pure cache hit
        assert resolver.queries == before + 1

    def test_record_change_invalidates_only_the_affected_answer(self, registry):
        resolver = Resolver(registry)
        assert resolver.ptr("203.0.113.5") == "smtp.legit.example"
        assert resolver.mx_host("corp.example") == "mail.corp.example"

        registry.remove_records("203.0.113.5", DnsRegistry.PTR)

        assert resolver.ptr("203.0.113.5") is None  # fresh answer
        hits = resolver.cache_hits
        assert resolver.mx_host("corp.example") == "mail.corp.example"
        assert resolver.cache_hits == hits + 1  # MX answer stayed warm

    def test_added_record_visible_through_the_cache(self, registry):
        resolver = Resolver(registry)
        assert not resolver.resolves("late.example")
        registry.register_mail_domain("late.example", "192.0.2.9")
        assert resolver.resolves("late.example")

    def test_cache_disabled_bypasses(self, registry, monkeypatch):
        monkeypatch.setattr(Resolver, "CACHE_ENABLED", False)
        resolver = Resolver(registry)
        resolver.resolves("corp.example")
        resolver.resolves("corp.example")
        assert resolver.cache_hits == 0
        assert resolver.cache_misses == 0


class TestDnsblAnswerCache:
    def _service(self):
        return DnsblService(
            "test-rbl",
            ListingPolicy(threshold=1, window=100.0, base_duration=50.0),
        )

    def test_listing_invalidates_cached_not_listed(self):
        service = self._service()
        assert service.is_listed("198.51.100.1", now=0.0) is False
        assert service.is_listed("198.51.100.1", now=5.0) is False  # hit
        assert service.cache_hits == 1

        service.record_trap_hit("198.51.100.1", now=10.0)  # lists the IP

        assert service.is_listed("198.51.100.1", now=11.0) is True

    def test_delisting_is_ttl_expiry_of_the_cached_answer(self):
        service = self._service()
        service.force_list("198.51.100.2", now=0.0, duration=50.0)
        assert service.is_listed("198.51.100.2", now=10.0) is True
        assert service.is_listed("198.51.100.2", now=20.0) is True  # hit
        assert service.cache_hits == 1
        # The listing lapsed: the cached True must expire with it.
        assert service.is_listed("198.51.100.2", now=60.0) is False
        # ...and the fresh False answer is itself cached.
        assert service.is_listed("198.51.100.2", now=70.0) is False
        assert service.cache_hits == 2

    def test_relisting_after_expiry_invalidates_again(self):
        service = self._service()
        service.force_list("198.51.100.3", now=0.0, duration=10.0)
        assert service.is_listed("198.51.100.3", now=50.0) is False
        service.force_list("198.51.100.3", now=60.0, duration=10.0)
        assert service.is_listed("198.51.100.3", now=65.0) is True

    def test_queries_counter_still_counts_cached_calls(self):
        service = self._service()
        service.is_listed("198.51.100.4", now=0.0)
        before = service.queries
        service.is_listed("198.51.100.4", now=1.0)
        assert service.queries == before + 1

    def test_cache_disabled_bypasses(self, monkeypatch):
        monkeypatch.setattr(DnsblService, "CACHE_ENABLED", False)
        service = self._service()
        service.is_listed("198.51.100.5", now=0.0)
        service.is_listed("198.51.100.5", now=1.0)
        assert service.cache_hits == 0
        assert service.cache_misses == 0


class TestRouteCache:
    def test_no_route_answer_is_cached(self, registry):
        internet = Internet(Resolver(registry))
        assert internet.route_for("nosuch.example") is NO_ROUTE
        assert internet.route_for("nosuch.example") is NO_ROUTE
        assert internet.route_hits == 1
        assert internet.route_misses == 1

    def test_parked_domain_is_cached_as_unreachable(self, registry):
        internet = Internet(Resolver(registry))
        # corp.example resolves but has no registered host.
        assert internet.route_for("corp.example") is None
        assert internet.route_for("corp.example") is None
        assert internet.route_hits == 1

    def test_dns_change_invalidates_route(self, registry):
        internet = Internet(Resolver(registry))
        assert internet.route_for("late.example") is NO_ROUTE
        registry.register_mail_domain("late.example", "192.0.2.9")
        # The A/MX change must drop both the stale route and the stale
        # resolver answer: the domain now routes (to "parked", no host).
        assert internet.route_for("late.example") is not NO_ROUTE

    def test_register_host_invalidates_route(self, registry):
        from repro.net.hosts import RemoteMailHost

        resolver = Resolver(registry)
        internet = Internet(resolver)
        assert internet.route_for("corp.example") is None  # parked so far
        host = RemoteMailHost(domain="corp.example", ip="192.0.2.1")
        internet.register_host(host)
        assert internet.route_for("corp.example") is host

    def test_mixed_case_domain_normalised_at_the_boundary(self, registry):
        from repro.net.hosts import RemoteMailHost

        resolver = Resolver(registry)
        internet = Internet(resolver)
        host = RemoteMailHost(domain="corp.example", ip="192.0.2.1")
        internet.register_host(host)
        # Regression: a mixed-case caller used to take a spurious miss and
        # poison the cache with a second, differently-cased entry.
        assert internet.route_for("corp.example") is host
        assert internet.route_for("Corp.Example") is host
        assert internet.route_for("CORP.EXAMPLE") is host
        assert internet.route_misses == 1
        assert internet.route_hits == 2
        assert list(internet._route_cache) == ["corp.example"]

    def test_domain_of_memoises(self):
        assert domain_of("User@Corp.Example") == "corp.example"
        assert domain_of("User@Corp.Example") == "corp.example"


class TestCachedRunEqualsUncachedRun:
    def test_digest_identical_and_counters_nonzero(self, monkeypatch):
        cached = run_simulation("tiny", seed=3)
        stats = cached.cache_stats
        assert stats.dns_hits > 0
        assert stats.dnsbl_hits > 0
        assert stats.route_hits > 0
        assert 0.0 < stats.dns_hit_rate <= 1.0

        monkeypatch.setattr(Resolver, "CACHE_ENABLED", False)
        monkeypatch.setattr(DnsblService, "CACHE_ENABLED", False)
        monkeypatch.setattr(Internet, "CACHE_ENABLED", False)
        uncached = run_simulation("tiny", seed=3)
        assert uncached.cache_stats.dns_hits == 0
        assert uncached.cache_stats.route_hits == 0

        assert store_digest(cached.store) == store_digest(uncached.store)
