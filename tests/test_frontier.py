"""The FP/FN frontier experiment: accounting, aggregation, gating."""

from __future__ import annotations

from repro.analysis.frontier import (
    CLEAN,
    FrontierCell,
    FrontierResult,
    check_frontier,
    delivery_counts,
    render,
    run_frontier,
)
from repro.analysis.store import LogStore
from repro.core.spools import Category
from repro.experiments.parallel import RunSummary
from repro.experiments.runner import DeploymentInfo
from repro.core.message import MessageKind

from tests.recordfactory import dispatch, release


# -- delivery_counts ---------------------------------------------------------


def test_delivery_counts_inbox_truth():
    store = LogStore()
    # Spam delivered two ways: whitelist hit, and a spurious release.
    dispatch(store, category=Category.WHITE, kind=MessageKind.SPAM)
    released_spam = dispatch(store, category=Category.GRAY, kind=MessageKind.SPAM)
    release(store, msg_id=released_spam)
    # Spam stopped two ways: filter drop, and an unanswered challenge.
    dispatch(store, category=Category.GRAY, filter_drop="rbl",
             kind=MessageKind.SPAM)
    dispatch(store, category=Category.GRAY, kind=MessageKind.SPAM)
    # Legit lost two ways: filter false drop, and an unsolved challenge.
    dispatch(store, category=Category.GRAY, filter_drop="content",
             kind=MessageKind.LEGIT)
    dispatch(store, category=Category.GRAY, kind=MessageKind.LEGIT)
    # Legit delivered: whitelisted, and a solved challenge (release).
    dispatch(store, category=Category.WHITE, kind=MessageKind.LEGIT)
    released_legit = dispatch(store, category=Category.GRAY,
                              kind=MessageKind.LEGIT)
    release(store, msg_id=released_legit)
    # Excluded from the legit denominator: newsletters and null senders.
    dispatch(store, category=Category.WHITE, kind=MessageKind.NEWSLETTER)
    dispatch(store, category=Category.GRAY, env_from="",
             kind=MessageKind.LEGIT)

    spam_total, spam_delivered, legit_total, legit_lost = delivery_counts(store)
    assert (spam_total, spam_delivered) == (4, 2)
    assert (legit_total, legit_lost) == (4, 2)


# -- aggregation through a stubbed runner -----------------------------------


def _info():
    return DeploymentInfo(
        n_companies=0,
        n_open_relays=0,
        users_per_company={},
        horizon_days=0.0,
        min_cluster_size=1,
    )


def _store(spam_delivered, spam_stopped, legit_lost, legit_ok):
    store = LogStore()
    for _ in range(spam_delivered):
        dispatch(store, category=Category.WHITE, kind=MessageKind.SPAM)
    for _ in range(spam_stopped):
        dispatch(store, category=Category.GRAY, filter_drop="rbl",
                 kind=MessageKind.SPAM)
    for _ in range(legit_lost):
        dispatch(store, category=Category.GRAY, kind=MessageKind.LEGIT)
    for _ in range(legit_ok):
        dispatch(store, category=Category.WHITE, kind=MessageKind.LEGIT)
    return store


class _StubRunner:
    """Deterministic per-(chain, seed) synthetic outcomes, no simulation."""

    def __init__(self, fail_labels=()):
        self.fail_labels = set(fail_labels)
        self.specs_seen = []

    def run(self, specs):
        summaries = []
        for spec in specs:
            self.specs_seen.append(spec)
            if spec.label in self.fail_labels:
                summaries.append(
                    RunSummary(store=LogStore(), info=_info(),
                               seed=spec.seed, error="boom")
                )
                continue
            # cr-only loses 1 legit per run; every other chain loses 2 —
            # keeps the clean-row FP ordering check satisfiable.
            lost = 1 if spec.chain == "cr-only" else 2
            summaries.append(
                RunSummary(
                    store=_store(
                        spam_delivered=spec.seed,  # varies per seed
                        spam_stopped=10,
                        legit_lost=lost,
                        legit_ok=20,
                    ),
                    info=_info(),
                    seed=spec.seed,
                )
            )
        return summaries


CHAINS = (("cr-only", "cr-only"), ("naive-bayes", "naive-bayes"))


def test_run_frontier_aggregates_across_seeds():
    runner = _StubRunner()
    result = run_frontier(
        preset="tiny", seeds=(3, 5), scenarios=(None,), chains=CHAINS,
        runner=runner,
    )
    # 1 scenario x 2 chains x 2 seeds = 4 specs, one runner call.
    assert len(runner.specs_seen) == 4
    assert result.scenarios == (CLEAN,)
    cr = result.cell(CLEAN, "cr-only")
    # Counts summed over seeds: spam_delivered = 3 + 5.
    assert cr.spam_delivered == 8
    assert cr.spam_total == 8 + 20          # + 10 stopped per run
    assert cr.legit_lost == 2               # 1 per seed
    assert cr.legit_total == 2 + 40
    nb = result.cell(CLEAN, "naive-bayes")
    assert nb.legit_lost == 4
    assert check_frontier(result) == []
    assert "checks: all cells evaluated" in render(result)


def test_failed_runs_make_the_cell_degenerate():
    runner = _StubRunner(fail_labels={f"{CLEAN}/naive-bayes/5"})
    result = run_frontier(
        preset="tiny", seeds=(3, 5), scenarios=(None,), chains=CHAINS,
        runner=runner,
    )
    nb = result.cell(CLEAN, "naive-bayes")
    assert nb.failed_runs == 1 and not nb.evaluated
    failures = check_frontier(result)
    assert any("degenerate cell" in failure for failure in failures)
    assert "DEGENERATE:" in render(result)


def test_check_frontier_missing_cell_and_fp_ordering():
    def cell(chain, legit_lost):
        return FrontierCell(
            scenario=CLEAN, chain=chain, seeds=(3,),
            spam_total=10, spam_delivered=1,
            legit_total=100, legit_lost=legit_lost,
        )

    # naive-Bayes loses *less* legit mail than CR: ordering violated.
    inverted = FrontierResult(
        preset="tiny", seeds=(3,), scenarios=(CLEAN,),
        chains=("cr-only", "naive-bayes"),
        cells=(cell("cr-only", 5), cell("naive-bayes", 2)),
    )
    failures = check_frontier(inverted)
    assert any("FP ordering violated" in failure for failure in failures)

    # A chain column with no cell at all is reported as missing.
    sparse = FrontierResult(
        preset="tiny", seeds=(3,), scenarios=(CLEAN,),
        chains=("cr-only", "naive-bayes"),
        cells=(cell("cr-only", 1),),
    )
    failures = check_frontier(sparse)
    assert any("missing cell" in failure for failure in failures)


def test_cell_rates_and_evaluated_flag():
    cell = FrontierCell(
        scenario=CLEAN, chain="hybrid", seeds=(3,),
        spam_total=200, spam_delivered=1, legit_total=50, legit_lost=2,
    )
    assert cell.false_negative_rate == 1 / 200
    assert cell.false_positive_rate == 2 / 50
    assert cell.evaluated
    empty = FrontierCell(
        scenario=CLEAN, chain="hybrid", seeds=(3,),
        spam_total=0, spam_delivered=0, legit_total=0, legit_lost=0,
    )
    assert not empty.evaluated
    assert empty.false_negative_rate == 0.0
