"""The sharded data plane (DESIGN.md §12): digest identity, exchange
reconciliation, conservation, spill equivalence, checkpoint round-trips.

The load-bearing property is mechanical: ``shards=N`` must produce a
measurement store byte-identical (same ``store_digest``) to ``shards=1``,
across seeds, fault weather, spill modes, and checkpoint/resume. Every
test here pins some face of that equivalence.
"""

from __future__ import annotations

import hashlib

import pytest

from repro._version import __version__
from repro.experiments.parallel import RunSpec, store_digest
from repro.experiments.registry import run_all
from repro.experiments.runner import run_simulation
from repro.net.exchange import (
    ExchangeDivergence,
    ShardExchange,
    ShardMap,
    reconcile,
)
from repro.util.simtime import DAY
from repro.workload.calibration import DEFAULT_CALIBRATION


def _digest(**kwargs) -> str:
    return store_digest(run_simulation("tiny", **kwargs).store)


# -- digest identity ---------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 7, 11])
@pytest.mark.parametrize("faults", [None, "stormy"])
def test_sharded_digest_matches_unsharded(seed, faults):
    """shards=4 reproduces the single-process store byte-for-byte,
    reliable substrate and storm weather alike."""
    base = _digest(seed=seed, faults=faults)
    sharded = _digest(seed=seed, faults=faults, shards=4, shard_jobs=1)
    assert sharded == base


def test_sharded_pool_digest_matches_sequential():
    """Worker scheduling can't change the answer: the process-pool path
    merges to the same digest as the sequential in-process path."""
    sequential = _digest(seed=5, shards=2, shard_jobs=1)
    pooled = _digest(seed=5, shards=2, shard_jobs=2)
    assert pooled == sequential


@pytest.mark.parametrize("seed", [3, 11])
def test_sharded_scenario_digest_matches_unsharded(seed):
    """Scenario runs shard too: attack planning replays identically on
    every replica, only the victim's owner shard delivers, and the merged
    store still matches shards=1 byte-for-byte."""
    base = _digest(seed=seed, scenario="captcha-farm")
    sharded = _digest(seed=seed, scenario="captcha-farm", shards=4, shard_jobs=1)
    assert sharded == base


# -- the exchange ------------------------------------------------------------


def test_shard_map_partitions_every_company():
    world = run_simulation("tiny", seed=7).world
    shard_map = ShardMap.from_world(world, 3)
    owners = shard_map.owners
    assert set(owners) == {c.company_id for c in world.companies}
    assert set(owners.values()) <= {0, 1, 2}
    # Deterministic: recomputing from the same world gives the same map.
    assert ShardMap.from_world(world, 3).owners == owners


def test_exchange_manifests_reconcile_and_diverge():
    def fill(exchange, rows):
        exchange.open_epoch(0)
        for t, msg_id, owner in rows:
            exchange.record(t, msg_id, owner)
        exchange.close_epoch()

    rows = [(0.5, 1, 0), (1.5, 2, 1), (2.5, 3, 0)]
    a = ShardExchange(n_shards=2, shard_index=0)
    b = ShardExchange(n_shards=2, shard_index=1)
    fill(a, rows)
    fill(b, rows)
    merged = reconcile([a.manifests, b.manifests])
    assert merged == a.manifests
    assert a.local_rows == 2 and a.remote_rows == 1
    assert b.local_rows == 1 and b.remote_rows == 2

    # One shard seeing a different stream for any (owner, epoch) cell is
    # refused before any store merging could happen.
    c = ShardExchange(n_shards=2, shard_index=1)
    fill(c, [(0.5, 1, 0), (1.5, 99, 1), (2.5, 3, 0)])
    with pytest.raises(ExchangeDivergence):
        reconcile([a.manifests, c.manifests])


def test_sharded_result_reports_reconciled_exchange():
    result = run_simulation("tiny", seed=7, shards=2, shard_jobs=1)
    stats = result.shard_stats
    assert stats.n_shards == 2
    assert stats.exchange_rows == len(result.store.mta)
    assert len(stats.per_shard) == 2
    assert sum(p.local_rows for p in stats.per_shard) == stats.exchange_rows
    # Owners cover the whole deployment, one shard per company.
    assert len(stats.owners) == result.info.n_companies


# -- conservation across shards ---------------------------------------------


def test_audited_sharded_run_conserves():
    """Every shard enforces its own ledger; the aggregate sums to a
    conserving whole."""
    result = run_simulation("tiny", seed=7, audit=True, shards=3, shard_jobs=1)
    ledger = result.ledger_stats
    assert ledger.audit and ledger.conserved
    assert ledger.accepted == ledger.terminal_total
    assert len(ledger.per_company) == result.info.n_companies
    assert ledger.accepted == sum(s.accepted for s in ledger.per_company)
    fault = result.fault_stats
    assert fault.conserved


# -- spill ≡ in-memory -------------------------------------------------------


def test_spilled_store_digest_and_report_match_in_memory(tmp_path):
    """Streaming chunks to disk changes where bytes live, not what they
    say: digest and full rendered report are identical."""
    base = run_simulation("tiny", seed=7)
    spilled = run_simulation(
        "tiny", seed=7, spill_dir=str(tmp_path), spill_chunk_rows=256
    )
    assert spilled.memory_stats.store_spilled_bytes > 0
    assert store_digest(spilled.store) == store_digest(base.store)
    assert run_all(spilled) == run_all(base)


def test_sharded_spilled_run_matches(tmp_path):
    """Shards + spill composed: the merged store is served from lazy
    per-shard chunk views and still reproduces the plain run."""
    base = run_simulation("tiny", seed=3)
    sharded = run_simulation(
        "tiny", seed=3, shards=2, shard_jobs=1,
        spill_dir=str(tmp_path), spill_chunk_rows=256,
    )
    assert store_digest(sharded.store) == store_digest(base.store)
    assert run_all(sharded) == run_all(base)


# -- checkpoint/restore ------------------------------------------------------


def test_sharded_checkpoint_restore_roundtrip(tmp_path):
    """A sharded run snapshots per shard; resuming every shard from its
    newest snapshot reproduces the uninterrupted merged store."""
    root = tmp_path / "ckpt"
    full = run_simulation(
        "tiny", seed=7, shards=2, shard_jobs=1,
        checkpoint_every=3 * DAY, checkpoint_dir=str(root),
    )
    assert full.checkpoint_stats.written >= 2
    assert (root / "shard-0").is_dir() and (root / "shard-1").is_dir()
    resumed = run_simulation(
        resume_from=str(root), shards=2, shard_jobs=1
    )
    assert store_digest(resumed.store) == store_digest(full.store)


# -- parallel-runner integration --------------------------------------------


def test_cache_key_default_folding():
    """Specs that leave the new sharding fields at their defaults hash
    exactly as they did before the fields existed — pre-existing cache
    entries stay valid."""
    spec = RunSpec(preset="tiny", seed=3)
    legacy_canonical = repr(
        (
            __version__,
            spec.resolved_scale(),
            spec.seed,
            DEFAULT_CALIBRATION,
            None,
            [],
            None,
            False,
            None,
            None,
        )
    )
    legacy_key = hashlib.sha256(
        legacy_canonical.encode("utf-8")
    ).hexdigest()
    assert spec.cache_key() == legacy_key
    # ...while actually requesting the new machinery changes the key.
    assert RunSpec(preset="tiny", seed=3, shards=2).cache_key() != legacy_key
    assert RunSpec(preset="tiny", seed=3, spill=True).cache_key() != legacy_key
    assert (
        RunSpec(preset="tiny", seed=3, shards=2).cache_key()
        != RunSpec(preset="tiny", seed=3, shards=4).cache_key()
    )


def test_sharded_spec_summary_matches_plain(tmp_path):
    """A sharded, spilled RunSpec yields a summary digest-identical to
    the plain spec's (and is cacheable: the store is fully in memory by
    the time the spill directory is gone)."""
    from repro.experiments.parallel import ParallelRunner, RunCache

    runner = ParallelRunner(jobs=1, cache=RunCache(tmp_path / "cache"))
    plain, sharded = runner.run(
        [
            RunSpec(preset="tiny", seed=5),
            RunSpec(preset="tiny", seed=5, shards=2, spill=True),
        ]
    )
    assert not plain.failed and not sharded.failed
    assert sharded.digest == plain.digest
    assert sharded.company_configs == plain.company_configs
    # Second pass: both answered from cache.
    hits_before = runner.cache_hits
    runner.run(
        [
            RunSpec(preset="tiny", seed=5),
            RunSpec(preset="tiny", seed=5, shards=2, spill=True),
        ]
    )
    assert runner.cache_hits == hits_before + 2
