"""The declarative scenario subsystem: YAML pack loading, ``_base``
layering, spec hashing, cache-key folding, verdict evaluation, and the
CLI surface.

The pack itself is load-bearing fixture data: these tests run against
the repository's ``scenarios/`` directory as shipped, plus synthetic
packs in tmp directories (via ``REPRO_SCENARIO_DIR``) for the layering
and validation edge cases.
"""

from __future__ import annotations

import pickle
import subprocess
import sys

import pytest

from repro.analysis.verdicts import METRICS, evaluate
from repro.experiments.parallel import (
    ParallelRunner,
    RunCache,
    RunSpec,
    store_digest,
)
from repro.experiments.runner import run_simulation
from repro.scenarios import (
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.scenarios.loader import _mini_parse, scenario_dir

@pytest.fixture()
def pack_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
    return tmp_path


# -- the shipped pack --------------------------------------------------------


class TestShippedPack:
    def test_pack_has_at_least_five_scenarios(self):
        assert len(scenario_names()) >= 5

    def test_underscore_files_hidden(self):
        assert not any(n.startswith("_") for n in scenario_names())

    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_loads_hashes_and_pickles(self, name):
        spec = load_scenario(name)
        assert spec.name == name
        assert spec.attacks, "every pack scenario declares an attack"
        assert spec.verdicts, "every pack scenario declares verdicts"
        hash(spec)  # cache-key ingredient: must be hashable
        clone = pickle.loads(pickle.dumps(spec))  # ships to shard workers
        assert clone == spec

    @pytest.mark.parametrize("name", scenario_names())
    def test_build_attacks_returns_fresh_instances(self, name):
        spec = load_scenario(name)
        first, second = spec.build_attacks(), spec.build_attacks()
        assert [type(a) for a in first] == [type(a) for a in second]
        assert all(a is not b for a, b in zip(first, second))

    def test_mini_parser_matches_pyyaml_on_every_pack_file(self):
        yaml = pytest.importorskip("yaml")
        for path in sorted(scenario_dir().glob("*.yaml")):
            text = path.read_text()
            assert _mini_parse(text, str(path)) == yaml.safe_load(text), path

    def test_pack_verdict_metrics_exist(self):
        for name in scenario_names():
            for check in load_scenario(name).verdicts:
                assert check.metric in METRICS


# -- layering and validation -------------------------------------------------


def _write(pack_dir, name, text):
    (pack_dir / name).write_text(text)


class TestLayering:
    def test_base_layering_deep_merges(self, pack_dir):
        _write(
            pack_dir,
            "_shared.yaml",
            "description: base\nfaults: mild\n"
            "attacks:\n"
            "  - kind: trap-bombing\n"
            "    company_id: c01\n",
        )
        _write(
            pack_dir,
            "child.yaml",
            "_base: _shared\ndescription: child wins\n",
        )
        spec = load_scenario("child")
        assert spec.description == "child wins"  # child overrides scalar
        assert spec.faults == "mild"  # base survives where child silent
        assert spec.attacks[0].kind == "trap-bombing"

    def test_base_cycle_detected(self, pack_dir):
        _write(pack_dir, "a.yaml", "_base: b\n")
        _write(pack_dir, "b.yaml", "_base: a\n")
        with pytest.raises(ScenarioError, match="cycle"):
            load_scenario("a")

    def test_unknown_key_rejected(self, pack_dir):
        _write(pack_dir, "bad.yaml", "description: x\nattcks: []\n")
        with pytest.raises(ScenarioError, match="attcks"):
            load_scenario("bad")

    def test_unknown_attack_kind_rejected(self, pack_dir):
        _write(
            pack_dir,
            "bad.yaml",
            "attacks:\n  - kind: nope\n    company_id: c01\n",
        )
        with pytest.raises(ScenarioError, match="nope"):
            load_scenario("bad")

    def test_unknown_metric_rejected(self, pack_dir):
        _write(
            pack_dir,
            "bad.yaml",
            "verdicts:\n"
            "  - name: x\n    metric: bogus_metric\n    value: 1\n",
        )
        with pytest.raises(ScenarioError, match="bogus_metric"):
            load_scenario("bad")

    def test_unknown_filter_field_rejected(self, pack_dir):
        _write(pack_dir, "bad.yaml", "filters:\n  not_a_field: true\n")
        with pytest.raises(ScenarioError, match="not_a_field"):
            load_scenario("bad")

    def test_missing_scenario_names_known_ones(self, pack_dir):
        _write(pack_dir, "only.yaml", "description: x\n")
        with pytest.raises(ScenarioError, match="only"):
            load_scenario("ghost")

    def test_resolve_scenario_type_error(self):
        with pytest.raises(TypeError):
            resolve_scenario(42)
        assert resolve_scenario(None) is None
        spec = ScenarioSpec(name="inline")
        assert resolve_scenario(spec) is spec


# -- run integration ---------------------------------------------------------


class TestRunIntegration:
    def test_scenario_run_is_deterministic(self):
        spec = load_scenario("whitelist-spoofing")
        a = run_simulation("tiny", seed=11, scenario=spec)
        b = run_simulation("tiny", seed=11, scenario="whitelist-spoofing")
        assert store_digest(a.store) == store_digest(b.store)
        va, vb = evaluate(a, spec), evaluate(b, spec)
        assert va == vb
        assert all(c.error is None for c in va.checks)

    def test_scenario_declared_faults_apply(self):
        # flash-crowd carries faults: mild in YAML.
        result = run_simulation("tiny", seed=11, scenario="flash-crowd")
        base = run_simulation("tiny", seed=11, faults="mild")
        spec = result.scenario
        assert spec is not None and spec.faults == "mild"
        # Same weather preset: non-victim companies see fault effects too,
        # so the run differs from the no-fault baseline in bounce traffic.
        assert store_digest(result.store) != store_digest(base.store)

    def test_explicit_faults_override_scenario(self):
        stormy = run_simulation(
            "tiny", seed=11, scenario="flash-crowd", faults="stormy"
        )
        declared = run_simulation("tiny", seed=11, scenario="flash-crowd")
        assert store_digest(stormy.store) != store_digest(declared.store)

    def test_scenario_free_result_carries_no_scenario(self):
        assert run_simulation("tiny", seed=11).scenario is None


# -- caching -----------------------------------------------------------------


class TestScenarioCaching:
    def test_scenario_folds_into_cache_key(self, tmp_path):
        plain = RunSpec("tiny", seed=3)
        scenario = RunSpec("tiny", seed=3, scenario="captcha-farm")
        assert plain.cache_key() != scenario.cache_key()
        cache = RunCache(tmp_path / "runs")
        assert cache.path_for(plain.cache_key()) != cache.path_for(
            scenario.cache_key()
        )

    def test_scenario_key_tracks_spec_content(self):
        by_name = RunSpec("tiny", seed=3, scenario="captcha-farm")
        by_spec = RunSpec(
            "tiny", seed=3, scenario=load_scenario("captcha-farm")
        )
        assert by_name.cache_key() == by_spec.cache_key()

    def test_cached_scenario_run_matches_uncached(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        spec = RunSpec("tiny", seed=3, scenario="trap-bombing")
        first = ParallelRunner(jobs=1, cache=cache)
        (cold,) = first.run([spec])
        assert (first.cache_hits, first.runs_executed) == (0, 1)

        second = ParallelRunner(jobs=1, cache=cache)
        (warm,) = second.run([spec])
        assert (second.cache_hits, second.runs_executed) == (1, 0)
        assert warm.digest == cold.digest

        uncached = run_simulation("tiny", seed=3, scenario="trap-bombing")
        assert cold.digest == store_digest(uncached.store)


# -- CLI ---------------------------------------------------------------------


def _cli(*argv):
    import os

    root = scenario_dir().parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    env.pop("REPRO_SCENARIO_DIR", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        cwd=str(root),
        env=env,
    )


class TestCli:
    def test_scenarios_command_lists_pack(self):
        proc = _cli("scenarios")
        assert proc.returncode == 0
        for name in scenario_names():
            assert name in proc.stdout

    def test_run_with_scenario_prints_verdict(self):
        proc = _cli(
            "run", "--scenario", "whitelist-spoofing", "--seed", "7"
        )
        assert proc.returncode == 0
        assert "Scenario verdict — whitelist-spoofing" in proc.stdout
        assert "VERDICT:" in proc.stdout

    def test_unknown_scenario_fails_cleanly(self):
        proc = _cli("run", "--scenario", "no-such-scenario")
        assert proc.returncode == 2
        assert "scenario error" in proc.stderr
