"""Unit tests for the runner and the experiment registry."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment, run_simulation
from repro.experiments.registry import CANONICAL_ORDER
from repro.workload.scale import ScaleConfig, get_preset, preset_names


class TestScalePresets:
    def test_known_presets(self):
        assert set(preset_names()) >= {"tiny", "small", "bench", "paper"}

    def test_unknown_preset_raises_with_hint(self):
        with pytest.raises(KeyError) as excinfo:
            get_preset("gigantic")
        assert "tiny" in str(excinfo.value)

    def test_bench_matches_paper_deployment_shape(self):
        bench = get_preset("bench")
        assert bench.n_companies == 47
        assert bench.open_relays == 13

    def test_presets_ordered_by_size(self):
        tiny, small, bench = (
            get_preset(n) for n in ("tiny", "small", "bench")
        )
        assert tiny.total_users < small.total_users < bench.total_users


class TestRunner:
    def test_accepts_scale_config_object(self):
        scale = ScaleConfig(
            name="micro",
            n_companies=2,
            open_relays=1,
            total_users=12,
            n_days=3,
            volume_scale=0.3,
            ext_domains=20,
            dead_domains=10,
            unresolvable_domains=8,
            trap_domains_per_service=1,
            traps_per_domain=4,
            innocent_pool_size=50,
            dnsbl_threshold_scale=0.5,
            min_cluster_size=3,
            campaign_rate_scale=0.3,
        )
        result = run_simulation(scale, seed=3)
        assert result.info.n_companies == 2
        assert len(result.store.mta) > 0

    def test_result_fields(self, tiny_result):
        assert tiny_result.seed == 7
        assert tiny_result.wall_seconds > 0
        assert tiny_result.info.horizon_days == 10.0
        assert len(tiny_result.installations) == 6

    def test_monitor_probed_all_server_ips(self, tiny_result):
        probed = {p.ip for p in tiny_result.store.probes}
        expected = {
            inst.challenge_mta.ip
            for inst in tiny_result.installations.values()
        } | {
            inst.user_mta.ip for inst in tiny_result.installations.values()
        }
        assert probed == expected

    def test_whitelists_seeded_before_run(self, tiny_result):
        # Seeded entries exist but generated no change records.
        from repro.core.whitelist import WhitelistSource

        sources = {c.source for c in tiny_result.store.whitelist_changes}
        assert WhitelistSource.SEED not in sources


class TestRegistry:
    def test_every_design_experiment_registered(self):
        expected = {
            "fig1", "tab_drop", "fig2", "fig3", "tab1", "tab1_daily",
            "fig4a", "fig4b", "sec31", "sec32", "sec33", "fig5", "fig6",
            "sec41", "fig7", "fig8", "sec42", "fig9", "sec43", "fig10",
            "fig11", "sec51", "fig12", "sec6", "faults", "audit",
            "recovery", "verdicts", "frontier",
        }
        assert set(EXPERIMENTS) == expected

    def test_canonical_order_ids_exist(self):
        assert set(CANONICAL_ORDER) <= set(EXPERIMENTS)

    def test_unknown_experiment_raises(self, tiny_result):
        with pytest.raises(KeyError):
            run_experiment("fig99", tiny_result)

    # frontier is excluded: its renderer is a cross-run sweep (120 tiny
    # simulations), far too heavy for tier-1 — tests/test_frontier.py
    # covers its rendering on stubbed runs, CI's frontier-smoke the rest.
    @pytest.mark.parametrize(
        "exp_id", sorted(set(EXPERIMENTS) - {"frontier"})
    )
    def test_each_experiment_renders(self, exp_id, tiny_result):
        out = run_experiment(exp_id, tiny_result)
        assert isinstance(out, str)
        assert (
            "measured" in out
            or "Fig" in out
            or "Sec" in out
            or "fault" in out
            or "conservation" in out
            or "crash" in out
            or "scenario" in out
        )
