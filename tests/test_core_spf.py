"""Unit + property tests for the SPF evaluator (RFC 4408 subset)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.filters.spf import (
    SpfEvaluator,
    SpfFilter,
    SpfResult,
    _ip4_matches,
    _ip_to_int,
)
from repro.core.message import make_message
from repro.net.dns import DnsRegistry, Resolver


def _evaluator(**policies):
    registry = DnsRegistry()
    for domain, policy in policies.items():
        domain = domain.replace("_", "-") + ".example"
        registry.add_record(domain, "TXT", policy)
    return SpfEvaluator(Resolver(registry))


class TestIpParsing:
    def test_valid_ip(self):
        assert _ip_to_int("1.2.3.4") == (1 << 24) + (2 << 16) + (3 << 8) + 4

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "256.1.1.1", "", "1..2.3"]
    )
    def test_invalid_ips(self, bad):
        assert _ip_to_int(bad) is None

    def test_exact_match(self):
        assert _ip4_matches("1.2.3.4", "1.2.3.4")
        assert not _ip4_matches("1.2.3.4", "1.2.3.5")

    def test_prefix_match(self):
        assert _ip4_matches("10.0.0.0/8", "10.200.1.1")
        assert not _ip4_matches("10.0.0.0/8", "11.0.0.1")

    def test_slash24(self):
        assert _ip4_matches("192.0.2.0/24", "192.0.2.200")
        assert not _ip4_matches("192.0.2.0/24", "192.0.3.1")

    def test_slash_zero_matches_everything(self):
        assert _ip4_matches("0.0.0.0/0", "8.8.8.8")

    @pytest.mark.parametrize("bad", ["1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x"])
    def test_invalid_prefix_never_matches(self, bad):
        assert not _ip4_matches(bad, "1.2.3.4")


class TestEvaluation:
    def test_no_policy_is_none(self):
        evaluator = _evaluator()
        assert evaluator.evaluate("ghost.example", "1.1.1.1") is SpfResult.NONE

    def test_matching_ip_passes(self):
        evaluator = _evaluator(corp="v=spf1 ip4:9.9.9.9 -all")
        assert evaluator.evaluate("corp.example", "9.9.9.9") is SpfResult.PASS

    def test_non_matching_ip_hard_fails(self):
        evaluator = _evaluator(corp="v=spf1 ip4:9.9.9.9 -all")
        assert evaluator.evaluate("corp.example", "8.8.8.8") is SpfResult.FAIL

    def test_softfail_qualifier(self):
        evaluator = _evaluator(corp="v=spf1 ip4:9.9.9.9 ~all")
        assert (
            evaluator.evaluate("corp.example", "8.8.8.8") is SpfResult.SOFTFAIL
        )

    def test_neutral_qualifier(self):
        evaluator = _evaluator(corp="v=spf1 ip4:9.9.9.9 ?all")
        assert (
            evaluator.evaluate("corp.example", "8.8.8.8") is SpfResult.NEUTRAL
        )

    def test_spammer_plus_all_passes_anything(self):
        evaluator = _evaluator(bulk="v=spf1 +all")
        assert evaluator.evaluate("bulk.example", "6.6.6.6") is SpfResult.PASS

    def test_policy_without_all_defaults_neutral(self):
        evaluator = _evaluator(corp="v=spf1 ip4:9.9.9.9")
        assert (
            evaluator.evaluate("corp.example", "8.8.8.8") is SpfResult.NEUTRAL
        )

    def test_multiple_ip4_mechanisms(self):
        evaluator = _evaluator(corp="v=spf1 ip4:1.1.1.1 ip4:2.2.2.2 -all")
        assert evaluator.evaluate("corp.example", "2.2.2.2") is SpfResult.PASS

    def test_first_match_wins(self):
        evaluator = _evaluator(corp="v=spf1 -ip4:1.1.1.1 ip4:1.1.1.1 -all")
        assert evaluator.evaluate("corp.example", "1.1.1.1") is SpfResult.FAIL

    def test_evaluate_message_uses_sender_domain(self):
        evaluator = _evaluator(corp="v=spf1 ip4:9.9.9.9 -all")
        message = make_message(
            0.0, "anyone@corp.example", "u@c.com", client_ip="9.9.9.9"
        )
        assert evaluator.evaluate_message(message) is SpfResult.PASS

    def test_evaluate_message_malformed_sender(self):
        evaluator = _evaluator()
        message = make_message(0.0, "no-at-sign", "u@c.com")
        assert evaluator.evaluate_message(message) is SpfResult.NONE


class TestSpfFilter:
    def test_drops_only_hard_fail(self):
        evaluator = _evaluator(
            strict="v=spf1 ip4:9.9.9.9 -all", soft="v=spf1 ip4:9.9.9.9 ~all"
        )
        spf_filter = SpfFilter(evaluator)
        failing = make_message(
            0.0, "a@strict.example", "u@c.com", client_ip="1.1.1.1"
        )
        softfailing = make_message(
            0.0, "a@soft.example", "u@c.com", client_ip="1.1.1.1"
        )
        passing = make_message(
            0.0, "a@strict.example", "u@c.com", client_ip="9.9.9.9"
        )
        assert spf_filter.should_drop(failing, 0.0)
        assert not spf_filter.should_drop(softfailing, 0.0)
        assert not spf_filter.should_drop(passing, 0.0)


class TestProperties:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 32),
    )
    def test_prefix_match_agrees_with_mask_arithmetic(self, net, client, prefix):
        def int_to_ip(value):
            return ".".join(
                str((value >> s) & 0xFF) for s in (24, 16, 8, 0)
            )

        mask = ((1 << prefix) - 1) << (32 - prefix) if prefix else 0
        expected = (net & mask) == (client & mask)
        assert (
            _ip4_matches(f"{int_to_ip(net)}/{prefix}", int_to_ip(client))
            == expected
        )
