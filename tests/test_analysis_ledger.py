"""Tests for the lifecycle-audit report (``analysis/ledger.py``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ledger
from repro.analysis.store import LogStore


class TestStoreFlows:
    def test_flows_cover_every_company(self, tiny_result):
        flows = ledger.compute_store_flows(tiny_result.store)
        assert {f.company_id for f in flows} == set(
            tiny_result.installations.keys()
        )

    def test_flows_partition_accepted(self, tiny_result):
        # white + black + filter + quarantined == accepted, per company —
        # the store-side mirror of the ledger's partition equation.
        for flow in ledger.compute_store_flows(tiny_result.store):
            assert (
                flow.white
                + flow.black
                + flow.filter_dropped
                + flow.quarantined
                == flow.accepted
            )

    def test_flows_agree_with_ledger(self, tiny_result):
        stats = tiny_result.ledger_stats
        flows = ledger.compute_store_flows(tiny_result.store)
        assert sum(f.accepted for f in flows) == stats.accepted
        assert sum(f.white for f in flows) == stats.delivered
        assert sum(f.black for f in flows) == stats.black_dropped
        assert sum(f.filter_dropped for f in flows) == stats.filter_dropped
        assert sum(f.quarantined for f in flows) == stats.quarantined_total
        assert sum(f.released for f in flows) == stats.released
        assert sum(f.expired for f in flows) == stats.expired


class TestRender:
    def test_full_report(self, tiny_result):
        out = ledger.render(tiny_result.store, tiny_result.ledger_stats)
        assert "Terminal-state mix" in out
        assert "lifecycle conservation: CONSERVED" in out
        assert "Per-company conservation verdicts" in out
        assert "Ledger vs. measurement store" in out
        # Every reconciliation row agrees on a healthy run.
        assert "NO" not in out.replace("CONSERVED", "")

    def test_store_only_mode(self, tiny_store):
        out = ledger.render(tiny_store, None)
        assert "runtime ledger verdict unavailable" in out
        assert "Per-company message flow" in out
        assert "conservation: CONSERVED" not in out

    def test_render_result_tolerates_loaded_runs(self, tiny_store):
        # Loaded/summarised runs carry a store but no ledger_stats
        # attribute at all; render_result must not AttributeError.
        @dataclass
        class LoadedRun:
            store: LogStore

        out = ledger.render_result(LoadedRun(store=tiny_store))
        assert "runtime ledger verdict unavailable" in out

    def test_render_result_full(self, tiny_result):
        out = ledger.render_result(tiny_result)
        assert "lifecycle conservation: CONSERVED" in out

    def test_stranded_table_absent_on_clean_run(self, tiny_result):
        assert ledger.build_stranded_table(tiny_result.ledger_stats) is None
