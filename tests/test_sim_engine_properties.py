"""Property-style tests for the discrete-event engine.

Seeded stdlib ``random`` drives randomized schedules — including
callbacks that schedule further events and cancellations mid-run — and
checks the invariants every simulation model relies on:

* events fire in nondecreasing time order, ties broken FIFO by ``seq``;
* scheduling into the past or with a negative delay raises
  :class:`SimulationError`;
* ``events_processed`` counts exactly the callbacks that fired.
"""

import random

import pytest

from repro.sim.engine import SimulationError, Simulator

SEEDS = range(8)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_schedule_fires_in_nondecreasing_time_order(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    for _ in range(300):
        # Coarse-grained times so equal timestamps occur often.
        at = float(rng.randrange(0, 40))
        sim.schedule(at, lambda at=at: fired.append(at))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == 300


@pytest.mark.parametrize("seed", SEEDS)
def test_equal_times_break_ties_fifo_by_seq(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    events = []
    for _ in range(200):
        at = float(rng.randrange(0, 10))  # heavy collisions by design
        event = sim.schedule(at, lambda: None)
        event.action = lambda e=event: fired.append((e.time, e.seq))
        events.append(event)
    sim.run()
    # Global order is exactly sort-by-(time, seq): among same-time events
    # the earlier-scheduled (lower seq) one always fires first.
    assert fired == sorted(fired)
    assert len(fired) == len(events)


@pytest.mark.parametrize("seed", SEEDS)
def test_callbacks_scheduling_more_work_stay_time_ordered(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []

    def make_action(depth):
        def action():
            fired.append(sim.now)
            if depth > 0 and rng.random() < 0.7:
                sim.schedule_after(rng.uniform(0.0, 5.0), make_action(depth - 1))

        return action

    for _ in range(50):
        sim.schedule(rng.uniform(0.0, 20.0), make_action(3))
    sim.run()
    assert fired == sorted(fired)
    assert sim.events_processed == len(fired)
    assert sim.pending == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_scheduling_into_the_past_raises(seed):
    rng = random.Random(seed)
    sim = Simulator()
    sim.schedule(rng.uniform(1.0, 10.0), lambda: None)
    sim.run()
    assert sim.now > 0.0
    with pytest.raises(SimulationError):
        sim.schedule(sim.now - rng.uniform(0.001, sim.now), lambda: None)


@pytest.mark.parametrize("seed", SEEDS)
def test_negative_delay_raises(seed):
    rng = random.Random(seed)
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-rng.uniform(0.001, 100.0), lambda: None)


@pytest.mark.parametrize("seed", SEEDS)
def test_events_processed_counts_fired_callbacks_only(seed):
    """Cancelled events are skipped: they neither fire nor count."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    events = []
    for index in range(200):
        at = rng.uniform(0.0, 50.0)
        events.append(sim.schedule(at, lambda i=index: fired.append(i)))
    cancelled = rng.sample(events, k=60)
    for event in cancelled:
        event.cancel()
    sim.run()
    assert len(fired) == 200 - 60
    assert sim.events_processed == len(fired)
    # Events are scheduled one per index, so seq == callback index here.
    assert set(fired).isdisjoint({e.seq for e in cancelled})


@pytest.mark.parametrize("seed", SEEDS)
def test_run_until_is_half_open_and_advances_clock(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    boundary = 10.0
    times = sorted(rng.uniform(0.0, 20.0) for _ in range(100))
    times.append(boundary)  # an event exactly at the boundary
    for at in times:
        sim.schedule(at, lambda at=at: fired.append(at))
    sim.run(until=boundary)
    assert all(at < boundary for at in fired)
    assert sim.now == boundary
    before = len(fired)
    sim.run()
    assert len(fired) == len(times)
    assert fired[before:] == sorted(fired[before:])
    assert all(at >= boundary for at in fired[before:])


# -- batched scheduling (the PR 6 data plane) ---------------------------------


def _mixed_operations(rng):
    """A random scheduling script mixing batches and single events.

    Returns ops of the form ``("single", t, tag)`` or ``("batch", rows)``;
    times are coarse-grained so same-timestamp collisions (within a batch,
    between batches, and between batch and single events) are common.
    """
    ops = []
    tag = 0
    for _ in range(rng.randrange(3, 8)):
        if rng.random() < 0.5:
            ops.append(("single", float(rng.randrange(0, 15)), tag))
            tag += 1
        else:
            rows = sorted(
                (float(rng.randrange(0, 15)), tag + i)
                for i in range(rng.randrange(1, 40))
            )
            tag += len(rows)
            ops.append(("batch", rows))
    return ops


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_fires_identically_to_individual_scheduling(seed):
    """schedule_batch is a pure packing: a batch must interleave with the
    rest of the queue exactly as the same items scheduled one by one (the
    same seqs are allocated, so the global (time, seq) order is equal)."""
    ops = _mixed_operations(random.Random(seed))

    def execute(batched):
        sim = Simulator()
        fired = []
        for op in ops:
            if op[0] == "single":
                _, at, tag = op
                sim.schedule(at, lambda t=tag: fired.append((sim.now, t)))
            elif batched:
                rows = op[1]
                times = [t for t, _ in rows]
                actions = [lambda t: fired.append((sim.now, t))] * len(rows)
                args = [tag for _, tag in rows]
                sim.schedule_batch(times, actions, args)
            else:
                for at, tag in op[1]:
                    sim.schedule(
                        at, lambda t=tag: fired.append((sim.now, t))
                    )
        sim.run()
        return fired, sim.events_processed

    batched_fired, batched_count = execute(batched=True)
    plain_fired, plain_count = execute(batched=False)
    assert batched_fired == plain_fired
    assert batched_count == plain_count


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_interleaves_with_events_scheduled_mid_run(seed):
    """Callbacks fired from batch items may schedule new single events;
    those must interleave into the remaining batch in global time order."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []

    def batch_action(tag):
        fired.append(("batch", sim.now, tag))
        if rng.random() < 0.5:
            extra = sim.now + rng.uniform(0.0, 6.0)
            sim.schedule(extra, lambda: fired.append(("late", sim.now)))

    times = sorted(float(rng.randrange(0, 10)) for _ in range(60))
    sim.schedule_batch(times, [batch_action] * 60, list(range(60)))
    sim.run()
    stamps = [entry[1] for entry in fired]
    assert stamps == sorted(stamps)
    assert sim.pending == 0
    assert sim.events_processed == len(fired)


@pytest.mark.parametrize("seed", SEEDS)
def test_run_until_pauses_and_resumes_mid_batch(seed):
    """run(until=...) may stop with a batch partially consumed; resuming
    must fire the remainder (and nothing twice)."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    times = sorted(float(rng.randrange(0, 20)) for _ in range(80))
    sim.schedule_batch(
        times, [lambda tag: fired.append(tag)] * 80, list(range(80))
    )
    boundary = 10.0
    sim.run(until=boundary)
    assert all(times[tag] < boundary for tag in fired)
    assert sim.pending == 80 - len(fired)
    sim.run()
    assert sorted(fired) == list(range(80))
    assert sim.pending == 0


@pytest.mark.parametrize(
    "preset,seed", [("tiny", 3), ("tiny", 7), ("small", 11)]
)
def test_full_simulation_digest_batched_vs_unbatched(preset, seed):
    """End-to-end oracle for the whole batched data plane: columnar
    generation + schedule_batch delivery must leave a store byte-identical
    to per-message scheduling (same draws, ids, and tie-breaks)."""
    from repro.experiments import run_simulation
    from repro.experiments.parallel import store_digest

    batched = run_simulation(preset, seed=seed, batch_delivery=True)
    unbatched = run_simulation(preset, seed=seed, batch_delivery=False)
    assert store_digest(batched.store) == store_digest(unbatched.store)
