"""Property-style tests for the discrete-event engine.

Seeded stdlib ``random`` drives randomized schedules — including
callbacks that schedule further events and cancellations mid-run — and
checks the invariants every simulation model relies on:

* events fire in nondecreasing time order, ties broken FIFO by ``seq``;
* scheduling into the past or with a negative delay raises
  :class:`SimulationError`;
* ``events_processed`` counts exactly the callbacks that fired.
"""

import random

import pytest

from repro.sim.engine import SimulationError, Simulator

SEEDS = range(8)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_schedule_fires_in_nondecreasing_time_order(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    for _ in range(300):
        # Coarse-grained times so equal timestamps occur often.
        at = float(rng.randrange(0, 40))
        sim.schedule(at, lambda at=at: fired.append(at))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == 300


@pytest.mark.parametrize("seed", SEEDS)
def test_equal_times_break_ties_fifo_by_seq(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    events = []
    for _ in range(200):
        at = float(rng.randrange(0, 10))  # heavy collisions by design
        event = sim.schedule(at, lambda: None)
        event.action = lambda e=event: fired.append((e.time, e.seq))
        events.append(event)
    sim.run()
    # Global order is exactly sort-by-(time, seq): among same-time events
    # the earlier-scheduled (lower seq) one always fires first.
    assert fired == sorted(fired)
    assert len(fired) == len(events)


@pytest.mark.parametrize("seed", SEEDS)
def test_callbacks_scheduling_more_work_stay_time_ordered(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []

    def make_action(depth):
        def action():
            fired.append(sim.now)
            if depth > 0 and rng.random() < 0.7:
                sim.schedule_after(rng.uniform(0.0, 5.0), make_action(depth - 1))

        return action

    for _ in range(50):
        sim.schedule(rng.uniform(0.0, 20.0), make_action(3))
    sim.run()
    assert fired == sorted(fired)
    assert sim.events_processed == len(fired)
    assert sim.pending == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_scheduling_into_the_past_raises(seed):
    rng = random.Random(seed)
    sim = Simulator()
    sim.schedule(rng.uniform(1.0, 10.0), lambda: None)
    sim.run()
    assert sim.now > 0.0
    with pytest.raises(SimulationError):
        sim.schedule(sim.now - rng.uniform(0.001, sim.now), lambda: None)


@pytest.mark.parametrize("seed", SEEDS)
def test_negative_delay_raises(seed):
    rng = random.Random(seed)
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-rng.uniform(0.001, 100.0), lambda: None)


@pytest.mark.parametrize("seed", SEEDS)
def test_events_processed_counts_fired_callbacks_only(seed):
    """Cancelled events are skipped: they neither fire nor count."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    events = []
    for index in range(200):
        at = rng.uniform(0.0, 50.0)
        events.append(sim.schedule(at, lambda i=index: fired.append(i)))
    cancelled = rng.sample(events, k=60)
    for event in cancelled:
        event.cancel()
    sim.run()
    assert len(fired) == 200 - 60
    assert sim.events_processed == len(fired)
    # Events are scheduled one per index, so seq == callback index here.
    assert set(fired).isdisjoint({e.seq for e in cancelled})


@pytest.mark.parametrize("seed", SEEDS)
def test_run_until_is_half_open_and_advances_clock(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    boundary = 10.0
    times = sorted(rng.uniform(0.0, 20.0) for _ in range(100))
    times.append(boundary)  # an event exactly at the boundary
    for at in times:
        sim.schedule(at, lambda at=at: fired.append(at))
    sim.run(until=boundary)
    assert all(at < boundary for at in fired)
    assert sim.now == boundary
    before = len(fired)
    sim.run()
    assert len(fired) == len(times)
    assert fired[before:] == sorted(fired[before:])
    assert all(at >= boundary for at in fired[before:])
