"""WAL framing and crash-edge tests (the satellite of DESIGN.md §15).

The bottom half exercises the raw frame scanner: torn tails at every
byte offset, final-frame CRC damage (legal: truncated), mid-log CRC
damage (illegal: raises). The top half replays damaged logs through a
full :class:`LiveCrService` and asserts the *ledger reconciliation*,
because "the WAL parses" is a much weaker claim than "the engine that
re-drove it conserves every message".
"""

from __future__ import annotations

import asyncio
import struct
import zlib

import pytest

from repro.serve.service import LiveCrService
from repro.serve.wal import (
    MAX_PAYLOAD_BYTES,
    WalCorruption,
    WriteAheadLog,
    scan_payloads,
)
from tests.serve_harness import live_stack, pick_targets


def _write_records(path, records):
    wal = WriteAheadLog(str(path))
    wal.open()
    for record in records:
        wal.append(record)
    wal.flush()
    wal.close()


def _frame(record_bytes: bytes) -> bytes:
    return (
        struct.pack("<I", len(record_bytes))
        + record_bytes
        + struct.pack("<I", zlib.crc32(record_bytes))
    )


class TestFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal"
        records = [{"i": i, "payload": "x" * i} for i in range(20)]
        _write_records(path, records)
        read_back, torn = scan_payloads(str(path))
        assert read_back == records
        assert torn is False

    def test_sequence_numbers_continue_across_reopen(self, tmp_path):
        path = tmp_path / "wal"
        wal = WriteAheadLog(str(path))
        wal.open()
        assert wal.append({"i": 1}) == 1
        assert wal.append({"i": 2}) == 2
        wal.close()
        wal = WriteAheadLog(str(path))
        assert len(wal.open()) == 2
        assert wal.append({"i": 3}) == 3
        wal.close()

    def test_missing_file_is_empty_not_error(self, tmp_path):
        records, torn = scan_payloads(str(tmp_path / "nope"))
        assert records == [] and torn is False

    @pytest.mark.parametrize("cut", [1, 2, 3, 4, 5, 7, 8, 11])
    def test_torn_tail_truncated_at_any_offset(self, tmp_path, cut):
        """Chop *cut* bytes off the final frame: every prefix length must
        recover exactly the complete records and repair the file."""
        path = tmp_path / "wal"
        records = [{"i": i} for i in range(5)]
        _write_records(path, records)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) - cut])

        wal = WriteAheadLog(str(path))
        recovered = wal.open()
        assert recovered == records[:4]
        assert wal.torn_tail_bytes > 0
        assert wal.appended_seq == 4
        # The torn bytes are gone: appends land where the tail was.
        wal.append({"i": "new"})
        wal.flush()
        wal.close()
        read_back, torn = scan_payloads(str(path))
        assert read_back == records[:4] + [{"i": "new"}]
        assert torn is False

    def test_final_frame_crc_damage_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal"
        _write_records(path, [{"i": 0}, {"i": 1}])
        data = bytearray(path.read_bytes())
        data[-6] ^= 0xFF  # flip a bit inside the last frame's crc zone
        path.write_bytes(bytes(data))
        wal = WriteAheadLog(str(path))
        assert wal.open() == [{"i": 0}]
        assert wal.torn_tail_bytes > 0
        wal.close()

    def test_mid_log_crc_damage_raises(self, tmp_path):
        path = tmp_path / "wal"
        first = b'{"i": 0}'
        second = b'{"i": 1}'
        damaged = bytearray(_frame(first))
        damaged[5] ^= 0xFF  # corrupt the first frame's payload
        path.write_bytes(bytes(damaged) + _frame(second))
        with pytest.raises(WalCorruption):
            scan_payloads(str(path))
        with pytest.raises(WalCorruption):
            WriteAheadLog(str(path)).open()

    def test_garbage_length_prefix_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal"
        _write_records(path, [{"i": 0}])
        with open(path, "ab") as fh:
            fh.write(struct.pack("<I", MAX_PAYLOAD_BYTES + 1) + b"junk")
        wal = WriteAheadLog(str(path))
        assert wal.open() == [{"i": 0}]
        assert wal.torn_tail_bytes == 8
        wal.close()

    def test_flush_is_idempotent_and_monotonic(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.open()
        wal.append({"i": 0})
        assert wal.flush() == 1
        assert wal.flush() == 1  # nothing new: no second fsync needed
        wal.append({"i": 1})
        wal.append({"i": 2})
        assert wal.flush() == 3  # one flush covers the whole batch
        wal.close()


def _drive_service(tmp_path, n_messages, batch_max=8):
    """Accept *n_messages* through a live stack; returns (wal_path, acked)."""

    async def scenario():
        async with live_stack(tmp_path, batch_max=batch_max) as (service, smtp, web):
            from tests.serve_harness import ehlo_client

            sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            acked = 0
            for i in range(n_messages):
                code = await client.send_message(
                    sender, users[i % len(users)], subject=f"SPAM: blast {i}"
                )
                if code == 250:
                    acked += 1
            await client.quit()
            return acked, service.wal.path

    return asyncio.run(scenario())


def _replay(wal_path) -> dict:
    """Boot a fresh service over *wal_path* and return its recovery
    reconciliation (the service is never started: replay only)."""
    service = LiveCrService(wal_path=str(wal_path))
    service.recover()
    report = service.last_reconciliation
    service.wal.close()
    return report


class TestReplayViaLedger:
    def test_replay_idempotence_twice_equals_once(self, tmp_path):
        """Replaying the same WAL in two fresh processes reconciles both
        times with identical ledger totals — replay has no side effects
        on the log and is deterministic."""
        acked, wal_path = _drive_service(tmp_path, 12)
        first = _replay(wal_path)
        second = _replay(wal_path)
        assert first["reconciled"] and second["reconciled"]
        assert first["accepted"] == second["accepted"] == acked
        assert first["per_company"] == second["per_company"]

    def test_torn_tail_replay_reconciles(self, tmp_path):
        """Cut the final record mid-frame (what kill -9 during a batch
        write leaves behind): replay drops exactly that record and the
        ledger still conserves every complete one."""
        acked, wal_path = _drive_service(tmp_path, 10)
        whole_records, _ = scan_payloads(str(wal_path))
        with open(wal_path, "ab") as fh:
            # a record the crash cut off: header + half a payload
            fh.write(struct.pack("<I", 64) + b'{"kind":"mail","mail_')
        report = _replay(wal_path)
        assert report["reconciled"]
        assert report["torn_tail_bytes"] > 0
        assert report["wal_records"] == len(whole_records)
        assert report["accepted"] == acked

    def test_fsync_batch_boundary_kill(self, tmp_path):
        """Truncate the WAL to each frame boundary of the final group
        commit — the states a kill lands in when it strikes between
        append and fsync. Every prefix must replay to a reconciled
        ledger with exactly the surviving records accepted."""
        acked, wal_path = _drive_service(tmp_path, 9, batch_max=3)
        assert acked == 9
        data = open(wal_path, "rb").read()
        all_records, _ = scan_payloads(str(wal_path))
        # boundaries[i] = byte offset just past frame i (so keeping
        # data[:boundaries[i]] keeps i+1 whole records).
        boundaries = []
        offset = 0
        while offset < len(data):
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4 + length + 4
            boundaries.append(offset)
        assert len(boundaries) == 9
        for kept, boundary in list(enumerate(boundaries, start=1))[-4:]:
            trial = tmp_path / f"wal.cut{kept}"
            trial.write_bytes(data[:boundary])
            report = _replay(trial)
            assert report["reconciled"], report
            assert report["wal_records"] == kept
            assert report["accepted"] <= kept
            survivors, torn = scan_payloads(str(trial))
            assert not torn
            assert survivors == all_records[:kept]

    def test_acked_messages_survive_simulated_crash(self, tmp_path):
        """The headline invariant, in-process: everything 250-acked is in
        the WAL on disk at all times (we never reply before fsync), so a
        copy of the file taken at *any* moment replays to >= acked."""
        acked, wal_path = _drive_service(tmp_path, 15)
        records, torn = scan_payloads(str(wal_path))
        assert not torn
        assert len(records) >= acked
        report = _replay(wal_path)
        assert report["reconciled"]
        assert report["accepted"] >= acked
