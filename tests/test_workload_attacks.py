"""Tests for the adversarial scenarios (§6 / Limitations extensions)."""

import pytest

from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.experiments import run_simulation
from repro.net.smtp import BounceReason
from repro.util.simtime import DAY
from repro.workload.attacks import TrapBombingAttack, WhitelistSpoofingAttack

VICTIM = "c01"


@pytest.fixture(scope="module")
def baseline():
    return run_simulation("tiny", seed=17)


@pytest.fixture(scope="module")
def bombed():
    return run_simulation(
        "tiny",
        seed=17,
        scenarios=[
            TrapBombingAttack(
                company_id=VICTIM,
                messages_per_day=150,
                start_day=1,
                duration_days=5,
            )
        ],
    )


@pytest.fixture(scope="module")
def spoofed():
    return run_simulation(
        "tiny",
        seed=17,
        scenarios=[
            WhitelistSpoofingAttack(
                company_id=VICTIM,
                messages_per_day=100,
                start_day=1,
                duration_days=5,
                guess_prob=0.6,
            )
        ],
    )


def _listed_days(result, ip):
    return len(
        {
            int(p.t // DAY)
            for p in result.store.probes
            if p.ip == ip and p.listed
        }
    )


class TestTrapBombing:
    def test_attack_messages_reach_the_engine(self, bombed):
        records = [
            r
            for r in bombed.store.dispatch
            if r.campaign_id == "attack-trapbomb"
        ]
        assert len(records) > 300
        assert all(r.company_id == VICTIM for r in records)

    def test_attack_triggers_challenges(self, bombed):
        attacked = {
            r.challenge_id
            for r in bombed.store.dispatch
            if r.campaign_id == "attack-trapbomb" and r.challenge_id
        }
        # Clean attack hosts pass the filters, so most messages reflect.
        assert len(attacked) > 100

    def test_victim_server_gets_blacklisted(self, baseline, bombed):
        ip = bombed.installations[VICTIM].challenge_mta.ip
        assert _listed_days(bombed, ip) > _listed_days(baseline, ip)
        assert _listed_days(bombed, ip) >= 3

    def test_victim_suffers_blacklist_bounces(self, baseline, bombed):
        def bounces(result):
            return sum(
                1
                for o in result.store.challenge_outcomes
                if o.company_id == VICTIM
                and o.bounce_reason is BounceReason.BLACKLISTED
            )

        assert bounces(bombed) > bounces(baseline)

    def test_other_companies_unaffected(self, baseline, bombed):
        # Same seed: non-victim companies see identical inbound counts.
        def per_company(result):
            counts = {}
            for record in result.store.mta:
                counts[record.company_id] = counts.get(record.company_id, 0) + 1
            return counts

        base_counts = per_company(baseline)
        bomb_counts = per_company(bombed)
        for company_id in base_counts:
            if company_id != VICTIM:
                assert bomb_counts[company_id] == base_counts[company_id]


class TestWhitelistSpoofing:
    def test_spoofed_spam_reaches_inbox(self, spoofed):
        records = [
            r
            for r in spoofed.store.dispatch
            if r.campaign_id == "attack-spoof"
        ]
        assert records
        white = sum(1 for r in records if r.category is Category.WHITE)
        hit_rate = white / len(records)
        # Roughly the attacker's guess probability times the seeded share.
        assert 0.3 < hit_rate < 0.75

    def test_all_attack_mail_is_spam_ground_truth(self, spoofed):
        records = [
            r
            for r in spoofed.store.dispatch
            if r.campaign_id == "attack-spoof"
        ]
        assert all(r.kind is MessageKind.SPAM for r in records)

    def test_unknown_company_raises(self):
        with pytest.raises(KeyError):
            run_simulation(
                "tiny",
                seed=17,
                scenarios=[
                    WhitelistSpoofingAttack(company_id="c99")
                ],
            )


class TestInstallHardening:
    def test_reused_attack_instance_is_deterministic(self):
        """Regression: a TrapBombingAttack reused across runs must behave
        as a fresh instance — per-run state (the forged sender IP pool)
        is allocated in install(), not lazily on first forge."""
        from repro.experiments.parallel import store_digest

        reused = TrapBombingAttack(company_id=VICTIM, duration_days=3)
        first = run_simulation("tiny", seed=17, scenarios=[reused])
        second = run_simulation("tiny", seed=17, scenarios=[reused])
        fresh = run_simulation(
            "tiny",
            seed=17,
            scenarios=[TrapBombingAttack(company_id=VICTIM, duration_days=3)],
        )
        assert store_digest(second.store) == store_digest(first.store)
        assert store_digest(second.store) == store_digest(fresh.store)

    def test_attack_window_past_horizon_raises(self):
        # Tiny horizon is 10 days; days 8..12 would silently never fire.
        with pytest.raises(ValueError, match="horizon"):
            run_simulation(
                "tiny",
                seed=17,
                scenarios=[
                    TrapBombingAttack(
                        company_id=VICTIM, start_day=8, duration_days=5
                    )
                ],
            )

    def test_negative_start_day_raises(self):
        with pytest.raises(ValueError):
            run_simulation(
                "tiny",
                seed=17,
                scenarios=[
                    TrapBombingAttack(company_id=VICTIM, start_day=-1)
                ],
            )

    def test_zero_duration_raises(self):
        with pytest.raises(ValueError):
            run_simulation(
                "tiny",
                seed=17,
                scenarios=[
                    TrapBombingAttack(company_id=VICTIM, duration_days=0)
                ],
            )
