"""Tests for the adversarial scenarios (§6 / Limitations extensions)."""

import pytest

from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.experiments import run_simulation
from repro.net.smtp import BounceReason
from repro.util.simtime import DAY
from repro.workload.attacks import TrapBombingAttack, WhitelistSpoofingAttack

VICTIM = "c01"


@pytest.fixture(scope="module")
def baseline():
    return run_simulation("tiny", seed=17)


@pytest.fixture(scope="module")
def bombed():
    return run_simulation(
        "tiny",
        seed=17,
        scenarios=[
            TrapBombingAttack(
                company_id=VICTIM,
                messages_per_day=150,
                start_day=1,
                duration_days=5,
            )
        ],
    )


@pytest.fixture(scope="module")
def spoofed():
    return run_simulation(
        "tiny",
        seed=17,
        scenarios=[
            WhitelistSpoofingAttack(
                company_id=VICTIM,
                messages_per_day=100,
                start_day=1,
                duration_days=5,
                guess_prob=0.6,
            )
        ],
    )


def _listed_days(result, ip):
    return len(
        {
            int(p.t // DAY)
            for p in result.store.probes
            if p.ip == ip and p.listed
        }
    )


class TestTrapBombing:
    def test_attack_messages_reach_the_engine(self, bombed):
        records = [
            r
            for r in bombed.store.dispatch
            if r.campaign_id == "attack-trapbomb"
        ]
        assert len(records) > 300
        assert all(r.company_id == VICTIM for r in records)

    def test_attack_triggers_challenges(self, bombed):
        attacked = {
            r.challenge_id
            for r in bombed.store.dispatch
            if r.campaign_id == "attack-trapbomb" and r.challenge_id
        }
        # Clean attack hosts pass the filters, so most messages reflect.
        assert len(attacked) > 100

    def test_victim_server_gets_blacklisted(self, baseline, bombed):
        ip = bombed.installations[VICTIM].challenge_mta.ip
        assert _listed_days(bombed, ip) > _listed_days(baseline, ip)
        assert _listed_days(bombed, ip) >= 3

    def test_victim_suffers_blacklist_bounces(self, baseline, bombed):
        def bounces(result):
            return sum(
                1
                for o in result.store.challenge_outcomes
                if o.company_id == VICTIM
                and o.bounce_reason is BounceReason.BLACKLISTED
            )

        assert bounces(bombed) > bounces(baseline)

    def test_other_companies_unaffected(self, baseline, bombed):
        # Same seed: non-victim companies see identical inbound counts.
        def per_company(result):
            counts = {}
            for record in result.store.mta:
                counts[record.company_id] = counts.get(record.company_id, 0) + 1
            return counts

        base_counts = per_company(baseline)
        bomb_counts = per_company(bombed)
        for company_id in base_counts:
            if company_id != VICTIM:
                assert bomb_counts[company_id] == base_counts[company_id]


class TestWhitelistSpoofing:
    def test_spoofed_spam_reaches_inbox(self, spoofed):
        records = [
            r
            for r in spoofed.store.dispatch
            if r.campaign_id == "attack-spoof"
        ]
        assert records
        white = sum(1 for r in records if r.category is Category.WHITE)
        hit_rate = white / len(records)
        # Roughly the attacker's guess probability times the seeded share.
        assert 0.3 < hit_rate < 0.75

    def test_all_attack_mail_is_spam_ground_truth(self, spoofed):
        records = [
            r
            for r in spoofed.store.dispatch
            if r.campaign_id == "attack-spoof"
        ]
        assert all(r.kind is MessageKind.SPAM for r in records)

    def test_unknown_company_raises(self):
        with pytest.raises(KeyError):
            run_simulation(
                "tiny",
                seed=17,
                scenarios=[
                    WhitelistSpoofingAttack(company_id="c99")
                ],
            )
