"""Unit tests for calibration constants and the size model."""

import random

import pytest

from repro.core.message import MessageKind
from repro.workload.calibration import DEFAULT_CALIBRATION, Calibration
from repro.workload.sizes import SizeModel


class TestCalibration:
    def test_spoof_mix_sums_to_one(self):
        for affinity in (0.0, 0.0005, 0.05, 0.16, 0.9):
            mix = DEFAULT_CALIBRATION.spoof_mix(affinity)
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_trap_share_tracks_affinity(self):
        mix = DEFAULT_CALIBRATION.spoof_mix(0.05)
        assert mix["trap"] == pytest.approx(0.05)

    def test_trap_share_capped(self):
        assert DEFAULT_CALIBRATION.spoof_trap_frac(0.9) == 0.5

    def test_trap_displaces_nonexistent(self):
        clean = DEFAULT_CALIBRATION.spoof_mix(0.0)
        dirty = DEFAULT_CALIBRATION.spoof_mix(0.1)
        assert dirty["nonexistent"] == pytest.approx(
            clean["nonexistent"] - 0.1
        )
        assert dirty["innocent"] == clean["innocent"]

    def test_defaults_are_probabilities(self):
        cal = DEFAULT_CALIBRATION
        for name in (
            "bot_ptr_prob",
            "bot_listed_prob",
            "legit_solve_prob",
            "digest_review_prob",
            "seed_whitelist_share",
            "newsletter_seed_prob",
        ):
            value = getattr(cal, name)
            assert 0.0 <= value <= 1.0, name

    def test_attempt_distribution_sums_below_one(self):
        # The residual mass folds into the last bucket (5 attempts).
        assert sum(DEFAULT_CALIBRATION.captcha_attempts_probs) <= 1.0
        assert len(DEFAULT_CALIBRATION.captcha_attempts_probs) == 5

    def test_hour_weights_cover_a_day(self):
        assert len(DEFAULT_CALIBRATION.legit_hour_weights) == 24
        assert len(DEFAULT_CALIBRATION.spam_hour_weights) == 24

    def test_calibration_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CALIBRATION.white_rate = 99.0  # type: ignore[misc]

    def test_custom_calibration_override(self):
        custom = Calibration(white_rate=2.0)
        assert custom.white_rate == 2.0
        assert custom.spam_valid_rate == DEFAULT_CALIBRATION.spam_valid_rate


class TestSizeModel:
    def _model(self):
        return SizeModel(DEFAULT_CALIBRATION, random.Random(3))

    def test_sizes_positive_and_capped(self):
        model = self._model()
        for _ in range(500):
            for draw in (model.spam, model.legit, model.newsletter):
                size = draw()
                assert 500 <= size <= DEFAULT_CALIBRATION.size_cap

    def test_legit_bigger_than_spam_on_average(self):
        model = self._model()
        n = 3000
        spam_mean = sum(model.spam() for _ in range(n)) / n
        legit_mean = sum(model.legit() for _ in range(n)) / n
        assert legit_mean > spam_mean

    def test_spam_median_near_calibration(self):
        model = self._model()
        sizes = sorted(model.spam() for _ in range(4001))
        median = sizes[len(sizes) // 2]
        assert median == pytest.approx(
            DEFAULT_CALIBRATION.spam_size_median, rel=0.15
        )

    def test_challenge_size_fixed(self):
        model = self._model()
        assert model.challenge() == DEFAULT_CALIBRATION.challenge_size
        assert model.challenge() == model.challenge()

    def test_for_kind_dispatch(self):
        model = self._model()
        assert model.for_kind(MessageKind.SPAM) >= 500
        assert model.for_kind(MessageKind.LEGIT) >= 500
        assert model.for_kind(MessageKind.NEWSLETTER) >= 500
