"""Unit tests for the deterministic RNG streams and Poisson sampler."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngStreams, poisson


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(seed=1)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_are_independent_objects(self):
        streams = RngStreams(seed=1)
        assert streams.stream("a") is not streams.stream("b")

    def test_deterministic_across_instances(self):
        one = RngStreams(seed=42).stream("spam")
        two = RngStreams(seed=42).stream("spam")
        assert [one.random() for _ in range(10)] == [
            two.random() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        one = RngStreams(seed=1).stream("spam")
        two = RngStreams(seed=2).stream("spam")
        assert [one.random() for _ in range(5)] != [
            two.random() for _ in range(5)
        ]

    def test_different_names_produce_different_sequences(self):
        streams = RngStreams(seed=3)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_draws_on_one_stream_do_not_perturb_another(self):
        baseline = RngStreams(seed=9)
        expected = [baseline.stream("stable").random() for _ in range(5)]

        perturbed = RngStreams(seed=9)
        for _ in range(1000):
            perturbed.stream("noisy").random()
        observed = [perturbed.stream("stable").random() for _ in range(5)]
        assert observed == expected

    def test_child_namespacing_is_deterministic(self):
        a = RngStreams(seed=5).child("campaigns").stream("c1")
        b = RngStreams(seed=5).child("campaigns").stream("c1")
        assert a.random() == b.random()

    def test_child_differs_from_parent_stream(self):
        streams = RngStreams(seed=5)
        child_value = streams.child("x").stream("y").random()
        parent_value = streams.stream("y").random()
        assert child_value != parent_value


class TestPoisson:
    def test_zero_rate_returns_zero(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_negative_rate_returns_zero(self):
        assert poisson(random.Random(0), -1.0) == 0

    @pytest.mark.parametrize("lam", [0.1, 1.0, 5.0, 30.0])
    def test_small_lambda_mean(self, lam):
        rng = random.Random(123)
        n = 4000
        mean = sum(poisson(rng, lam) for _ in range(n)) / n
        assert mean == pytest.approx(lam, rel=0.12)

    def test_large_lambda_uses_normal_approximation(self):
        rng = random.Random(7)
        samples = [poisson(rng, 500.0) for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(500.0, rel=0.05)
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert variance == pytest.approx(500.0, rel=0.35)

    @given(st.floats(min_value=0.0, max_value=100.0), st.integers(0, 2**32))
    def test_always_nonnegative_integer(self, lam, seed):
        value = poisson(random.Random(seed), lam)
        assert isinstance(value, int)
        assert value >= 0

    def test_large_lambda_never_negative(self):
        # The normal approximation is clamped at zero.
        rng = random.Random(11)
        assert all(poisson(rng, 51.0) >= 0 for _ in range(2000))
