"""Protocol-level tests of the asyncio SMTP frontend.

Focus areas: the command state machine, CRLF strictness (the live
parser's injection surface), shared address validation with the
simulated MTA, size limits, and the WAL-then-reply ordering visible as
"every 250 is in the ledger".
"""

from __future__ import annotations

import asyncio

from repro.net.addresses import MAX_LOCAL_LENGTH
from tests.serve_harness import SmtpClient, ehlo_client, live_stack, pick_targets


def test_session_state_machine(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, _web):
            sender, users = pick_targets(service)
            client = SmtpClient(smtp.port)
            greeting = await client.connect()
            assert greeting.startswith("220 ")

            # Envelope commands before EHLO / out of order: 503.
            assert await client.code(f"MAIL FROM:<{sender}>") == 503
            assert await client.code("EHLO harness") == 250
            assert await client.code(f"RCPT TO:<{users[0]}>") == 503  # no MAIL
            assert await client.code("DATA") == 503

            assert await client.code(f"MAIL FROM:<{sender}>") == 250
            assert await client.code(f"MAIL FROM:<{sender}>") == 503  # twice
            assert await client.code("RSET") == 250
            assert await client.code(f"MAIL FROM:<{sender}>") == 250
            assert await client.code(f"RCPT TO:<{users[0]}>") == 250
            # One recipient per transaction: the second gets 452.
            assert await client.code(f"RCPT TO:<{users[1]}>") == 452
            assert await client.code("NOOP") == 250
            reply = await client.command("QUIT")
            assert reply.startswith("221 ")
            client.close()

    asyncio.run(scenario())


def test_crlf_strict_and_shared_address_hardening(tmp_path):
    """Bare-LF commands are 500; addresses with control bytes, CR/LF
    splices, or overlong locals are 501 — decided by the same
    ``is_well_formed`` the simulated MTA uses."""

    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, _web):
            sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)

            # Bare LF: rejected at the line reader, never parsed.
            await client.send_raw(b"MAIL FROM:<a@ext-0.livegen.example>\n")
            assert (await client.readline()).startswith("500 ")

            # Control bytes / splices inside the path: 501.
            for evil in (
                "MAIL FROM:<a\x00@ext-0.livegen.example>",
                "MAIL FROM:<a\t@ext-0.livegen.example>",
                f"MAIL FROM:<{'x' * (MAX_LOCAL_LENGTH + 1)}@ext-0.livegen.example>",
            ):
                assert await client.code(evil) == 501
            # A CR smuggled mid-line survives until the parser — and dies.
            await client.send_raw(
                b"MAIL FROM:<a@b.com\rRCPT TO:<evil@x.com>>\r\n"
            )
            assert (await client.readline()).startswith("501 ")

            # Missing angle brackets / keyword: 501.
            assert await client.code("MAIL a@b.com") == 501
            assert await client.code("MAIL FROM:a@b.com") == 501

            assert service.stats.malformed >= 4
            # The session survives all of it and still accepts real mail.
            assert await client.send_message(sender, users[0]) == 250
            await client.quit()

    asyncio.run(scenario())


def test_unknown_recipient_refused_at_rcpt(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, _web):
            sender, _users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            assert await client.code(f"MAIL FROM:<{sender}>") == 250
            assert await client.code("RCPT TO:<ghost@nowhere.invalid>") == 550
            assert service.stats.unrouted_rcpts == 1
            await client.quit()
            # Nothing was accepted: nothing to reconcile against.
            assert service.stats.acked == 0
            assert service.reconcile()["reconciled"]

    asyncio.run(scenario())


def test_oversized_message_rejected_not_buffered(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, _web):
            smtp.max_message_bytes = 2048
            sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            assert await client.code(f"MAIL FROM:<{sender}>") == 250
            assert await client.code(f"RCPT TO:<{users[0]}>") == 250
            assert await client.code("DATA") == 354
            big = "y" * 100 + "\r\n"
            await client.send_raw(("Subject: big\r\n\r\n" + big * 40).encode())
            await client.send_raw(b".\r\n")
            assert (await client.readline()).startswith("552 ")
            # The refused message never reached the WAL or the ledger.
            assert service.wal.appended_seq == 0
            # Session still works; dot-stuffed bodies are unstuffed.
            for cmd, expect in (
                (f"MAIL FROM:<{sender}>", 250),
                (f"RCPT TO:<{users[0]}>", 250),
                ("DATA", 354),
            ):
                assert await client.code(cmd) == expect
            await client.send_raw(b"Subject: ok\r\n\r\n..dotted line\r\n.\r\n")
            assert (await client.readline()).startswith("250 ")
            await client.quit()
            assert service.stats.acked == 1

    asyncio.run(scenario())


def test_null_sender_envelope_reaches_engine_verdict(tmp_path):
    """``MAIL FROM:<>`` is legal SMTP; the engine's MTA-IN decides its
    fate (malformed envelope → 501 at DATA), and the refusal is WAL'd
    and accounted like any other applied record."""

    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, _web):
            _sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            assert await client.code("MAIL FROM:<>") == 250
            assert await client.code(f"RCPT TO:<{users[0]}>") == 250
            assert await client.code("DATA") == 354
            await client.send_raw(b"Subject: bounce\r\n\r\nhi\r\n.\r\n")
            code = int((await client.readline())[:3])
            assert code in (250, 501)
            await client.quit()
            report = service.reconcile()
            assert report["reconciled"]
            assert report["applied_mail"] == 1
            if code == 501:
                assert service.stats.mta_dropped == 1

    asyncio.run(scenario())


def test_garbage_flood_disconnects(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (_service, smtp, _web):
            client = SmtpClient(smtp.port)
            await client.connect()
            for _ in range(10):
                assert await client.code("BOGUS") == 500
            # The 11th pushes past MAX_SYNTAX_ERRORS: reply then hangup.
            await client.send_raw(b"BOGUS\r\n")
            assert (await client.readline()).startswith("500 ")
            assert await client.reader.read() == b""  # connection closed
            client.close()

    asyncio.run(scenario())


def test_every_250_is_durable_before_reply(tmp_path):
    """WAL-then-reply, observed from the client side: at the instant a
    250 arrives, the on-disk WAL already holds at least that many
    records (scanned read-only, like a concurrent observer would)."""

    async def scenario():
        async with live_stack(tmp_path, batch_max=4) as (service, smtp, _web):
            from repro.serve.wal import scan_payloads

            sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            acked = 0
            for i in range(10):
                code = await client.send_message(
                    sender, users[i % len(users)], subject=f"SPAM: {i}"
                )
                if code == 250:
                    acked += 1
                    records, _ = scan_payloads(service.wal.path)
                    assert len(records) >= acked
            await client.quit()
            assert acked == 10

    asyncio.run(scenario())
