"""Unit tests for company configuration and the message model."""

import pytest

from repro.core.config import CompanyConfig, FilterSettings
from repro.core.message import (
    MessageKind,
    SenderClass,
    make_message,
    reset_msg_ids,
)


def _config(**overrides):
    defaults = dict(
        company_id="c0",
        name="C0",
        domain="corp.example",
        users=("alice", "bob"),
        mta_in_ip="1.1.1.1",
        mta_out_ip="1.1.1.2",
        challenge_ip="1.1.1.3",
    )
    defaults.update(overrides)
    return CompanyConfig(**defaults)


class TestCompanyConfig:
    def test_protected_recipient(self):
        config = _config()
        assert config.is_protected_recipient("alice", "corp.example")
        assert not config.is_protected_recipient("ghost", "corp.example")
        assert not config.is_protected_recipient("alice", "other.example")

    def test_accepts_domain(self):
        config = _config(relay_domains=("relay.example",))
        assert config.accepts_domain("corp.example")
        assert config.accepts_domain("relay.example")
        assert not config.accepts_domain("other.example")

    def test_open_relay_flag(self):
        assert not _config().open_relay
        assert _config(relay_domains=("r.example",)).open_relay

    def test_dual_outbound(self):
        assert _config().dual_outbound
        assert not _config(challenge_ip="1.1.1.2").dual_outbound

    def test_frozen(self):
        config = _config()
        with pytest.raises(Exception):
            config.domain = "x.example"  # type: ignore[misc]

    def test_dataclasses_replace_keeps_lookup_sets(self):
        import dataclasses

        replaced = dataclasses.replace(_config(), challenge_dedup=False)
        assert not replaced.challenge_dedup
        assert replaced.is_protected_recipient("alice", "corp.example")

    def test_filter_settings_defaults_match_paper(self):
        settings = FilterSettings()
        assert settings.antivirus and settings.reverse_dns and settings.rbl
        assert not settings.spf  # SPF was only evaluated offline (Fig. 12)


class TestMessageModel:
    def test_ids_are_unique_and_increasing(self):
        a = make_message(0.0, "s@x.com", "u@c.com")
        b = make_message(0.0, "s@x.com", "u@c.com")
        assert b.msg_id == a.msg_id + 1

    def test_reset_msg_ids(self):
        make_message(0.0, "s@x.com", "u@c.com")
        reset_msg_ids()
        fresh = make_message(0.0, "s@x.com", "u@c.com")
        assert fresh.msg_id == 1

    def test_defaults(self):
        message = make_message(5.0, "s@x.com", "u@c.com")
        assert message.kind is MessageKind.LEGIT
        assert message.sender_class is SenderClass.REAL
        assert message.campaign_id is None
        assert not message.has_virus

    def test_slots_prevent_stray_attributes(self):
        message = make_message(0.0, "s@x.com", "u@c.com")
        with pytest.raises(AttributeError):
            message.extra = 1  # type: ignore[attr-defined]


class TestMsgIdBlockAllocation:
    """``allocate_msg_id_block(n)`` must be indistinguishable from *n*
    sequential ``make_message`` allocations — same ids, same counter."""

    def test_block_equals_sequential(self):
        from repro.core.message import allocate_msg_id_block, snapshot_msg_ids

        reset_msg_ids()
        sequential = [
            make_message(0.0, "s@x.com", "u@c.com").msg_id for _ in range(7)
        ]
        after_sequential = snapshot_msg_ids()

        reset_msg_ids()
        first = allocate_msg_id_block(7)
        block = list(range(first, first + 7))

        assert block == sequential
        assert snapshot_msg_ids() == after_sequential

    def test_block_interleaves_with_single_allocation(self):
        from repro.core.message import allocate_msg_id_block

        reset_msg_ids()
        single = make_message(0.0, "s@x.com", "u@c.com").msg_id
        first = allocate_msg_id_block(3)
        next_single = make_message(0.0, "s@x.com", "u@c.com").msg_id
        assert single == 1
        assert first == 2
        assert next_single == 5  # block consumed ids 2, 3, 4

    def test_zero_length_block_consumes_nothing(self):
        from repro.core.message import allocate_msg_id_block, snapshot_msg_ids

        reset_msg_ids()
        before = snapshot_msg_ids()
        allocate_msg_id_block(0)
        assert snapshot_msg_ids() == before


class TestMessageBatchFinalize:
    """The struct-of-arrays batch must reproduce per-message construction:
    ids by generation order, stable sort by time."""

    @staticmethod
    def _row(t, env_from="s@x.com", env_to="u@c.com"):
        return (
            t, env_from, env_to, "", 8_000, "0.0.0.0",
            MessageKind.LEGIT, SenderClass.REAL, None, False,
        )

    def test_matches_sequential_make_message(self):
        from repro.core.message import MessageBatch

        times = [5.0, 1.0, 3.0, 3.0, 2.0]
        reset_msg_ids()
        expected = [
            make_message(t, f"s{i}@x.com", "u@c.com")
            for i, t in enumerate(times)
        ]
        # What the pre-batch generator did: allocate in generation order,
        # then stable-sort arrivals by time.
        expected.sort(key=lambda m: m.t)

        reset_msg_ids()
        batch = MessageBatch()
        for i, t in enumerate(times):
            batch.rows.append(self._row(t, env_from=f"s{i}@x.com"))
            batch.handlers.append(None)
        out_times, _, messages = batch.finalize()

        assert out_times == [m.t for m in expected]
        assert [m.msg_id for m in messages] == [m.msg_id for m in expected]
        assert messages == expected

    def test_same_time_rows_keep_generation_order(self):
        from repro.core.message import MessageBatch

        reset_msg_ids()
        batch = MessageBatch()
        for i in range(4):
            batch.rows.append(self._row(2.0, env_from=f"s{i}@x.com"))
            batch.handlers.append(i)
        _, handlers, messages = batch.finalize()
        assert handlers == [0, 1, 2, 3]
        assert [m.msg_id for m in messages] == [1, 2, 3, 4]

    def test_empty_batch(self):
        from repro.core.message import MessageBatch, snapshot_msg_ids

        reset_msg_ids()
        assert MessageBatch().finalize() == ([], [], [])
        assert snapshot_msg_ids() == 0
