"""Unit tests for company configuration and the message model."""

import pytest

from repro.core.config import CompanyConfig, FilterSettings
from repro.core.message import (
    MessageKind,
    SenderClass,
    make_message,
    reset_msg_ids,
)


def _config(**overrides):
    defaults = dict(
        company_id="c0",
        name="C0",
        domain="corp.example",
        users=("alice", "bob"),
        mta_in_ip="1.1.1.1",
        mta_out_ip="1.1.1.2",
        challenge_ip="1.1.1.3",
    )
    defaults.update(overrides)
    return CompanyConfig(**defaults)


class TestCompanyConfig:
    def test_protected_recipient(self):
        config = _config()
        assert config.is_protected_recipient("alice", "corp.example")
        assert not config.is_protected_recipient("ghost", "corp.example")
        assert not config.is_protected_recipient("alice", "other.example")

    def test_accepts_domain(self):
        config = _config(relay_domains=("relay.example",))
        assert config.accepts_domain("corp.example")
        assert config.accepts_domain("relay.example")
        assert not config.accepts_domain("other.example")

    def test_open_relay_flag(self):
        assert not _config().open_relay
        assert _config(relay_domains=("r.example",)).open_relay

    def test_dual_outbound(self):
        assert _config().dual_outbound
        assert not _config(challenge_ip="1.1.1.2").dual_outbound

    def test_frozen(self):
        config = _config()
        with pytest.raises(Exception):
            config.domain = "x.example"  # type: ignore[misc]

    def test_dataclasses_replace_keeps_lookup_sets(self):
        import dataclasses

        replaced = dataclasses.replace(_config(), challenge_dedup=False)
        assert not replaced.challenge_dedup
        assert replaced.is_protected_recipient("alice", "corp.example")

    def test_filter_settings_defaults_match_paper(self):
        settings = FilterSettings()
        assert settings.antivirus and settings.reverse_dns and settings.rbl
        assert not settings.spf  # SPF was only evaluated offline (Fig. 12)


class TestMessageModel:
    def test_ids_are_unique_and_increasing(self):
        a = make_message(0.0, "s@x.com", "u@c.com")
        b = make_message(0.0, "s@x.com", "u@c.com")
        assert b.msg_id == a.msg_id + 1

    def test_reset_msg_ids(self):
        make_message(0.0, "s@x.com", "u@c.com")
        reset_msg_ids()
        fresh = make_message(0.0, "s@x.com", "u@c.com")
        assert fresh.msg_id == 1

    def test_defaults(self):
        message = make_message(5.0, "s@x.com", "u@c.com")
        assert message.kind is MessageKind.LEGIT
        assert message.sender_class is SenderClass.REAL
        assert message.campaign_id is None
        assert not message.has_virus

    def test_slots_prevent_stray_attributes(self):
        message = make_message(0.0, "s@x.com", "u@c.com")
        with pytest.raises(AttributeError):
            message.extra = 1  # type: ignore[attr-defined]
