"""Unit tests for the challenge manager and CAPTCHA lifecycle."""

from repro.core.challenge import ChallengeManager
from repro.core.message import make_message
from repro.net.mta_out import DeliveryResult
from repro.net.smtp import FinalStatus


def _manager():
    return ChallengeManager("c-test")


def _issue(manager, user="u@c.com", sender="s@x.com", t=0.0):
    message = make_message(t, sender, user)
    return manager.issue(user, sender, message, t, size=1800), message


class TestIssue:
    def test_first_message_creates_challenge(self):
        manager = _manager()
        (challenge, created), message = _issue(manager)
        assert created
        assert challenge.msg_ids == [message.msg_id]
        assert challenge.origin is message
        assert manager.created_count == 1

    def test_second_message_attaches_to_pending(self):
        manager = _manager()
        (first, _), _ = _issue(manager)
        (second, created), message = _issue(manager, t=10.0)
        assert not created
        assert second is first
        assert message.msg_id in first.msg_ids
        assert manager.suppressed_count == 1

    def test_pending_keyed_per_user_and_sender(self):
        manager = _manager()
        _issue(manager, user="u1@c.com")
        (challenge, created), _ = _issue(manager, user="u2@c.com")
        assert created
        assert challenge.challenge_id == 2

    def test_pending_key_case_insensitive(self):
        manager = _manager()
        _issue(manager, sender="S@X.com")
        (_, created), _ = _issue(manager, sender="s@x.COM")
        assert not created

    def test_ids_are_sequential(self):
        manager = _manager()
        (a, _), _ = _issue(manager, sender="a@x.com")
        (b, _), _ = _issue(manager, sender="b@x.com")
        assert (a.challenge_id, b.challenge_id) == (1, 2)


class TestSolveFlow:
    def test_solve_clears_pending(self):
        manager = _manager()
        (challenge, _), _ = _issue(manager)
        manager.record_solve(challenge.challenge_id, 100.0)
        assert challenge.solved
        assert challenge.solved_at == 100.0
        # Next message from the same sender gets a fresh challenge.
        (fresh, created), _ = _issue(manager, t=200.0)
        assert created
        assert fresh is not challenge

    def test_solve_is_idempotent_on_timestamp(self):
        manager = _manager()
        (challenge, _), _ = _issue(manager)
        manager.record_solve(challenge.challenge_id, 50.0)
        manager.record_solve(challenge.challenge_id, 99.0)
        assert challenge.solved_at == 50.0

    def test_expire_pending_clears_slot(self):
        manager = _manager()
        (challenge, _), _ = _issue(manager)
        manager.expire_pending(challenge.challenge_id)
        assert manager.pending_challenge_for("u@c.com", "s@x.com") is None
        (_, created), _ = _issue(manager)
        assert created

    def test_expire_pending_of_superseded_challenge_keeps_new_slot(self):
        manager = _manager()
        (old, _), _ = _issue(manager)
        manager.record_solve(old.challenge_id, 1.0)
        (new, _), _ = _issue(manager, t=2.0)
        # Expiring the *old* challenge must not clear the new pending slot.
        manager.expire_pending(old.challenge_id)
        assert (
            manager.pending_challenge_for("u@c.com", "s@x.com") is new
        )


class TestWebEvents:
    def test_open_recorded_once(self):
        manager = _manager()
        (challenge, _), _ = _issue(manager)
        manager.record_open(challenge.challenge_id, 10.0)
        manager.record_open(challenge.challenge_id, 20.0)
        assert challenge.opened_at == 10.0

    def test_attempts_count_and_imply_open(self):
        manager = _manager()
        (challenge, _), _ = _issue(manager)
        manager.record_attempt(challenge.challenge_id, 5.0)
        manager.record_attempt(challenge.challenge_id, 6.0)
        assert challenge.attempts == 2
        assert challenge.opened_at == 5.0

    def test_delivery_recorded(self):
        manager = _manager()
        (challenge, _), _ = _issue(manager)
        result = DeliveryResult(FinalStatus.DELIVERED, None, 1, 3.0, 250)
        manager.record_delivery(challenge.challenge_id, result)
        assert challenge.delivery is result

    def test_all_challenges_listing(self):
        manager = _manager()
        _issue(manager, sender="a@x.com")
        _issue(manager, sender="b@x.com")
        assert len(manager.all_challenges()) == 2
