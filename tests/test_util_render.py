"""Unit tests for text rendering (tables, comparisons, histograms, CDFs)."""

import pytest

from repro.util.render import (
    ComparisonTable,
    TextTable,
    render_cdf,
    render_histogram,
)
from repro.util.stats import empirical_cdf, histogram


class TestTextTable:
    def test_renders_headers_and_rows(self):
        table = TextTable(headers=["a", "b"], title="T")
        table.add_row("x", 1)
        out = table.render()
        assert "T" in out
        assert "x" in out
        assert "1" in out

    def test_alignment_pads_columns(self):
        table = TextTable(headers=["name", "v"])
        table.add_row("long-name-here", 2)
        table.add_row("x", 31)
        lines = table.render().splitlines()
        data_lines = lines[-2:]
        # Both rows pad the first column to the same width, so the second
        # column starts at the same character offset.
        assert data_lines[0].index("2") == data_lines[1].index("31")

    def test_wrong_arity_raises(self):
        table = TextTable(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_thousands_separator(self):
        table = TextTable(headers=["n"])
        table.add_row(1234567)
        assert "1,234,567" in table.render()


class TestComparisonTable:
    def test_delta_computed(self):
        table = ComparisonTable("cmp")
        table.add("metric", 100.0, 110.0)
        out = table.render()
        assert "+10.0%" in out

    def test_missing_paper_value_renders_dash(self):
        table = ComparisonTable("cmp")
        table.add("metric", None, 5.0)
        out = table.render()
        assert "-" in out
        assert "delta" in out

    def test_percent_unit(self):
        table = ComparisonTable("cmp")
        table.add("metric", 19.3, 18.4, "%")
        out = table.render()
        assert "19.30%" in out
        assert "18.40%" in out

    def test_zero_paper_value_no_crash(self):
        table = ComparisonTable("cmp")
        table.add("metric", 0.0, 1.0)
        assert "n/a" in table.render()


class TestHistogramRendering:
    def test_bars_scale_with_counts(self):
        bins = histogram([1] * 10 + [6] * 5, [0, 5, 10])
        out = render_histogram(bins, title="h", width=20)
        lines = out.splitlines()
        assert lines[0] == "h"
        first_bar = lines[1].count("#")
        second_bar = lines[2].count("#")
        assert first_bar > second_bar > 0

    def test_empty_bins_render(self):
        bins = histogram([], [0, 1])
        out = render_histogram(bins)
        assert "0.00%" in out


class TestCdfRendering:
    def test_probes_rendered_in_order(self):
        points = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        out = render_cdf(points, probes=[2.0, 4.0], title="cdf")
        assert "50.00%" in out
        assert "100.00%" in out
