"""Shared plumbing for the live-service test files.

The suite runs without pytest-asyncio: each test is a plain function
that drives its own ``asyncio.run``. A :class:`LiveCrService` binds its
queue and futures to the loop that first touches them, so services are
always built *inside* the coroutine under test — :func:`live_stack`
packages that, plus both frontends, as an async context manager.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Optional, Sequence, Tuple

from repro.serve.service import LiveCrService
from repro.serve.smtp_server import SmtpFrontend
from repro.serve.web import WebFrontend


@contextlib.asynccontextmanager
async def live_stack(tmp_path, **service_kwargs):
    """A recovered, started service with SMTP and web frontends bound to
    OS-assigned loopback ports. Yields ``(service, smtp, web)``."""
    service_kwargs.setdefault("time_scale", 200.0)
    service_kwargs.setdefault("wal_path", str(tmp_path / "serve.wal"))
    service = LiveCrService(**service_kwargs)
    service.recover()
    await service.start()
    smtp = SmtpFrontend(service)
    web = WebFrontend(service)
    await smtp.start()
    await web.start()
    try:
        yield service, smtp, web
    finally:
        await smtp.close()
        await web.close()
        await service.close()


class SmtpClient:
    """A tiny scripted SMTP client for protocol-level assertions."""

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> str:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return await self.readline()

    async def readline(self) -> str:
        line = await asyncio.wait_for(self.reader.readline(), 10.0)
        return line.decode().rstrip("\r\n")

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def command(self, line: str) -> str:
        """Send one CRLF-terminated command, return the reply line."""
        await self.send_raw(line.encode() + b"\r\n")
        return await self.readline()

    async def code(self, line: str) -> int:
        return int((await self.command(line))[:3])

    async def send_message(
        self,
        mail_from: str,
        rcpt_to: str,
        subject: str = "hello",
        body: str = "body text",
    ) -> int:
        """EHLO-less envelope + DATA; returns the final reply code.
        Any 4xx/5xx during the envelope short-circuits (like a real MTA)."""
        for command in (f"MAIL FROM:<{mail_from}>", f"RCPT TO:<{rcpt_to}>", "DATA"):
            reply = await self.code(command)
            if reply >= 400:
                await self.command("RSET")
                return reply
        await self.send_raw(
            f"Subject: {subject}\r\n\r\n{body}\r\n.\r\n".encode()
        )
        return int((await self.readline())[:3])

    async def quit(self) -> None:
        with contextlib.suppress(Exception):
            await self.command("QUIT")
        self.close()

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None


async def ehlo_client(port: int) -> SmtpClient:
    client = SmtpClient(port)
    await client.connect()
    await client.command("EHLO test-harness")
    return client


async def http_request(
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    host: str = "127.0.0.1",
) -> Tuple[int, dict]:
    """One-shot HTTP exchange against the web frontend."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), 10.0)
    writer.close()
    head, _, resp_body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), json.loads(resp_body)


def pick_targets(service: LiveCrService) -> Tuple[str, Sequence[str]]:
    """A live-generator sender and the recipient list of one company."""
    directory = service.directory()
    sender = f"tester@{directory['sender_domains'][0]}"
    return sender, directory["companies"][0]["users"]


__all__ = [
    "SmtpClient",
    "ehlo_client",
    "http_request",
    "live_stack",
    "pick_targets",
]
