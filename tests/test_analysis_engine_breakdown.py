"""Unit tests for the Fig. 3 engine-breakdown analysis (synthetic store)."""

import pytest

from repro.analysis import engine_breakdown
from repro.analysis.store import LogStore
from repro.core.spools import Category

from tests import recordfactory as rf


def _store():
    store = LogStore()
    # Closed relay: 10 engine messages — 2 white, 1 black, 7 gray of which
    # 3 rbl-dropped, 1 av-dropped, 2 challenged, 1 suppressed-duplicate.
    for _ in range(2):
        rf.dispatch(store, category=Category.WHITE)
    rf.dispatch(store, category=Category.BLACK)
    for _ in range(3):
        rf.dispatch(store, filter_drop="rbl")
    rf.dispatch(store, filter_drop="antivirus")
    rf.dispatch(store, challenge_id=1, challenge_created=True)
    rf.dispatch(store, challenge_id=2, challenge_created=True)
    rf.dispatch(store, challenge_id=1, challenge_created=False)
    # Open relay: 4 messages, 2 challenged.
    for i in range(2):
        rf.dispatch(
            store,
            company="c9",
            open_relay=True,
            challenge_id=10 + i,
            challenge_created=True,
        )
    for _ in range(2):
        rf.dispatch(store, company="c9", open_relay=True, filter_drop="rbl")
    return store


class TestEngineBreakdown:
    def test_gray_total_counts_both_relay_kinds(self):
        stats = engine_breakdown.compute(_store())
        assert stats.gray_total == 7 + 4

    def test_filter_shares(self):
        stats = engine_breakdown.compute(_store())
        assert stats.filter_shares["rbl"] == pytest.approx(5 / 11)
        assert stats.filter_shares["antivirus"] == pytest.approx(1 / 11)
        assert stats.filter_drop_share == pytest.approx(6 / 11)

    def test_challenged_and_suppressed_shares(self):
        stats = engine_breakdown.compute(_store())
        assert stats.challenged_share == pytest.approx(4 / 11)
        assert stats.suppressed_share == pytest.approx(1 / 11)

    def test_shares_partition_gray(self):
        stats = engine_breakdown.compute(_store())
        total = (
            stats.filter_drop_share
            + stats.challenged_share
            + stats.suppressed_share
        )
        assert total == pytest.approx(1.0)

    def test_relay_challenge_rates(self):
        stats = engine_breakdown.compute(_store())
        assert stats.challenge_rate_closed == pytest.approx(2 / 10)
        assert stats.challenge_rate_open == pytest.approx(2 / 4)
        assert stats.open_relay_extra == pytest.approx(1.5)

    def test_empty_store(self):
        stats = engine_breakdown.compute(LogStore())
        assert stats.gray_total == 0
        assert stats.open_relay_extra == 0.0

    def test_render_quotes_all_three_paper_variants(self):
        out = engine_breakdown.render(_store())
        assert "54%" in out
        assert "62.9%" in out
        assert "77.5%" in out
