"""End-to-end integration: a full simulated deployment must reproduce the
paper's headline shapes within loose bands.

The bands are deliberately wide — the test presets are small and noisy —
but they pin the *direction* of every published finding: who wins, what is
rare, what dominates.
"""

from repro.analysis import (
    challenges,
    churn,
    clustering,
    delays,
    discussion,
    engine_breakdown,
    flow,
    general_stats,
    mta_breakdown,
    reflection,
    spf_study,
    variability,
)
from repro.analysis.spf_study import ChallengeFate
from repro.core.mta_in import DropReason
from repro.core.spools import Category


class TestConservation:
    def test_every_message_has_exactly_one_fate(self, small_result):
        store = small_result.store
        accepted = sum(1 for r in store.mta if r.accepted)
        assert accepted == len(store.dispatch)
        assert len(store.mta) >= accepted

    def test_flow_conservation(self, small_store):
        assert flow.conservation_check(flow.compute(small_store))

    def test_challenge_outcomes_complete_after_drain(self, small_result):
        store = small_result.store
        assert len(store.challenge_outcomes) == len(store.challenges)

    def test_quarantine_accounting(self, small_result):
        quarantined = sum(
            1
            for r in small_result.store.dispatch
            if r.category is Category.GRAY and r.filter_drop is None
        )
        # After the end-of-run drain nothing is left pending: entries still
        # quarantined at the horizon carry the PENDING_AT_HORIZON status.
        assert all(
            inst.gray_spool.pending_count == 0
            for inst in small_result.installations.values()
        )
        resolved = (
            len(small_result.store.releases)
            + len(small_result.store.expiries)
            + sum(
                inst.gray_spool.total_deleted
                + inst.gray_spool.total_pending_at_horizon
                for inst in small_result.installations.values()
            )
        )
        assert resolved == quarantined

    def test_ledger_verdict_holds(self, small_result):
        stats = small_result.ledger_stats
        assert stats is not None and stats.conserved
        assert stats.accepted == stats.terminal_total
        assert stats.stranded == 0
        assert stats.leaked_challenge_slots == 0


class TestMtaShape:
    def test_unknown_recipient_dominates_drops(self, small_store):
        result = mta_breakdown.compute(small_store)
        shares = result.drop_shares
        assert shares[DropReason.UNKNOWN_RECIPIENT] > 0.5
        assert shares[DropReason.UNKNOWN_RECIPIENT] > 5 * shares[
            DropReason.UNRESOLVABLE_DOMAIN
        ]

    def test_closed_relays_drop_most_traffic(self, small_store):
        result = mta_breakdown.compute(small_store)
        assert 0.15 < result.closed_pass_rate < 0.40  # paper: 24.9 %

    def test_open_relays_pass_much_more(self, small_store):
        result = mta_breakdown.compute(small_store)
        assert result.open_pass_rate > 1.5 * result.closed_pass_rate


class TestFlowShape:
    def test_white_share_band(self, small_store):
        result = flow.compute(small_store)
        assert 15 < result.white < 60  # paper: 31/1000

    def test_gray_dominates_dispatcher(self, small_store):
        result = flow.compute(small_store)
        assert result.gray > 4 * result.white

    def test_black_spool_small(self, small_store):
        result = flow.compute(small_store)
        assert result.black < result.white

    def test_filters_drop_majority_of_gray(self, small_store):
        result = engine_breakdown.compute(small_store)
        assert 0.5 < result.filter_drop_share < 0.9

    def test_rbl_is_biggest_filter(self, small_store):
        result = engine_breakdown.compute(small_store)
        shares = result.filter_shares
        assert shares["rbl"] > shares["antivirus"]
        assert shares["reverse_dns"] > shares["antivirus"]


class TestReflectionShape:
    def test_reflection_ratio_band(self, small_store):
        stats = reflection.compute(small_store)
        assert 0.10 < stats.reflection_cr < 0.30  # paper: 19.3 %

    def test_reflection_mta_band(self, small_store):
        stats = reflection.compute(small_store)
        assert 0.02 < stats.reflection_mta < 0.12  # paper: 4.8 %

    def test_traffic_ratio_band(self, small_store):
        stats = reflection.compute(small_store)
        assert 0.01 < stats.rt_cr < 0.06  # paper: 2.5 %
        assert stats.rt_mta < stats.rt_cr

    def test_backscatter_worst_case_band(self, small_store):
        stats = reflection.compute(small_store)
        assert 0.03 < stats.beta_cr < 0.20  # paper: 8.7 %


class TestChallengeShape:
    def test_delivery_split_band(self, small_store):
        stats = challenges.compute(small_store)
        assert 0.35 < stats.delivered_share < 0.65  # paper: 49 %

    def test_nonexistent_recipient_dominates_undelivered(self, small_store):
        stats = challenges.compute(small_store)
        assert stats.nonexistent_share_of_undelivered > 0.5  # paper: 71.7 %

    def test_most_delivered_never_opened(self, small_store):
        stats = challenges.compute(small_store)
        assert stats.never_opened_share > 0.85  # paper: 94 %

    def test_solved_share_band(self, small_store):
        stats = challenges.compute(small_store)
        assert 0.01 < stats.solved_share_of_sent < 0.08  # paper: 3.5 %

    def test_attempts_never_exceed_five(self, small_store):
        stats = challenges.compute(small_store)
        assert stats.max_attempts <= 5
        # Single-attempt solves dominate (Fig. 4(b)).
        histogram = stats.attempts_histogram
        if histogram:
            assert max(histogram, key=histogram.get) == 1


class TestUserImpactShape:
    def test_inbox_mostly_instant(self, small_store):
        stats = delays.compute(small_store)
        assert stats.instant_share > 0.80  # paper: 94 %

    def test_captcha_releases_fast(self, small_store):
        stats = delays.compute(small_store)
        from repro.util.simtime import HOUR
        from repro.util.stats import cdf_at

        assert cdf_at(stats.captcha_cdf, 4 * HOUR) > 0.6

    def test_small_share_delayed_over_a_day(self, small_store):
        stats = delays.compute(small_store)
        assert stats.inbox_delayed_over_1day_share < 0.08  # paper: 0.6 %


class TestChurnShape:
    def test_low_bins_dominate(self, small_result):
        stats = churn.compute(small_result.store, small_result.info)
        # Fig. 9: the two lowest bins hold ~80 % of whitelists.
        assert stats.bin_shares[0] + stats.bin_shares[1] > 55.0
        # Monotone decreasing tail.
        assert stats.bin_shares[2] > stats.bin_shares[4]

    def test_high_churn_users_rare(self, small_result):
        stats = churn.compute(small_result.store, small_result.info)
        assert stats.share_ge_1_per_day < 0.25  # paper: 6.8 %
        assert stats.share_ge_5_per_day < 0.05  # paper: 0.2 %

    def test_additions_per_user_day_band(self, small_result):
        stats = churn.compute(small_result.store, small_result.info)
        assert 0.1 < stats.additions_per_user_day < 0.8  # paper: 0.3


class TestClusteringShape:
    def test_clusters_found(self, small_result):
        stats = clustering.compute(small_result.store, small_result.info)
        assert stats.n_clusters > 10

    def test_solving_clusters_are_minority(self, small_result):
        stats = clustering.compute(small_result.store, small_result.info)
        assert stats.clusters_with_solved < 0.3 * stats.n_clusters

    def test_low_similarity_clusters_dominate(self, small_result):
        stats = clustering.compute(small_result.store, small_result.info)
        assert len(stats.low_similarity_clusters) > len(
            stats.high_similarity_clusters
        )

    def test_spurious_deliveries_rare(self, small_result):
        stats = clustering.compute(small_result.store, small_result.info)
        # Paper: ~1 per 10,000 challenges. Band: < 1 per 1,000.
        assert stats.spurious_rate < 1e-3


class TestSpfShape:
    def test_expired_have_highest_fail_share(self, small_store):
        stats = spf_study.compute(small_store)
        assert stats.fail_share(ChallengeFate.EXPIRED) > stats.fail_share(
            ChallengeFate.SOLVED
        )

    def test_solved_fail_share_tiny(self, small_store):
        stats = spf_study.compute(small_store)
        assert stats.fail_share(ChallengeFate.SOLVED) < 0.05  # paper: 0.25 %

    def test_bad_challenge_reduction_band(self, small_store):
        stats = spf_study.compute(small_store)
        assert 0.005 < stats.bad_challenge_fail_share < 0.10  # paper: 2.5 %


class TestVariabilityShape:
    def test_reflection_not_driven_by_size(self, small_result):
        stats = variability.compute(small_result.store, small_result.info)
        assert abs(stats.correlation("users", "reflection")) < 0.6

    def test_white_captcha_positively_correlated(self, small_result):
        stats = variability.compute(small_result.store, small_result.info)
        assert stats.correlation("white", "captcha") > 0.0

    def test_white_reflection_negatively_correlated(self, small_result):
        stats = variability.compute(small_result.store, small_result.info)
        assert stats.correlation("white", "reflection") < 0.0


class TestGeneralStatsAndDiscussion:
    def test_table1_totals_consistent(self, small_result):
        stats = general_stats.compute(small_result.store, small_result.info)
        assert stats.total_incoming == len(small_result.store.mta)
        assert (
            stats.white + stats.black + stats.gray + stats.dropped_at_mta
            == stats.total_incoming
        )

    def test_emails_per_challenge_band(self, small_result):
        stats = discussion.compute(small_result.store, small_result.info)
        assert 8 < stats.emails_per_challenge < 45  # paper: 21

    def test_traffic_increase_under_2_percent(self, small_result):
        stats = discussion.compute(small_result.store, small_result.info)
        assert stats.traffic_increase < 0.02  # paper: < 1 %

    def test_render_all_reports(self, small_result):
        from repro.experiments.registry import run_all

        out = run_all(small_result)
        assert "=== fig1 ===" in out
        assert "=== fig12 ===" in out
        assert len(out) > 4000
