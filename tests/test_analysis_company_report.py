"""Tests for the per-company drill-down report."""

import pytest

from repro.analysis import company_report
from repro.core.spools import Category
from repro.core.mta_in import DropReason


class TestProfile:
    def test_profile_for_every_company(self, tiny_result):
        for company_id in tiny_result.installations:
            profile = company_report.compute(
                tiny_result.store, tiny_result.info, company_id
            )
            assert profile.inbound_total > 0
            assert profile.users == tiny_result.info.users_per_company[
                company_id
            ]

    def test_unknown_company_raises(self, tiny_result):
        with pytest.raises(KeyError):
            company_report.compute(tiny_result.store, tiny_result.info, "c99")

    def test_accounting_identities(self, tiny_result):
        for company_id in tiny_result.installations:
            profile = company_report.compute(
                tiny_result.store, tiny_result.info, company_id
            )
            assert (
                profile.white + profile.black + profile.gray
                == profile.accepted
            )
            assert profile.drop_shares[DropReason.UNKNOWN_RECIPIENT] >= 0
            total_drop_share = sum(profile.drop_shares.values())
            assert profile.accepted == pytest.approx(
                profile.inbound_total * (1 - total_drop_share), abs=1.0
            )

    def test_challenge_fates_sum_to_sent(self, tiny_result):
        # After drain, every sent challenge has exactly one fate (other
        # bounce reasons are possible but rare; allow slack of zero here
        # because the micro taxonomy is exhaustive in this simulator).
        for company_id in tiny_result.installations:
            profile = company_report.compute(
                tiny_result.store, tiny_result.info, company_id
            )
            fates = (
                profile.challenges_delivered
                + profile.challenges_bounced_nonexistent
                + profile.challenges_bounced_blacklisted
                + profile.challenges_expired
            )
            assert fates == profile.challenges_sent

    def test_profiles_sum_to_fleet_totals(self, tiny_result):
        store = tiny_result.store
        total_inbound = 0
        total_white = 0
        total_challenges = 0
        for company_id in tiny_result.installations:
            profile = company_report.compute(
                store, tiny_result.info, company_id
            )
            total_inbound += profile.inbound_total
            total_white += profile.white
            total_challenges += profile.challenges_sent
        assert total_inbound == len(store.mta)
        assert total_white == sum(
            1 for r in store.dispatch if r.category is Category.WHITE
        )
        assert total_challenges == len(store.challenges)


class TestRendering:
    def test_render_single(self, tiny_result):
        company_id = next(iter(tiny_result.installations))
        out = company_report.render(
            tiny_result.store, tiny_result.info, company_id
        )
        assert "Installation report" in out
        assert "reflection ratio" in out

    def test_render_all_ordered_by_volume(self, tiny_result):
        out = company_report.render_all(
            tiny_result.store, tiny_result.info, limit=2
        )
        assert out.count("Installation report") == 2

    def test_cli_company_command(self, capsys):
        from repro.cli import main

        assert main(["company", "--preset", "tiny", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("Installation report") == 3

    def test_cli_unknown_company(self, capsys):
        from repro.cli import main

        assert main(
            ["company", "--preset", "tiny", "--seed", "3", "zz99"]
        ) == 2
