"""Unit tests for the message-lifecycle ledger state machine."""

import pytest

from repro.core.ledger import (
    LEGAL_TRANSITIONS,
    LedgerError,
    LifecycleState,
    MessageLedger,
    TERMINAL_STATES,
)


class TestStateMachine:
    def test_every_state_is_terminal_or_has_outgoing_edges(self):
        for state in LifecycleState:
            assert state in TERMINAL_STATES or state in LEGAL_TRANSITIONS

    def test_terminal_states_have_no_outgoing_edges(self):
        for state in TERMINAL_STATES:
            assert state not in LEGAL_TRANSITIONS

    def test_quarantine_terminals_partition_the_gray_exits(self):
        assert LEGAL_TRANSITIONS[LifecycleState.QUARANTINED] == {
            LifecycleState.RELEASED,
            LifecycleState.DELETED,
            LifecycleState.EXPIRED,
            LifecycleState.PENDING_AT_HORIZON,
        }


class TestCounters:
    def test_counts_partition_accepted(self):
        ledger = MessageLedger("c-test")
        ledger.accept(1)
        ledger.transition(1, LifecycleState.DELIVERED)
        ledger.accept(2)
        ledger.transition(2, LifecycleState.QUARANTINED)
        assert ledger.accepted == 2
        assert ledger.count(LifecycleState.DELIVERED) == 1
        assert ledger.in_quarantine == 1
        assert ledger.unclassified == 0

    def test_snapshot_conserved_after_full_lifecycle(self):
        ledger = MessageLedger("c-test")
        for msg_id, terminal in enumerate(
            [
                LifecycleState.DELIVERED,
                LifecycleState.BLACK_DROPPED,
                LifecycleState.FILTER_DROPPED,
            ]
        ):
            ledger.accept(msg_id)
            ledger.transition(msg_id, terminal)
        for msg_id, terminal in enumerate(
            [
                LifecycleState.RELEASED,
                LifecycleState.DELETED,
                LifecycleState.EXPIRED,
                LifecycleState.PENDING_AT_HORIZON,
            ],
            start=10,
        ):
            ledger.accept(msg_id)
            ledger.transition(msg_id, LifecycleState.QUARANTINED)
            ledger.transition(msg_id, terminal)
        snap = ledger.snapshot()
        assert snap.conserved
        assert snap.accepted == snap.terminal_total == 7
        assert snap.in_quarantine == 0
        assert snap.stranded == ()

    def test_snapshot_not_conserved_with_message_in_quarantine(self):
        ledger = MessageLedger("c-test")
        ledger.accept(1)
        ledger.transition(1, LifecycleState.QUARANTINED)
        snap = ledger.snapshot()
        assert not snap.conserved
        assert snap.in_quarantine == 1


class TestAuditMode:
    def test_accept_twice_raises(self):
        ledger = MessageLedger("c-test", audit=True)
        ledger.accept(1)
        with pytest.raises(LedgerError, match="accepted twice"):
            ledger.accept(1)

    def test_transition_without_accept_raises(self):
        ledger = MessageLedger("c-test", audit=True)
        with pytest.raises(LedgerError, match="never accepted"):
            ledger.transition(99, LifecycleState.DELIVERED)

    def test_double_finalize_raises(self):
        ledger = MessageLedger("c-test", audit=True)
        ledger.accept(1)
        ledger.transition(1, LifecycleState.QUARANTINED)
        ledger.transition(1, LifecycleState.EXPIRED)
        with pytest.raises(LedgerError, match="illegal lifecycle transition"):
            ledger.transition(1, LifecycleState.RELEASED)

    def test_gray_terminal_straight_from_accepted_raises(self):
        ledger = MessageLedger("c-test", audit=True)
        ledger.accept(1)
        with pytest.raises(LedgerError, match="illegal lifecycle transition"):
            ledger.transition(1, LifecycleState.RELEASED)

    def test_audit_snapshot_lists_stranded(self):
        ledger = MessageLedger("c-test", audit=True)
        ledger.accept(1)
        ledger.transition(1, LifecycleState.QUARANTINED)
        snap = ledger.snapshot()
        assert snap.stranded == ((1, "quarantined"),)

    def test_counters_only_mode_never_raises_on_bad_edges(self):
        # Without audit the ledger is pure counters: it cannot see edges,
        # only totals — bad sequences surface at the end-of-run check.
        ledger = MessageLedger("c-test")
        ledger.transition(99, LifecycleState.DELIVERED)  # no accept
        assert ledger.count(LifecycleState.DELIVERED) == 1
