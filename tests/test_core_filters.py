"""Unit tests for the auxiliary filter chain (antivirus, rDNS, RBL)."""

import random

from repro.blacklistd.service import DnsblService, ListingPolicy
from repro.core.filters.antivirus import AntivirusFilter
from repro.core.filters.base import FilterChain, SpamFilter
from repro.core.filters.rbl import RblFilter
from repro.core.filters.reverse_dns import ReverseDnsFilter
from repro.core.message import make_message
from repro.net.dns import DnsRegistry, Resolver
from repro.util.simtime import DAY


def _msg(client_ip="1.2.3.4", has_virus=False):
    return make_message(
        0.0, "s@x.com", "u@c.com", client_ip=client_ip, has_virus=has_virus
    )


class TestAntivirus:
    def test_clean_message_passes(self):
        av = AntivirusFilter(detection_rate=1.0, rng=random.Random(0))
        assert not av.should_drop(_msg(has_virus=False), 0.0)

    def test_virus_detected_at_full_rate(self):
        av = AntivirusFilter(detection_rate=1.0, rng=random.Random(0))
        assert av.should_drop(_msg(has_virus=True), 0.0)

    def test_zero_rate_misses_everything(self):
        av = AntivirusFilter(detection_rate=0.0, rng=random.Random(0))
        assert not av.should_drop(_msg(has_virus=True), 0.0)

    def test_partial_rate_statistics(self):
        av = AntivirusFilter(detection_rate=0.6, rng=random.Random(42))
        hits = sum(av.should_drop(_msg(has_virus=True), 0.0) for _ in range(2000))
        assert 0.55 < hits / 2000 < 0.65

    def test_invalid_rate_rejected(self):
        try:
            AntivirusFilter(detection_rate=1.5)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError


class TestReverseDns:
    def test_drops_ip_without_ptr(self):
        registry = DnsRegistry()
        rdns = ReverseDnsFilter(Resolver(registry))
        assert rdns.should_drop(_msg(client_ip="9.9.9.9"), 0.0)

    def test_passes_ip_with_ptr(self):
        registry = DnsRegistry()
        registry.register_client_ptr("9.9.9.9", "mail.host.example")
        rdns = ReverseDnsFilter(Resolver(registry))
        assert not rdns.should_drop(_msg(client_ip="9.9.9.9"), 0.0)


class TestRbl:
    def _service(self):
        return DnsblService(
            "rbl", ListingPolicy(threshold=1, window=DAY, base_duration=DAY)
        )

    def test_drops_listed_ip(self):
        service = self._service()
        service.force_list("9.9.9.9", 0.0, DAY)
        assert RblFilter(service).should_drop(_msg(client_ip="9.9.9.9"), 0.0)

    def test_passes_unlisted_ip(self):
        assert not RblFilter(self._service()).should_drop(_msg(), 0.0)

    def test_listing_is_time_sensitive(self):
        service = self._service()
        service.force_list("9.9.9.9", 0.0, DAY)
        rbl = RblFilter(service)
        assert rbl.should_drop(_msg(client_ip="9.9.9.9"), 0.5 * DAY)
        assert not rbl.should_drop(_msg(client_ip="9.9.9.9"), 2 * DAY)


class _AlwaysDrop(SpamFilter):
    name = "always"

    def should_drop(self, message, now):
        return True


class _NeverDrop(SpamFilter):
    name = "never"

    def should_drop(self, message, now):
        return False


class _Exploding(SpamFilter):
    name = "exploding"

    def should_drop(self, message, now):  # pragma: no cover
        raise AssertionError("must not be reached after a drop")


class TestFilterChain:
    def test_first_dropping_filter_reported(self):
        chain = FilterChain([_NeverDrop(), _AlwaysDrop(), _Exploding()])
        assert chain.first_drop(_msg(), 0.0) == "always"

    def test_short_circuit(self):
        chain = FilterChain([_AlwaysDrop(), _Exploding()])
        assert chain.first_drop(_msg(), 0.0) == "always"

    def test_pass_through(self):
        chain = FilterChain([_NeverDrop(), _NeverDrop()])
        assert chain.first_drop(_msg(), 0.0) is None
        assert chain.passed == 1

    def test_drop_counters(self):
        chain = FilterChain([_NeverDrop(), _AlwaysDrop()])
        chain.first_drop(_msg(), 0.0)
        chain.first_drop(_msg(), 0.0)
        assert chain.drops_by_filter == {"never": 0, "always": 2}

    def test_empty_chain_passes_everything(self):
        chain = FilterChain([])
        assert chain.first_drop(_msg(), 0.0) is None
