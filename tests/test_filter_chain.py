"""The pluggable filter chain: spec, baselines-in-chain, determinism.

Covers the PR 9 tentpole end to end: `FilterChainSpec` parsing and
validation, the online naive-Bayes and sender-reputation chain members,
order-dependent chain counters, cache-key default folding, and the
digest invariants (spec default ≡ legacy build, shards=4 ≡ shards=1 on
a non-default chain, same-seed reruns identical).
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    CHAIN_PRESETS,
    DEFAULT_CHAIN_MEMBERS,
    FilterChainSpec,
)
from repro.core.filters import FilterChain, SpamFilter
from repro.core.filters.content import NaiveBayesFilter, OnlineNaiveBayesFilter
from repro.core.filters.reputation import SenderReputationFilter
from repro.core.message import MessageKind, make_message
from repro.experiments.parallel import RunSpec, store_digest
from repro.experiments.runner import run_simulation
from repro.util.simtime import DAY


# -- FilterChainSpec ---------------------------------------------------------


class TestFilterChainSpec:
    def test_default_is_the_product_chain(self):
        assert FilterChainSpec().members == DEFAULT_CHAIN_MEMBERS

    def test_parse_passthrough_and_none(self):
        spec = FilterChainSpec(members=("content",))
        assert FilterChainSpec.parse(spec) is spec
        assert FilterChainSpec.parse(None) is None

    def test_parse_preset_names(self):
        for name, members in CHAIN_PRESETS.items():
            assert FilterChainSpec.parse(name).members == members

    def test_parse_comma_list(self):
        spec = FilterChainSpec.parse("antivirus, content")
        assert spec.members == ("antivirus", "content")

    def test_unknown_member_rejected(self):
        with pytest.raises(ValueError, match="unknown filter member"):
            FilterChainSpec.parse("antivirus,bogofilter")

    def test_bad_reputation_threshold_rejected(self):
        with pytest.raises(ValueError, match="reputation_threshold"):
            FilterChainSpec(reputation_threshold=1.5)

    def test_spec_is_hashable_with_stable_repr(self):
        a = FilterChainSpec.parse("hybrid")
        b = FilterChainSpec.parse("hybrid")
        assert a == b and hash(a) == hash(b) and repr(a) == repr(b)

    def test_members_list_coerced_to_tuple(self):
        assert FilterChainSpec(members=["content"]).members == ("content",)


# -- chain order dependence --------------------------------------------------


class _Stub(SpamFilter):
    def __init__(self, name, drops):
        self.name = name
        self._drops = drops
        self.calls = 0

    def should_drop(self, message, now):
        self.calls += 1
        return self._drops


def test_chain_counters_depend_on_order():
    """Short-circuiting means the first dropping filter takes the credit;
    reversing the chain moves every drop to the other counter."""
    msg = make_message(0.0, "s@x.example", "u@c0.example", subject="hi")

    eager, lazy = _Stub("eager", True), _Stub("lazy", True)
    chain = FilterChain([eager, lazy])
    for _ in range(5):
        chain.first_drop(msg, now=0.0)
    assert chain.drops_by_filter == {"eager": 5, "lazy": 0}
    assert lazy.calls == 0  # never consulted behind a dropper
    assert chain.passed == 0

    eager2, lazy2 = _Stub("eager", True), _Stub("lazy", True)
    reversed_chain = FilterChain([lazy2, eager2])
    for _ in range(5):
        reversed_chain.first_drop(msg, now=0.0)
    assert reversed_chain.drops_by_filter == {"lazy": 5, "eager": 0}


def test_chain_passes_count_only_full_passes():
    drop, pass_ = _Stub("drop", False), _Stub("pass", False)
    chain = FilterChain([drop, pass_])
    msg = make_message(0.0, "s@x.example", "u@c0.example")
    assert chain.first_drop(msg, now=0.0) is None
    assert chain.passed == 1


# -- online naive Bayes ------------------------------------------------------


SPAMMY = "cheap meds online pharmacy discount"
HAMMY = "meeting notes tomorrow agenda attached"


def _warm(filter_, repeats=10):
    for i in range(repeats):
        filter_.should_drop(
            make_message(0.0, "a@x.example", "u@c0.example",
                         subject=SPAMMY, kind=MessageKind.SPAM),
            now=0.0,
        )
        filter_.should_drop(
            make_message(0.0, "b@y.example", "u@c0.example",
                         subject=HAMMY, kind=MessageKind.LEGIT),
            now=0.0,
        )


class TestOnlineNaiveBayes:
    def test_never_drops_during_warmup(self):
        nb = OnlineNaiveBayesFilter(warmup_days=3.0)
        _warm(nb)
        spam = make_message(0.0, "c@z.example", "u@c0.example",
                            subject=SPAMMY, kind=MessageKind.SPAM)
        assert nb.should_drop(spam, now=2.9 * DAY) is False
        assert nb.should_drop(spam, now=3.0 * DAY) is True
        assert nb.scored == 1 and nb.warmup_passes > 0

    def test_never_drops_untrained_even_past_warmup(self):
        nb = OnlineNaiveBayesFilter(warmup_days=0.0)
        spam = make_message(0.0, "c@z.example", "u@c0.example",
                            subject=SPAMMY, kind=MessageKind.SPAM)
        # First sighting: single-class model, must abstain (and train).
        assert nb.should_drop(spam, now=10 * DAY) is False

    def test_scores_before_training_on_the_message(self):
        """A message never trains the model that judges it: the first
        hammy message after warm-up is judged by the old model."""
        nb = OnlineNaiveBayesFilter(warmup_days=0.0)
        _warm(nb, repeats=3)
        docs_before = nb.classifier._spam_docs + nb.classifier._ham_docs
        ham = make_message(0.0, "b@y.example", "u@c0.example",
                           subject=HAMMY, kind=MessageKind.LEGIT)
        assert nb.should_drop(ham, now=DAY) is False
        assert nb.classifier._spam_docs + nb.classifier._ham_docs == docs_before + 1

    def test_newsletters_train_as_ham(self):
        nb = OnlineNaiveBayesFilter(warmup_days=0.0)
        news = make_message(0.0, "n@list.example", "u@c0.example",
                            subject="weekly digest issue",
                            kind=MessageKind.NEWSLETTER)
        nb.should_drop(news, now=0.0)
        assert nb.classifier._ham_docs == 1 and nb.classifier._spam_docs == 0


def test_cached_log_odds_match_recomputed_reference():
    """Regression for the O(V)-per-call bug: the incrementally maintained
    totals must reproduce the from-scratch Laplace computation exactly."""
    import math

    nb = NaiveBayesFilter()
    nb.train([
        ("cheap meds online pharmacy", True),
        ("exclusive offer limited time", True),
        ("meeting notes tomorrow agenda", False),
    ])
    nb.train([("project status report attached", False)])  # second batch

    def reference(subject):
        spam_total = sum(nb._spam_tokens.values())
        ham_total = sum(nb._ham_tokens.values())
        vocab = len(set(nb._spam_tokens) | set(nb._ham_tokens)) or 1
        odds = math.log(nb._spam_docs) - math.log(nb._ham_docs)
        for token in subject.lower().split():
            p_spam = (nb._spam_tokens.get(token, 0) + 1.0) / (spam_total + vocab)
            p_ham = (nb._ham_tokens.get(token, 0) + 1.0) / (ham_total + vocab)
            odds += math.log(p_spam) - math.log(p_ham)
        return odds

    for subject in (
        "cheap meds", "status report", "never seen tokens here",
        "offer meeting", SPAMMY, HAMMY,
    ):
        assert nb.spam_log_odds(subject) == pytest.approx(
            reference(subject), abs=1e-12
        )
    # The caches really are maintained, not recomputed.
    assert nb._spam_token_total == sum(nb._spam_tokens.values())
    assert nb._ham_token_total == sum(nb._ham_tokens.values())
    assert nb._vocab == set(nb._spam_tokens) | set(nb._ham_tokens)


# -- sender reputation -------------------------------------------------------


class TestSenderReputation:
    def _spam(self, t=0.0, sender="s@spam.example", ip="203.0.113.9"):
        return make_message(t, sender, "u@c0.example", subject="x",
                            client_ip=ip, kind=MessageKind.SPAM)

    def test_abstains_below_min_observations(self):
        rep = SenderReputationFilter(min_observations=6)
        for _ in range(2):  # 2 messages x 2 keys = 4 observations
            assert rep.should_drop(self._spam(), now=0.0) is False
        assert rep.abstained == 2 and rep.dropped == 0

    def test_drops_spammy_history(self):
        rep = SenderReputationFilter(min_observations=6, threshold=0.9)
        for _ in range(3):
            rep.should_drop(self._spam(), now=0.0)
        assert rep.should_drop(self._spam(), now=1.0) is True

    def test_history_outside_window_is_forgotten(self):
        rep = SenderReputationFilter(window_days=1.0, min_observations=6)
        for _ in range(5):
            rep.should_drop(self._spam(t=0.0), now=0.0)
        # Two days later the window is empty again: abstain.
        assert rep.should_drop(self._spam(), now=2 * DAY) is False

    def test_ham_history_clears_the_sender(self):
        rep = SenderReputationFilter(min_observations=4, threshold=0.9)
        for kind in (MessageKind.LEGIT, MessageKind.LEGIT, MessageKind.SPAM):
            rep.should_drop(
                make_message(0.0, "s@mixed.example", "u@c0.example",
                             subject="x", client_ip="198.51.100.7", kind=kind),
                now=0.0,
            )
        # 6 observations, 2 spam -> ratio 1/3 < 0.9: pass.
        assert rep.should_drop(
            make_message(0.0, "s@mixed.example", "u@c0.example", subject="x",
                         client_ip="198.51.100.7", kind=MessageKind.SPAM),
            now=0.0,
        ) is False

    def test_null_sender_judged_on_network_alone(self):
        rep = SenderReputationFilter(min_observations=3, threshold=0.9)
        for _ in range(3):
            rep.should_drop(
                make_message(0.0, "", "u@c0.example", subject="x",
                             client_ip="203.0.113.9", kind=MessageKind.SPAM),
                now=0.0,
            )
        assert rep.should_drop(
            make_message(0.0, "", "u@c0.example", subject="x",
                         client_ip="203.0.113.50", kind=MessageKind.SPAM),
            now=0.0,
        ) is True  # same /24

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SenderReputationFilter(window_days=0)
        with pytest.raises(ValueError):
            SenderReputationFilter(threshold=0.0)
        with pytest.raises(ValueError):
            SenderReputationFilter(min_observations=0)


# -- end-to-end digest invariants -------------------------------------------


def test_default_spec_build_matches_legacy_build():
    """chain=FilterChainSpec() (the declarative product chain) is
    byte-identical to chain=None (the legacy FilterSettings build)."""
    legacy = run_simulation("tiny", seed=7)
    declarative = run_simulation("tiny", seed=7, chain=FilterChainSpec())
    assert store_digest(declarative.store) == store_digest(legacy.store)


def test_hybrid_chain_run_is_deterministic_and_counts_baseline_drops():
    first = run_simulation("tiny", seed=11, chain="hybrid")
    second = run_simulation("tiny", seed=11, chain="hybrid")
    assert store_digest(first.store) == store_digest(second.store)
    chain = next(iter(first.installations.values())).filter_chain
    assert set(chain.drops_by_filter) == {
        "antivirus", "reverse_dns", "rbl", "content", "reputation",
    }
    # The baselines actually participate in the live chain.
    total_baseline_drops = sum(
        inst.filter_chain.drops_by_filter["content"]
        + inst.filter_chain.drops_by_filter["reputation"]
        for inst in first.installations.values()
    )
    assert total_baseline_drops > 0
    # No content drop before the warm-up elapses.
    warmup = FilterChainSpec().content_warmup_days * DAY
    for record in first.store.dispatch:
        if record.filter_drop == "content":
            assert record.t >= warmup


def test_sharded_hybrid_chain_digest_matches_unsharded():
    """shards=4 ≡ shards=1 pinned on a non-default chain: per-company
    baseline filter state lives on the owner shard and sees exactly the
    single-process message sequence."""
    plain = run_simulation("tiny", seed=7, chain="hybrid")
    sharded = run_simulation(
        "tiny", seed=7, chain="hybrid", shards=4, shard_jobs=1
    )
    assert store_digest(sharded.store) == store_digest(plain.store)


def test_chain_cache_key_default_folding():
    """chain=None hashes exactly as before the field existed; asking for
    a real chain changes the key, and different chains differ."""
    legacy = RunSpec(preset="tiny", seed=3)
    assert legacy.cache_key() == RunSpec(preset="tiny", seed=3, chain=None).cache_key()
    hybrid = RunSpec(preset="tiny", seed=3, chain="hybrid")
    assert hybrid.cache_key() != legacy.cache_key()
    assert (
        hybrid.cache_key()
        != RunSpec(preset="tiny", seed=3, chain="naive-bayes").cache_key()
    )
    # String and resolved-spec notations agree on the key.
    assert (
        hybrid.cache_key()
        == RunSpec(
            preset="tiny", seed=3, chain=FilterChainSpec.parse("hybrid")
        ).cache_key()
    )


def test_scenario_chain_key_and_explicit_override(tmp_path):
    (tmp_path / "chained.yaml").write_text(
        "description: chain scenario\n"
        "chain:\n"
        "  members: [content]\n"
        "  content_warmup_days: 1.0\n",
        encoding="utf-8",
    )
    from repro.scenarios import load_scenario

    spec = load_scenario(str(tmp_path / "chained.yaml"))
    assert spec.chain_spec().members == ("content",)
    assert spec.chain_spec().content_warmup_days == 1.0

    result = run_simulation("tiny", seed=7, scenario=spec)
    chain = next(iter(result.installations.values())).filter_chain
    assert set(chain.drops_by_filter) == {"content"}

    overridden = run_simulation(
        "tiny", seed=7, scenario=spec, chain="reputation"
    )
    chain = next(iter(overridden.installations.values())).filter_chain
    assert set(chain.drops_by_filter) == {"reputation"}
