"""Unit tests for the simulated DNS registry and resolver."""

from repro.net.dns import DnsRegistry, Resolver, iter_spf_mechanisms


class TestRegistry:
    def test_lookup_empty(self):
        registry = DnsRegistry()
        assert registry.lookup("nothing.example", "A") == []

    def test_add_and_lookup(self):
        registry = DnsRegistry()
        registry.add_record("example.com", "A", "1.2.3.4")
        assert registry.lookup("example.com", "A") == ["1.2.3.4"]

    def test_names_case_insensitive(self):
        registry = DnsRegistry()
        registry.add_record("Example.COM", "A", "1.2.3.4")
        assert registry.lookup("example.com", "a") == ["1.2.3.4"]

    def test_duplicate_values_ignored(self):
        registry = DnsRegistry()
        registry.add_record("example.com", "A", "1.2.3.4")
        registry.add_record("example.com", "A", "1.2.3.4")
        assert registry.lookup("example.com", "A") == ["1.2.3.4"]

    def test_multiple_values_kept_in_order(self):
        registry = DnsRegistry()
        registry.add_record("example.com", "MX", "mx1.example.com")
        registry.add_record("example.com", "MX", "mx2.example.com")
        assert registry.lookup("example.com", "MX") == [
            "mx1.example.com",
            "mx2.example.com",
        ]

    def test_remove_records(self):
        registry = DnsRegistry()
        registry.add_record("example.com", "A", "1.2.3.4")
        registry.remove_records("example.com", "A")
        assert registry.lookup("example.com", "A") == []
        registry.remove_records("example.com", "A")  # idempotent

    def test_register_mail_domain_full_set(self):
        registry = DnsRegistry()
        registry.register_mail_domain(
            "corp.example", "9.9.9.9", spf="v=spf1 ip4:9.9.9.9 -all"
        )
        assert registry.lookup("corp.example", "A") == ["9.9.9.9"]
        assert registry.lookup("corp.example", "MX") == ["mail.corp.example"]
        assert registry.lookup("mail.corp.example", "A") == ["9.9.9.9"]
        assert registry.lookup("9.9.9.9", "PTR") == ["mail.corp.example"]
        assert registry.lookup("corp.example", "TXT") == [
            "v=spf1 ip4:9.9.9.9 -all"
        ]

    def test_register_mail_domain_without_ptr(self):
        registry = DnsRegistry()
        registry.register_mail_domain("corp.example", "9.9.9.9", with_ptr=False)
        assert registry.lookup("9.9.9.9", "PTR") == []


class TestResolver:
    def _resolver(self):
        registry = DnsRegistry()
        registry.register_mail_domain(
            "corp.example", "9.9.9.9", spf="v=spf1 ip4:9.9.9.9 -all"
        )
        registry.add_record("a-only.example", "A", "8.8.8.8")
        return Resolver(registry)

    def test_resolves_registered_domain(self):
        assert self._resolver().resolves("corp.example")

    def test_resolves_a_only_domain(self):
        assert self._resolver().resolves("a-only.example")

    def test_unregistered_domain_does_not_resolve(self):
        assert not self._resolver().resolves("ghost.example")

    def test_mx_host(self):
        resolver = self._resolver()
        assert resolver.mx_host("corp.example") == "mail.corp.example"
        assert resolver.mx_host("ghost.example") is None

    def test_ptr(self):
        resolver = self._resolver()
        assert resolver.ptr("9.9.9.9") == "mail.corp.example"
        assert resolver.ptr("1.1.1.1") is None

    def test_spf_policy_found(self):
        assert self._resolver().spf_policy("corp.example") == (
            "v=spf1 ip4:9.9.9.9 -all"
        )

    def test_spf_policy_absent(self):
        assert self._resolver().spf_policy("a-only.example") is None

    def test_non_spf_txt_ignored(self):
        registry = DnsRegistry()
        registry.add_record("x.example", "TXT", "verification=abc")
        assert Resolver(registry).spf_policy("x.example") is None

    def test_query_counter_increments(self):
        resolver = self._resolver()
        before = resolver.queries
        resolver.resolves("corp.example")
        resolver.ptr("9.9.9.9")
        assert resolver.queries == before + 2


class TestSpfMechanismIteration:
    def test_skips_version_tag(self):
        terms = list(iter_spf_mechanisms("v=spf1 ip4:1.2.3.4 -all"))
        assert terms == ["ip4:1.2.3.4", "-all"]

    def test_empty_policy(self):
        assert list(iter_spf_mechanisms("v=spf1")) == []
