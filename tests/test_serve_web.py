"""HTTP frontend tests: health/readiness, the journaled CAPTCHA and
digest mutations, and the ops shed control.

The important property beyond routing: every web *mutation* goes through
the WAL (it shows up in ``wal_records`` and replays), while reads never
do.
"""

from __future__ import annotations

import asyncio

from repro.serve.service import LiveCrService
from tests.serve_harness import ehlo_client, http_request, live_stack, pick_targets


def test_health_ready_stats_directory(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, _smtp, web):
            status, ready = await http_request(web.port, "GET", "/readyz")
            assert status == 200 and ready["ready"] is True

            status, health = await http_request(web.port, "GET", "/healthz")
            assert status == 200
            assert health["shed_level"] == 0
            assert health["queue_capacity"] == 256

            status, stats = await http_request(web.port, "GET", "/stats")
            assert status == 200
            assert stats["reconciliation"]["reconciled"] is True
            assert stats["service"]["acked"] == 0

            status, directory = await http_request(web.port, "GET", "/directory")
            assert status == 200
            assert directory["companies"]
            assert all("@" in u for c in directory["companies"] for u in c["users"])
            assert len(directory["sender_domains"]) == 32

    asyncio.run(scenario())


def test_not_ready_before_recover(tmp_path):
    """/readyz is the recovery gate: a service that has not replayed its
    WAL yet must answer 503."""

    async def scenario():
        from repro.serve.web import WebFrontend

        service = LiveCrService(wal_path=str(tmp_path / "w.wal"))
        web = WebFrontend(service)
        await web.start()
        try:
            status, body = await http_request(web.port, "GET", "/readyz")
            assert status == 503 and body["ready"] is False
        finally:
            await web.close()
            service.wal.close()

    asyncio.run(scenario())


def test_challenge_solve_flow_releases_and_is_journaled(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, web):
            sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            assert await client.send_message(sender, users[0], "SPAM: x") == 250
            await client.quit()
            installation = service.route(users[0])
            company = installation.config.company_id
            (challenge_id,) = [
                c.challenge_id
                for c in installation.challenge_manager._challenges.values()
            ]

            for path in ("/challenge/open", "/challenge/attempt"):
                status, body = await http_request(
                    web.port,
                    "POST",
                    path,
                    {"company": company, "challenge_id": challenge_id,
                     "success": False},
                )
                assert status == 200 and body["applied"], (path, body)
            status, body = await http_request(
                web.port,
                "POST",
                "/challenge/solve",
                {"company": company, "challenge_id": challenge_id},
            )
            assert status == 200 and body["applied"]

            report = service.reconcile()
            assert report["reconciled"]
            # 1 mail + 3 web mutations, all journaled.
            assert report["wal_records"] == 4
            assert report["applied_web"] == 3
            assert report["per_company"][company]["released"] == 1
            assert report["per_company"][company]["in_quarantine"] == 0

            # Reads don't journal.
            await http_request(web.port, "GET", "/stats")
            assert service.wal.appended_seq == 4

    asyncio.run(scenario())


def test_web_mutations_survive_replay(tmp_path):
    """A solve journaled before shutdown re-applies identically on the
    next boot: the released message stays released."""

    async def scenario():
        async with live_stack(tmp_path) as (service, smtp, web):
            sender, users = pick_targets(service)
            client = await ehlo_client(smtp.port)
            assert await client.send_message(sender, users[0], "SPAM: x") == 250
            await client.quit()
            installation = service.route(users[0])
            company = installation.config.company_id
            (challenge_id,) = [
                c.challenge_id
                for c in installation.challenge_manager._challenges.values()
            ]
            status, _ = await http_request(
                web.port,
                "POST",
                "/challenge/solve",
                {"company": company, "challenge_id": challenge_id},
            )
            assert status == 200
            return service.wal.path, company

    wal_path, company = asyncio.run(scenario())
    replayed = LiveCrService(wal_path=str(wal_path))
    replayed.recover()
    report = replayed.last_reconciliation
    replayed.wal.close()
    assert report["reconciled"]
    assert report["per_company"][company]["released"] == 1
    assert report["per_company"][company]["in_quarantine"] == 0


def test_stale_and_invalid_requests(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (service, _smtp, web):
            company = next(iter(service.installations))
            # Unknown challenge id: 404, counted stale, still journaled.
            status, body = await http_request(
                web.port,
                "POST",
                "/challenge/solve",
                {"company": company, "challenge_id": 424242},
            )
            assert status == 404 and body["applied"] is False
            assert service.stats.web_stale == 1
            assert service.wal.appended_seq == 1

            # Unknown company: 404.
            status, _ = await http_request(
                web.port,
                "POST",
                "/digest/release",
                {"company": "c99", "user": "x@y.z", "msg_id": 1},
            )
            assert status == 404

            # Missing fields / wrong shapes / bad routes.
            status, body = await http_request(
                web.port, "POST", "/challenge/solve", {"company": company}
            )
            assert status == 400 and "challenge_id" in body["error"]
            status, _ = await http_request(web.port, "POST", "/shed", {"level": "x"})
            assert status == 400
            status, _ = await http_request(web.port, "GET", "/nope")
            assert status == 404
            status, _ = await http_request(web.port, "PUT", "/stats")
            assert status == 405
            status, _ = await http_request(web.port, "POST", "/nope", {})
            assert status == 404

            report = service.reconcile()
            assert report["reconciled"]

    asyncio.run(scenario())


def test_raw_garbage_does_not_kill_the_server(tmp_path):
    async def scenario():
        async with live_stack(tmp_path) as (_service, _smtp, web):
            reader, writer = await asyncio.open_connection("127.0.0.1", web.port)
            writer.write(b"not http at all\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            assert b"400" in raw.split(b"\r\n", 1)[0]
            writer.close()
            # Server is still alive and serving.
            status, _ = await http_request(web.port, "GET", "/healthz")
            assert status == 200

    asyncio.run(scenario())
