"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--preset", "gigantic"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.preset == "tiny"
        assert args.seed == 7


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "tiny" in out

    def test_run(self, capsys):
        assert main(["run", "--preset", "tiny", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "messages" in out
        assert "mta" in out

    def test_experiment_single(self, capsys):
        assert main(["experiment", "fig1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1 ===" in out
        assert "challenges sent" in out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_multiple(self, capsys):
        assert main(["experiment", "fig1", "sec31", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1 ===" in out
        assert "=== sec31 ===" in out


class TestSweep:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.runs == 3
        assert args.jobs == 1
        assert args.no_cache is False

    def test_invalid_runs_rejected(self, capsys):
        assert main(["sweep", "--runs", "0", "--no-cache"]) == 2
        assert "--runs" in capsys.readouterr().err

    def test_invalid_jobs_rejected(self, capsys):
        assert main(["sweep", "--jobs", "0", "--no-cache"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_runs_and_reports_counters(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
        assert main(["sweep", "--preset", "tiny", "--seed", "3",
                     "--runs", "1", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "correlation stability" in out
        assert "1 simulated, 0 from cache" in out
        # Second invocation answers from the cache: zero simulations.
        assert main(["sweep", "--preset", "tiny", "--seed", "3",
                     "--runs", "1", "--jobs", "1"]) == 0
        assert "0 simulated, 1 from cache" in capsys.readouterr().out
