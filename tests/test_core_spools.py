"""Unit + property tests for the gray spool (quarantine)."""

import random

from hypothesis import given, strategies as st

from repro.core.message import make_message
from repro.core.spools import GraySpool, GrayStatus
from repro.util.simtime import DAY


def _msg(sender="s@x.com", rcpt="u@c.com", t=0.0):
    return make_message(t, sender, rcpt)


def _add(spool, message, user="u@c.com", now=0.0, quarantine=30 * DAY):
    return spool.add(
        message, user, now, expires_at=now + quarantine, challenge_id=1
    )


class TestLifecycle:
    def test_add_and_get(self):
        spool = GraySpool()
        message = _msg()
        entry = _add(spool, message)
        assert spool.get(message.msg_id) is entry
        assert entry.status is GrayStatus.PENDING
        assert spool.pending_count == 1
        assert spool.total_entered == 1

    def test_release(self):
        spool = GraySpool()
        message = _msg()
        _add(spool, message)
        released = spool.release(message.msg_id)
        assert released.status is GrayStatus.RELEASED
        assert spool.get(message.msg_id) is None
        assert spool.pending_count == 0
        assert spool.total_released == 1

    def test_release_absent_returns_none(self):
        assert GraySpool().release(12345) is None

    def test_delete(self):
        spool = GraySpool()
        message = _msg()
        _add(spool, message)
        deleted = spool.delete(message.msg_id)
        assert deleted.status is GrayStatus.DELETED
        assert spool.total_deleted == 1

    def test_double_release_is_noop(self):
        spool = GraySpool()
        message = _msg()
        _add(spool, message)
        spool.release(message.msg_id)
        assert spool.release(message.msg_id) is None
        assert spool.total_released == 1


class TestIndices:
    def test_pending_for_user(self):
        spool = GraySpool()
        m1, m2 = _msg(), _msg()
        _add(spool, m1, user="a@c.com")
        _add(spool, m2, user="b@c.com")
        assert [e.message.msg_id for e in spool.pending_for_user("a@c.com")] == [
            m1.msg_id
        ]

    def test_pending_from_sender_groups_messages(self):
        spool = GraySpool()
        m1 = _msg(sender="spam@x.com")
        m2 = _msg(sender="spam@x.com")
        m3 = _msg(sender="other@x.com")
        for m in (m1, m2, m3):
            _add(spool, m)
        pending = spool.pending_from_sender("u@c.com", "SPAM@X.COM")
        assert {e.message.msg_id for e in pending} == {m1.msg_id, m2.msg_id}

    def test_user_index_cleaned_on_release(self):
        spool = GraySpool()
        message = _msg()
        _add(spool, message)
        spool.release(message.msg_id)
        assert spool.pending_for_user("u@c.com") == []
        assert spool.users_with_pending() == []


class TestExpiry:
    def test_expire_due_respects_deadline(self):
        spool = GraySpool()
        early = _msg(t=0.0)
        late = _msg(t=0.0)
        spool.add(early, "u@c.com", 0.0, expires_at=10.0, challenge_id=None)
        spool.add(late, "u@c.com", 0.0, expires_at=100.0, challenge_id=None)
        expired = spool.expire_due(50.0)
        assert [e.message.msg_id for e in expired] == [early.msg_id]
        assert spool.total_expired == 1
        assert spool.pending_count == 1

    def test_expire_exact_boundary(self):
        # Closed boundary: expires_at == now is due ("held FOR 30 days",
        # unlike the simulator's half-open `until`). Documented in the
        # module docstring; engine-level ordering pinned in
        # tests/test_core_engine.py.
        spool = GraySpool()
        message = _msg()
        spool.add(message, "u@c.com", 0.0, expires_at=10.0, challenge_id=None)
        assert spool.expire_due(10.0) != []

    def test_not_due_just_before_boundary(self):
        spool = GraySpool()
        message = _msg()
        spool.add(message, "u@c.com", 0.0, expires_at=10.0, challenge_id=None)
        assert spool.expire_due(9.999) == []
        assert spool.pending_count == 1


class TestDrain:
    def test_drain_finalizes_everything_pending(self):
        spool = GraySpool()
        m1, m2 = _msg(), _msg()
        _add(spool, m1)
        _add(spool, m2)
        spool.release(m1.msg_id)
        drained = spool.drain(5 * DAY)
        assert [e.message.msg_id for e in drained] == [m2.msg_id]
        assert drained[0].status is GrayStatus.PENDING_AT_HORIZON
        assert spool.pending_count == 0
        assert spool.total_pending_at_horizon == 1

    def test_drain_empty_spool_is_noop(self):
        spool = GraySpool()
        assert spool.drain(0.0) == []
        assert spool.total_pending_at_horizon == 0

    def test_drain_cleans_indices(self):
        spool = GraySpool()
        message = _msg()
        _add(spool, message)
        spool.drain(0.0)
        assert spool.users_with_pending() == []
        assert spool.pending_from_sender("u@c.com", "s@x.com") == []

    def test_drain_reconciles_with_other_terminals(self):
        spool = GraySpool()
        messages = [_msg() for _ in range(5)]
        for m in messages:
            _add(spool, m)
        spool.release(messages[0].msg_id)
        spool.delete(messages[1].msg_id)
        spool._entries[messages[2].msg_id].expires_at = 0.0
        spool.expire_due(0.0)
        spool.drain(0.0)
        assert (
            spool.total_released
            + spool.total_deleted
            + spool.total_expired
            + spool.total_pending_at_horizon
            == spool.total_entered
            == 5
        )
        assert spool.total_pending_at_horizon == 2


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a@x.com", "b@x.com", "c@y.com"]),
                st.sampled_from(["u1@c.com", "u2@c.com"]),
                st.sampled_from(["keep", "release", "delete"]),
            ),
            max_size=40,
        )
    )
    def test_conservation_of_entries(self, operations):
        """entered == pending + released + expired + deleted + drained,
        at every instant and after the horizon drain."""
        spool = GraySpool()
        for sender, user, action in operations:
            message = _msg(sender=sender, rcpt=user)
            spool.add(message, user, 0.0, expires_at=100.0, challenge_id=None)
            if action == "release":
                spool.release(message.msg_id)
            elif action == "delete":
                spool.delete(message.msg_id)
        spool.expire_due(random.Random(0).uniform(0, 200))
        total = (
            spool.pending_count
            + spool.total_released
            + spool.total_expired
            + spool.total_deleted
            + spool.total_pending_at_horizon
        )
        assert total == spool.total_entered
        spool.drain(200.0)
        assert spool.pending_count == 0
        assert (
            spool.total_released
            + spool.total_expired
            + spool.total_deleted
            + spool.total_pending_at_horizon
            == spool.total_entered
        )

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a@x.com", "b@x.com"]),
                st.sampled_from(["u1@c.com", "u2@c.com"]),
            ),
            max_size=30,
        )
    )
    def test_indices_consistent_with_entries(self, pairs):
        spool = GraySpool()
        for sender, user in pairs:
            message = _msg(sender=sender, rcpt=user)
            spool.add(message, user, 0.0, expires_at=100.0, challenge_id=None)
        by_user = sum(
            len(spool.pending_for_user(u)) for u in spool.users_with_pending()
        )
        assert by_user == spool.pending_count
        by_pair = sum(
            len(spool.pending_from_sender(u, s))
            for s in ("a@x.com", "b@x.com")
            for u in ("u1@c.com", "u2@c.com")
        )
        assert by_pair == spool.pending_count
