"""Unit + property tests for per-user whitelists/blacklists."""

from hypothesis import given, strategies as st

from repro.core.whitelist import (
    UserLists,
    WhitelistDirectory,
    WhitelistSource,
)

addresses = st.from_regex(r"[a-z]{1,8}@[a-z]{1,8}\.(com|net)", fullmatch=True)


class TestUserLists:
    def test_add_and_lookup(self):
        lists = UserLists()
        assert lists.add_to_whitelist("A@B.com", 1.0, WhitelistSource.MANUAL)
        assert lists.in_whitelist("a@b.com")
        assert lists.in_whitelist("A@B.COM")

    def test_add_is_idempotent(self):
        lists = UserLists()
        assert lists.add_to_whitelist("a@b.com", 1.0, WhitelistSource.MANUAL)
        assert not lists.add_to_whitelist("a@b.com", 2.0, WhitelistSource.CAPTCHA)
        entry = lists.entry_for("a@b.com")
        assert entry.added_at == 1.0
        assert entry.source is WhitelistSource.MANUAL

    def test_seed_additions_not_logged(self):
        lists = UserLists()
        lists.add_to_whitelist("a@b.com", 0.0, WhitelistSource.SEED)
        assert lists.changes == []

    def test_non_seed_additions_logged(self):
        lists = UserLists()
        lists.add_to_whitelist("a@b.com", 5.0, WhitelistSource.CAPTCHA)
        assert len(lists.changes) == 1
        assert lists.changes[0].t == 5.0
        assert lists.changes[0].source is WhitelistSource.CAPTCHA

    def test_whitelisting_removes_from_blacklist(self):
        lists = UserLists()
        lists.add_to_blacklist("a@b.com")
        lists.add_to_whitelist("a@b.com", 1.0, WhitelistSource.DIGEST)
        assert not lists.in_blacklist("a@b.com")
        assert lists.in_whitelist("a@b.com")

    def test_blacklisting_removes_from_whitelist(self):
        lists = UserLists()
        lists.add_to_whitelist("a@b.com", 1.0, WhitelistSource.MANUAL)
        lists.add_to_blacklist("a@b.com")
        assert lists.in_blacklist("a@b.com")
        assert not lists.in_whitelist("a@b.com")

    def test_remove_from_whitelist(self):
        lists = UserLists()
        lists.add_to_whitelist("a@b.com", 1.0, WhitelistSource.MANUAL)
        assert lists.remove_from_whitelist("a@b.com")
        assert not lists.in_whitelist("a@b.com")
        assert not lists.remove_from_whitelist("a@b.com")

    def test_changes_between_window(self):
        lists = UserLists()
        for t in (1.0, 5.0, 9.0):
            lists.add_to_whitelist(f"x{t}@b.com", t, WhitelistSource.OUTBOUND)
        window = lists.changes_between(2.0, 9.0)
        assert [c.t for c in window] == [5.0]

    @given(st.lists(st.tuples(addresses, st.floats(0, 100)), max_size=30))
    def test_whitelist_size_equals_distinct_addresses(self, additions):
        lists = UserLists()
        for address, t in additions:
            lists.add_to_whitelist(address, t, WhitelistSource.MANUAL)
        assert len(lists.whitelist) == len(
            {a.lower() for a, _ in additions}
        )
        # Change log has exactly one entry per distinct address.
        assert len(lists.changes) == len(lists.whitelist)

    @given(st.lists(addresses, max_size=30))
    def test_never_in_both_lists(self, stream):
        lists = UserLists()
        for i, address in enumerate(stream):
            if i % 2:
                lists.add_to_blacklist(address)
            else:
                lists.add_to_whitelist(address, float(i), WhitelistSource.DIGEST)
        overlap = set(lists.whitelist) & lists.blacklist
        assert overlap == set()


class TestDirectory:
    def test_lists_created_on_first_touch(self):
        directory = WhitelistDirectory()
        assert "u@c.com" not in directory
        lists = directory.lists_for("U@C.com")
        assert "u@c.com" in directory
        assert directory.lists_for("u@c.com") is lists

    def test_len_and_known_users(self):
        directory = WhitelistDirectory()
        directory.lists_for("a@c.com")
        directory.lists_for("b@c.com")
        assert len(directory) == 2
        assert sorted(directory.known_users()) == ["a@c.com", "b@c.com"]
