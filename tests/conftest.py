"""Shared fixtures.

The full-simulation fixtures are session-scoped: many analysis and
integration tests read the same run, and a run is the expensive part.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_simulation


@pytest.fixture(scope="session")
def tiny_result():
    """A deterministic tiny deployment run (6 companies, 10 days)."""
    return run_simulation("tiny", seed=7)


@pytest.fixture(scope="session")
def small_result():
    """A deterministic small deployment run (12 companies, 16 days)."""
    return run_simulation("small", seed=11)


@pytest.fixture(scope="session")
def tiny_store(tiny_result):
    return tiny_result.store


@pytest.fixture(scope="session")
def small_store(small_result):
    return small_result.store
