"""Cross-module property tests: arbitrary traces through a full installation.

Hypothesis drives randomized message sequences and user actions through a
micro CompanyInstallation and checks the global invariants that every
analysis relies on:

* disposition conservation — every accepted message is dispatched exactly
  once, every quarantined message ends in exactly one of
  {pending, released, expired, deleted};
* challenge conservation — challenge emails sent == challenge records ==
  delivery outcomes (after drain); suppressed messages attach to an
  existing challenge;
* whitelist coherence — a sender is never in a user's whitelist and
  blacklist at once, and solved challenges always whitelist their sender.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.message import MessageKind, SenderClass
from repro.core.spools import Category
from repro.util.simtime import DAY, HOUR

from tests.helpers import (
    CONTACT_DOMAIN,
    USER_ADDRESS,
    make_micro_env,
)

# One step of a trace: (hours_gap, sender_index, sender_kind, action)
steps = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=20.0),  # hours between events
        st.integers(0, 5),  # sender index
        st.sampled_from(["real", "nonexistent", "dead"]),
        st.sampled_from(["send", "send", "send", "solve_last", "outbound"]),
    ),
    max_size=25,
)


def _sender(index: int, kind: str) -> str:
    if kind == "real":
        return f"bob{index}@{CONTACT_DOMAIN}"
    if kind == "nonexistent":
        return f"ghost{index}@{CONTACT_DOMAIN}"
    return f"dead{index}@parked.example"


class TestEngineInvariants:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps)
    def test_disposition_and_challenge_conservation(self, trace):
        env = make_micro_env()
        # Register the "real" mailboxes so challenges to them deliver.
        for i in range(6):
            env.contact_host.add_mailbox(f"bob{i}")
        last_challenge_id = None
        for hours_gap, index, kind, action in trace:
            env.simulator.run(until=env.simulator.now + hours_gap * HOUR)
            if action == "solve_last" and last_challenge_id is not None:
                env.installation.solve_challenge(last_challenge_id)
            elif action == "outbound":
                env.installation.send_user_mail(
                    "alice", _sender(index, "real"), 2_000
                )
            else:
                sender_class = {
                    "real": SenderClass.REAL,
                    "nonexistent": SenderClass.NONEXISTENT_MAILBOX,
                    "dead": SenderClass.DEAD_DOMAIN,
                }[kind]
                env.inbound(
                    env_from=_sender(index, kind),
                    kind=MessageKind.LEGIT,
                    sender_class=sender_class,
                )
                if env.store.challenges:
                    last_challenge_id = env.store.challenges[-1].challenge_id
        env.drain()
        store = env.store

        # Disposition conservation at the MTA/dispatch boundary.
        accepted = sum(1 for r in store.mta if r.accepted)
        assert accepted == len(store.dispatch)

        # Quarantine conservation.
        quarantined = sum(
            1
            for r in store.dispatch
            if r.category is Category.GRAY and r.filter_drop is None
        )
        spool = env.installation.gray_spool
        assert quarantined == spool.total_entered
        assert (
            spool.pending_count
            + spool.total_released
            + spool.total_expired
            + spool.total_deleted
            == spool.total_entered
        )
        assert len(store.releases) == spool.total_released

        # Challenge conservation (after drain every send has an outcome).
        assert len(store.challenge_outcomes) == len(store.challenges)
        challenge_ids = {c.challenge_id for c in store.challenges}
        attached = {
            r.challenge_id
            for r in store.dispatch
            if r.challenge_id is not None
        }
        assert attached == challenge_ids

        # Whitelist coherence.
        for _user, lists in env.installation.whitelists.items():
            assert not (set(lists.whitelist) & lists.blacklist)

        # Every solved challenge whitelisted its sender for its user.
        for challenge in env.installation.challenge_manager.all_challenges():
            if challenge.solved:
                lists = env.installation.whitelists.lists_for(challenge.user)
                assert lists.in_whitelist(challenge.sender)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 2**32 - 1))
    def test_repeat_sender_never_gets_parallel_challenges(self, n, seed):
        import random

        rng = random.Random(seed)
        env = make_micro_env()
        sender = f"carol@{CONTACT_DOMAIN}"
        for _ in range(n):
            env.simulator.run(
                until=env.simulator.now + rng.uniform(0, 2 * DAY)
            )
            env.inbound(env_from=sender)
        # With dedup on, at most one *pending* challenge per (user, sender)
        # exists at any time; all messages attach to the chain of
        # challenges created after expiries.
        manager = env.installation.challenge_manager
        pending = manager.pending_challenge_for(USER_ADDRESS, sender)
        total_attached = sum(
            len(c.msg_ids) for c in manager.all_challenges()
        )
        assert total_attached == n
        if pending is not None:
            assert pending.solved_at is None
