"""End-to-end unit tests of one CompanyInstallation on a micro world."""

import pytest

from repro.analysis.records import DispatchRecord
from repro.core.challenge import WebAction
from repro.core.digest import DigestAction, DigestDecision
from repro.core.engine import BehaviorHooks
from repro.core.message import SenderClass
from repro.core.spools import Category, ReleaseMechanism
from repro.core.whitelist import WhitelistSource
from repro.net.smtp import BounceReason, FinalStatus
from repro.util.simtime import DAY, HOUR

from tests.helpers import (
    CHALLENGE_IP,
    CONTACT,
    CONTACT_DOMAIN,
    DEAD_DOMAIN,
    MTA_OUT_IP,
    USER,
    USER_ADDRESS,
    make_micro_env,
)


class TestInboundPath:
    def test_mta_record_written_for_every_message(self):
        env = make_micro_env()
        env.inbound()
        env.inbound(env_from="x@ghost.example")  # dropped: unresolvable
        assert len(env.store.mta) == 2
        assert sum(1 for r in env.store.mta if r.accepted) == 1

    def test_dropped_message_has_no_dispatch_record(self):
        env = make_micro_env()
        env.inbound(env_from="x@ghost.example")
        assert env.store.dispatch == []

    def test_unknown_sender_quarantined_and_challenged(self):
        env = make_micro_env()
        message = env.inbound()
        record = env.store.dispatch[0]
        assert record.category is Category.GRAY
        assert record.challenge_created
        assert env.installation.gray_spool.get(message.msg_id) is not None
        assert len(env.store.challenges) == 1

    def test_challenge_sent_from_challenge_ip(self):
        env = make_micro_env(dual_outbound=True)
        env.inbound()
        assert env.store.challenges[0].server_ip == CHALLENGE_IP

    def test_single_mta_config_uses_one_ip(self):
        env = make_micro_env(dual_outbound=False)
        env.inbound()
        assert env.store.challenges[0].server_ip == MTA_OUT_IP
        assert env.installation.challenge_mta is env.installation.user_mta

    def test_seeded_whitelist_sender_delivered_instantly(self):
        env = make_micro_env()
        env.installation.seed_whitelist(USER_ADDRESS, [CONTACT])
        env.inbound()
        record = env.store.dispatch[0]
        assert record.category is Category.WHITE
        assert env.store.challenges == []
        assert env.installation.inbox_delivered == 1

    def test_blacklisted_sender_dropped_silently(self):
        env = make_micro_env()
        env.installation.seed_blacklist(USER_ADDRESS, [CONTACT])
        env.inbound()
        assert env.store.dispatch[0].category is Category.BLACK
        assert env.store.challenges == []

    def test_spf_evaluated_only_for_quarantined(self):
        env = make_micro_env()
        env.installation.seed_whitelist(USER_ADDRESS, [CONTACT])
        env.inbound()  # white
        env.inbound(env_from=f"carol@{CONTACT_DOMAIN}")  # gray, quarantined
        from repro.core.filters.spf import SpfResult

        white, gray = env.store.dispatch
        assert white.spf is SpfResult.NONE
        assert gray.spf is SpfResult.PASS  # contact domain publishes SPF


class TestChallengeDelivery:
    def test_challenge_to_real_sender_delivered(self):
        env = make_micro_env()
        env.inbound()
        env.drain()
        (outcome,) = env.store.challenge_outcomes
        assert outcome.status is FinalStatus.DELIVERED

    def test_challenge_to_nonexistent_sender_bounces(self):
        env = make_micro_env()
        env.inbound(
            env_from=f"ghost@{CONTACT_DOMAIN}",
            sender_class=SenderClass.NONEXISTENT_MAILBOX,
        )
        env.drain()
        (outcome,) = env.store.challenge_outcomes
        assert outcome.status is FinalStatus.BOUNCED
        assert outcome.bounce_reason is BounceReason.NONEXISTENT_RECIPIENT

    def test_challenge_to_dead_domain_expires(self):
        env = make_micro_env()
        env.inbound(
            env_from=f"x@{DEAD_DOMAIN}", sender_class=SenderClass.DEAD_DOMAIN
        )
        env.drain()
        (outcome,) = env.store.challenge_outcomes
        assert outcome.status is FinalStatus.EXPIRED
        assert outcome.attempts > 1

    def test_delivered_hook_fires(self):
        seen = []
        hooks = BehaviorHooks(
            on_challenge_delivered=lambda inst, ch: seen.append(ch.sender)
        )
        env = make_micro_env(hooks=hooks)
        env.inbound()
        env.drain()
        assert seen == [CONTACT.lower()]

    def test_hook_not_fired_on_bounce(self):
        seen = []
        hooks = BehaviorHooks(
            on_challenge_delivered=lambda inst, ch: seen.append(ch)
        )
        env = make_micro_env(hooks=hooks)
        env.inbound(env_from=f"ghost@{CONTACT_DOMAIN}")
        env.drain()
        assert seen == []


class TestSolveFlow:
    def test_solve_whitelists_and_releases(self):
        env = make_micro_env()
        message = env.inbound()
        challenge_id = env.store.challenges[0].challenge_id
        env.simulator.run(until=1 * HOUR)
        env.installation.record_web_open(challenge_id)
        env.installation.solve_challenge(challenge_id)

        lists = env.installation.whitelists.lists_for(USER_ADDRESS)
        entry = lists.entry_for(CONTACT)
        assert entry is not None
        assert entry.source is WhitelistSource.CAPTCHA
        (release,) = env.store.releases
        assert release.msg_id == message.msg_id
        assert release.mechanism is ReleaseMechanism.CAPTCHA
        assert release.delay == pytest.approx(1 * HOUR)
        assert env.installation.gray_spool.pending_count == 0

    def test_solve_releases_all_pending_from_sender(self):
        env = make_micro_env()
        env.inbound()
        env.simulator.run(until=10.0)
        env.inbound()  # second message, same sender: attaches
        challenge_id = env.store.challenges[0].challenge_id
        env.installation.solve_challenge(challenge_id)
        assert len(env.store.releases) == 2

    def test_next_message_after_solve_is_white(self):
        env = make_micro_env()
        env.inbound()
        env.installation.solve_challenge(env.store.challenges[0].challenge_id)
        env.simulator.run(until=100.0)
        env.inbound()
        assert env.store.dispatch[-1].category is Category.WHITE

    def test_double_solve_is_idempotent(self):
        env = make_micro_env()
        env.inbound()
        challenge_id = env.store.challenges[0].challenge_id
        env.installation.solve_challenge(challenge_id)
        env.installation.solve_challenge(challenge_id)
        assert len(env.store.releases) == 1
        solves = [
            w for w in env.store.web_access if w.action is WebAction.SOLVE
        ]
        assert len(solves) == 1

    def test_whitelist_change_logged_once(self):
        env = make_micro_env()
        env.inbound()
        env.installation.solve_challenge(env.store.challenges[0].challenge_id)
        changes = [
            c
            for c in env.store.whitelist_changes
            if c.source is WhitelistSource.CAPTCHA
        ]
        assert len(changes) == 1


class TestDigestFlow:
    def _env_with_digest(self, action):
        decisions = []

        def review(installation, user, entries, now):
            return [
                DigestDecision(
                    msg_id=entry.message.msg_id, action=action, act_delay=600.0
                )
                for entry in entries
            ]

        hooks = BehaviorHooks(digest_review=review)
        return make_micro_env(hooks=hooks)

    def test_digest_whitelist_releases_message(self):
        env = self._env_with_digest(DigestAction.WHITELIST)
        message = env.inbound()
        env.run_days(2)
        (release,) = env.store.releases
        assert release.mechanism is ReleaseMechanism.DIGEST
        assert release.msg_id == message.msg_id
        lists = env.installation.whitelists.lists_for(USER_ADDRESS)
        assert lists.entry_for(CONTACT).source is WhitelistSource.DIGEST

    def test_digest_delete_removes_entry(self):
        env = self._env_with_digest(DigestAction.DELETE)
        env.inbound()
        env.run_days(2)
        assert env.store.releases == []
        assert env.installation.gray_spool.pending_count == 0
        assert env.installation.gray_spool.total_deleted == 1

    def test_digest_record_written_daily_while_pending(self):
        env = self._env_with_digest(DigestAction.IGNORE)
        env.inbound()
        env.run_days(3)
        assert len(env.store.digests) >= 2
        assert all(d.pending_count == 1 for d in env.store.digests)

    def test_digest_action_skipped_if_already_released(self):
        # The sender solves between digest generation and the user's click.
        decisions_seen = []

        def review(installation, user, entries, now):
            decisions_seen.extend(entries)
            return [
                DigestDecision(
                    msg_id=entry.message.msg_id,
                    action=DigestAction.WHITELIST,
                    act_delay=2 * HOUR,
                )
                for entry in entries
            ]

        env = make_micro_env(hooks=BehaviorHooks(digest_review=review))
        env.inbound()
        challenge_id = env.store.challenges[0].challenge_id
        # Run to just past digest generation (07:00 next day), then solve.
        env.simulator.run(until=1 * DAY + 7 * HOUR + 60)
        assert decisions_seen, "digest should have been reviewed"
        env.installation.solve_challenge(challenge_id)
        env.run_days(1)
        mechanisms = {r.mechanism for r in env.store.releases}
        assert mechanisms == {ReleaseMechanism.CAPTCHA}
        assert len(env.store.releases) == 1


class TestExpiry:
    def test_quarantine_expires_after_30_days(self):
        env = make_micro_env()
        message = env.inbound()
        env.run_days(31)
        assert env.installation.gray_spool.pending_count == 0
        (expiry,) = env.store.expiries
        assert expiry.msg_id == message.msg_id

    def test_expiry_reopens_challenge_slot(self):
        env = make_micro_env()
        env.inbound()
        env.run_days(31)
        env.inbound()
        assert len(env.store.challenges) == 2

    def test_no_expiry_before_deadline(self):
        env = make_micro_env()
        env.inbound()
        env.run_days(15)
        assert env.store.expiries == []


class TestUserActions:
    def test_outbound_mail_whitelists_recipient(self):
        env = make_micro_env()
        env.installation.send_user_mail(USER, f"carol@{CONTACT_DOMAIN}", 4000)
        lists = env.installation.whitelists.lists_for(USER_ADDRESS)
        entry = lists.entry_for(f"carol@{CONTACT_DOMAIN}")
        assert entry.source is WhitelistSource.OUTBOUND
        assert len(env.store.outbound) == 1

    def test_outbound_then_inbound_is_white(self):
        env = make_micro_env()
        env.installation.send_user_mail(USER, f"carol@{CONTACT_DOMAIN}", 4000)
        env.inbound(env_from=f"carol@{CONTACT_DOMAIN}")
        assert env.store.dispatch[0].category is Category.WHITE

    def test_manual_whitelist(self):
        env = make_micro_env()
        env.installation.manual_whitelist(USER_ADDRESS, "new@elsewhere.example")
        lists = env.installation.whitelists.lists_for(USER_ADDRESS)
        assert lists.entry_for("new@elsewhere.example").source is (
            WhitelistSource.MANUAL
        )


class TestRelayRecipients:
    def test_relayed_recipient_processed_without_digest(self):
        env = make_micro_env(open_relay=True)
        env.inbound(env_to="whoever@relayed.example")
        record = env.store.dispatch[0]
        assert record.category is Category.GRAY
        assert not record.protected_user
        env.run_days(2)
        # Relayed recipients never receive digests.
        assert env.store.digests == []

    def test_relayed_recipient_still_challenged(self):
        env = make_micro_env(open_relay=True)
        env.inbound(env_to="whoever@relayed.example")
        assert len(env.store.challenges) == 1


class TestConservation:
    def test_every_accepted_message_has_one_disposition(self):
        env = make_micro_env()
        env.installation.seed_whitelist(USER_ADDRESS, [CONTACT])
        env.inbound()  # white
        env.inbound(env_from=f"carol@{CONTACT_DOMAIN}")  # gray quarantined
        env.inbound(env_from="x@ghost.example")  # MTA drop
        env.drain()
        accepted = sum(1 for r in env.store.mta if r.accepted)
        assert accepted == len(env.store.dispatch)
        for record in env.store.dispatch:
            assert isinstance(record, DispatchRecord)
            in_spool = (
                record.category is Category.GRAY
                and record.filter_drop is None
            )
            assert in_spool == (record.challenge_id is not None)


class TestNullSenderHandling:
    """RFC 3834 loop protection: bounces are never challenged."""

    def test_null_sender_accepted_at_mta(self):
        env = make_micro_env()
        env.inbound(env_from="")
        assert env.store.mta[-1].accepted

    def test_null_sender_quarantined_without_challenge(self):
        env = make_micro_env()
        message = env.inbound(env_from="")
        record = env.store.dispatch[-1]
        assert record.category is Category.GRAY
        assert record.challenge_id is None
        assert env.store.challenges == []
        entry = env.installation.gray_spool.get(message.msg_id)
        assert entry is not None
        assert entry.challenge_id is None

    def test_null_sender_skips_whitelist_and_blacklist(self):
        env = make_micro_env()
        # Even with "" somehow blacklisted, the dispatcher must not consult
        # the lists for the null path.
        env.installation.seed_blacklist(USER_ADDRESS, [""])
        env.inbound(env_from="")
        assert env.store.dispatch[-1].category is Category.GRAY

    def test_null_sender_expires_normally(self):
        env = make_micro_env()
        env.inbound(env_from="")
        env.run_days(31)
        assert len(env.store.expiries) == 1


class TestLifecycleLedger:
    """The bugs the lifecycle auditor flushed out, pinned as regressions."""

    def _delete_all_hook(self):
        def review(installation, user, entries, now):
            return [
                DigestDecision(
                    msg_id=entry.message.msg_id,
                    action=DigestAction.DELETE,
                    act_delay=600.0,
                )
                for entry in entries
            ]

        return BehaviorHooks(digest_review=review)

    def test_digest_delete_clears_challenge_slot(self):
        # Regression: deleting the last quarantined message behind a
        # challenge used to leave the pending slot live, so the sender's
        # next message silently attached to the dead challenge instead of
        # triggering a fresh one.
        env = make_micro_env(hooks=self._delete_all_hook(), audit=True)
        env.inbound()
        env.run_days(2)
        assert env.installation.gray_spool.total_deleted == 1
        assert env.installation.challenge_manager.pending_count == 0
        env.inbound()
        assert len(env.store.challenges) == 2

    def test_digest_delete_keeps_slot_while_sender_has_other_mail(self):
        # Two quarantined messages from one sender share a challenge;
        # deleting only one must NOT retire the slot.
        acted = []

        def review(installation, user, entries, now):
            if acted:
                return []
            acted.append(True)
            return [
                DigestDecision(
                    msg_id=entries[0].message.msg_id,
                    action=DigestAction.DELETE,
                    act_delay=600.0,
                )
            ]

        env = make_micro_env(hooks=BehaviorHooks(digest_review=review), audit=True)
        env.inbound()
        env.inbound()
        env.run_days(2)
        assert env.installation.gray_spool.total_deleted == 1
        assert env.installation.challenge_manager.pending_count == 1
        env.inbound()
        assert len(env.store.challenges) == 1  # still deduplicated

    def test_shutdown_drains_to_pending_at_horizon(self):
        env = make_micro_env(audit=True)
        message = env.inbound()
        env.run_days(3)
        assert env.installation.gray_spool.pending_count == 1
        env.installation.shutdown()
        spool = env.installation.gray_spool
        assert spool.pending_count == 0
        assert spool.total_pending_at_horizon == 1
        assert spool.get(message.msg_id) is None
        # The drain is bookkeeping, not measurement: no store records.
        assert env.store.expiries == []
        assert env.store.releases == []
        snap = env.installation.ledger.snapshot()
        assert snap.conserved
        assert snap.pending_at_horizon == 1

    def test_shutdown_clears_challenge_slot(self):
        env = make_micro_env(audit=True)
        env.inbound()
        env.run_days(3)
        env.installation.shutdown()
        assert env.installation.challenge_manager.pending_count == 0
        assert env.installation.challenge_manager.pending_expired == 1

    def test_expiry_fires_at_exact_30_day_boundary(self):
        # Entry quarantined at day 1 00:30 expires exactly at a later
        # sweep instant (day 31 00:30); the closed boundary in expire_due
        # (expires_at <= now) must expire it at that sweep, not a day late.
        env = make_micro_env()
        env.inbound(at=DAY + 30 * 60)
        env.simulator.run(until=31 * DAY + 30 * 60 + 1)
        assert len(env.store.expiries) == 1
        assert env.store.expiries[0].t == 31 * DAY + 30 * 60

    def test_same_timestamp_digest_and_expiry_one_terminal(self):
        # A digest whitelist action lands on the exact timestamp of the
        # expiry sweep that would expire the same entry. Whichever runs
        # first wins; the loser must be a silent no-op and the message
        # must end in exactly one terminal state (pinned by audit mode).
        target = 31 * DAY + 30 * 60
        acted = []

        def review(installation, user, entries, now):
            if acted:
                return []
            acted.append(True)
            return [
                DigestDecision(
                    msg_id=entries[0].message.msg_id,
                    action=DigestAction.WHITELIST,
                    act_delay=target - now,
                )
            ]

        env = make_micro_env(hooks=BehaviorHooks(digest_review=review), audit=True)
        env.inbound(at=DAY + 30 * 60)  # expires exactly at `target`
        env.simulator.run(until=target + 1)
        spool = env.installation.gray_spool
        assert spool.total_released + spool.total_expired == 1
        assert spool.pending_count == 0
        assert env.installation.ledger.snapshot().in_quarantine == 0

    def test_mixed_case_recipient_accepted(self):
        # Regression: MTA-IN compared the raw local-part, so a mixed-case
        # recipient was wrongly dropped as UNKNOWN_RECIPIENT before
        # normalization moved to ingress.
        env = make_micro_env()
        env.inbound(env_to="Alice@Acme-Corp.example")
        assert env.store.mta[-1].accepted
        assert env.store.dispatch[-1].user == USER_ADDRESS

    def test_mixed_case_release_then_whitelist(self):
        # A sender using different casing across messages is one identity:
        # solving the challenge must whitelist and release regardless of
        # the casing the messages arrived with.
        env = make_micro_env(audit=True)
        env.inbound(env_from="Bob@Partner.example")
        assert len(env.store.challenges) == 1
        challenge_id = env.store.challenges[0].challenge_id
        env.inbound(env_from="BOB@PARTNER.EXAMPLE")
        assert len(env.store.challenges) == 1  # same pending challenge
        env.installation.solve_challenge(challenge_id)
        assert len(env.store.releases) == 2
        lists = env.installation.whitelists.lists_for(USER_ADDRESS)
        assert lists.in_whitelist("bob@partner.example")
        env.inbound(env_from="bOb@pArtner.example")
        assert env.store.dispatch[-1].category is Category.WHITE

    def test_digest_counters_reconcile(self):
        env = make_micro_env(hooks=self._delete_all_hook(), audit=True)
        env.inbound()
        env.inbound(env_from=f"carol@{CONTACT_DOMAIN}")
        env.run_days(2)
        counters = env.installation.digest_counters
        assert counters.digests_generated >= 1
        assert counters.entries_listed >= 2
        assert counters.delete_actions == env.installation.gray_spool.total_deleted
        assert counters.stale_actions == 0
