"""Unit tests for the daily-statistics / temporal-structure analysis."""

import pytest

from repro.analysis import timeseries
from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.util.simtime import DAY

from tests import recordfactory as rf

INFO = DeploymentInfo(
    n_companies=2,
    n_open_relays=0,
    users_per_company={"c0": 5, "c1": 5},
    horizon_days=4.0,
    min_cluster_size=3,
    volume_scale=1.0,
)


class TestDailyRates:
    def _store(self):
        store = LogStore()
        # 8 messages over 4 days (2/day), 2 white dispatches, 1 challenge.
        for day in range(4):
            rf.mta(store, t=day * DAY + 100.0)
            rf.mta(store, t=day * DAY + 200.0)
        rf.dispatch(store, category=Category.WHITE, t=100.0)
        rf.dispatch(store, category=Category.WHITE, t=DAY + 100.0)
        rf.challenge(store, 1, t=100.0)
        return store

    def test_rates(self):
        stats = timeseries.compute(self._store(), INFO)
        assert stats.emails_per_day == pytest.approx(2.0)
        assert stats.white_per_day == pytest.approx(0.5)
        assert stats.challenges_per_day == pytest.approx(0.25)
        assert stats.company_days == pytest.approx(8.0)

    def test_daily_series(self):
        stats = timeseries.compute(self._store(), INFO)
        assert timeseries.daily_series(stats) == [2, 2, 2, 2]

    def test_series_fills_gaps(self):
        store = LogStore()
        rf.mta(store, t=0.0)
        rf.mta(store, t=3 * DAY + 1.0)
        stats = timeseries.compute(store, INFO)
        assert timeseries.daily_series(stats) == [1, 0, 0, 1]

    def test_empty_store(self):
        stats = timeseries.compute(LogStore(), INFO)
        assert stats.emails_per_day == 0.0
        assert timeseries.daily_series(stats) == []


class TestWeekendStructure:
    def test_weekend_ratios(self):
        store = LogStore()
        # Sim epoch is Thursday; day 2 is Saturday.
        weekday_t = 0.5 * DAY  # Thursday
        weekend_t = 2.5 * DAY  # Saturday
        for _ in range(10):
            rf.dispatch(store, kind=MessageKind.LEGIT, t=weekday_t)
        for _ in range(3):
            rf.dispatch(store, kind=MessageKind.LEGIT, t=weekend_t)
        for _ in range(10):
            rf.dispatch(store, kind=MessageKind.SPAM, t=weekday_t)
        for _ in range(9):
            rf.dispatch(store, kind=MessageKind.SPAM, t=weekend_t)
        stats = timeseries.compute(store, INFO)
        assert stats.legit_weekend_ratio == pytest.approx(0.3)
        assert stats.spam_weekend_ratio == pytest.approx(0.9)

    def test_weekend_dip_on_real_run(self, tiny_result):
        stats = timeseries.compute(tiny_result.store, tiny_result.info)
        # Legit traffic dips harder on weekends than spam (spam is 24/7).
        assert stats.legit_weekend_ratio < stats.spam_weekend_ratio

    def test_render_smoke(self, tiny_result):
        out = timeseries.render(tiny_result.store, tiny_result.info)
        assert "daily statistics" in out
        assert "daily inbound volume" in out
