"""Unit + property tests for the statistics toolkit, cross-checked against
numpy where available."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    cdf_at,
    empirical_cdf,
    histogram,
    mean,
    median,
    pearson,
    percentile,
    safe_ratio,
    stddev,
    variance,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMoments:
    def test_mean_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_constant_is_zero(self):
        assert variance([4.0, 4.0, 4.0]) == 0.0

    def test_stddev_matches_numpy(self):
        data = [1.5, 2.5, 9.0, -3.0, 0.25]
        assert stddev(data) == pytest.approx(np.std(data))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_mean_matches_numpy(self, data):
        assert mean(data) == pytest.approx(float(np.mean(data)), abs=1e-6)


class TestPercentile:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single_value(self):
        assert percentile([42.0], 99.0) == 42.0

    def test_bounds(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(
        st.lists(finite_floats, min_size=2, max_size=40),
        st.floats(min_value=0, max_value=100),
    )
    def test_matches_numpy_linear(self, data, pct):
        assert percentile(data, pct) == pytest.approx(
            float(np.percentile(data, pct)), abs=1e-6
        )


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_matches_numpy(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [1.1, 1.9, 4.5, 7.2, 18.0]
        assert pearson(xs, ys) == pytest.approx(
            float(np.corrcoef(xs, ys)[0, 1])
        )

    @given(
        st.lists(
            st.tuples(finite_floats, finite_floats), min_size=2, max_size=30
        )
    )
    def test_always_in_unit_interval(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        r = pearson(xs, ys)
        assert -1.0 <= r <= 1.0
        assert not math.isnan(r)


class TestCdf:
    def test_empirical_cdf_basic(self):
        points = empirical_cdf([3.0, 1.0, 2.0])
        assert [(p.value, p.fraction) for p in points] == [
            (1.0, pytest.approx(1 / 3)),
            (2.0, pytest.approx(2 / 3)),
            (3.0, 1.0),
        ]

    def test_duplicates_collapse(self):
        points = empirical_cdf([1.0, 1.0, 2.0])
        assert len(points) == 2
        assert points[0].fraction == pytest.approx(2 / 3)

    def test_cdf_at_below_min_is_zero(self):
        points = empirical_cdf([5.0, 10.0])
        assert cdf_at(points, 4.9) == 0.0

    def test_cdf_at_above_max_is_one(self):
        points = empirical_cdf([5.0, 10.0])
        assert cdf_at(points, 11.0) == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_cdf_is_monotone_and_ends_at_one(self, data):
        points = empirical_cdf(data)
        fractions = [p.fraction for p in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        values = [p.value for p in points]
        assert values == sorted(values)


class TestHistogram:
    def test_basic_binning(self):
        bins = histogram([1, 2, 3, 10, 11], [0, 5, 20])
        assert [b.count for b in bins] == [3, 2]

    def test_values_outside_edges_ignored(self):
        bins = histogram([-5, 25], [0, 10, 20])
        assert sum(b.count for b in bins) == 0

    def test_right_edge_exclusive(self):
        bins = histogram([10], [0, 10, 20])
        assert [b.count for b in bins] == [0, 1]

    def test_non_monotone_edges_raise(self):
        with pytest.raises(ValueError):
            histogram([1], [0, 0, 1])

    def test_too_few_edges_raise(self):
        with pytest.raises(ValueError):
            histogram([1], [0])

    @given(
        st.lists(st.floats(min_value=0, max_value=100), max_size=100),
    )
    def test_total_count_preserved_inside_range(self, data):
        edges = [0, 25, 50, 75, 100.0001]
        bins = histogram(data, edges)
        inside = sum(1 for v in data if 0 <= v < 100.0001)
        assert sum(b.count for b in bins) == inside


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(1, 4) == 0.25

    def test_zero_denominator(self):
        assert safe_ratio(5, 0) == 0.0
