"""Engine-side tests of the live service: admission, degradation, overload.

The overload test is the acceptance gate from the issue: offer ≥ 3× the
engine's capacity and the service must answer 421 for the excess — never
drop silently, never lose an acked message — and the ledger must
reconcile exactly (in-process, no kills: ``accepted == acked``).
"""

from __future__ import annotations

import asyncio

from repro.serve.admission import MAX_SHED_LEVEL, DegradationLadder
from repro.serve.retry import RetryPolicy
from repro.serve.sstress import StressConfig, run_stress
from tests.serve_harness import ehlo_client, http_request, live_stack, pick_targets


class TestDegradationLadder:
    def test_escalates_through_levels(self):
        ladder = DegradationLadder(capacity=100)
        assert ladder.observe(10) == 0
        assert ladder.observe(60) == 1  # past up[0]=0.55
        assert ladder.observe(90) == 2  # past up[1]=0.85
        assert ladder.level == MAX_SHED_LEVEL

    def test_deep_overload_jumps_straight_to_max(self):
        ladder = DegradationLadder(capacity=100)
        assert ladder.observe(95) == 2
        assert [(old, new) for _, old, new, _ in ladder.transitions] == [
            (0, 1),
            (1, 2),
        ]

    def test_hysteresis_no_flap_between_watermarks(self):
        ladder = DegradationLadder(capacity=100)
        ladder.observe(60)  # level 1
        # Between down[0]=0.20 and up[0]=0.55: stays at 1, no transitions.
        before = len(ladder.transitions)
        for depth in (30, 50, 25, 54):
            assert ladder.observe(depth) == 1
        assert len(ladder.transitions) == before

    def test_relaxes_as_load_drains(self):
        ladder = DegradationLadder(capacity=100)
        ladder.observe(95)
        assert ladder.observe(45) == 1  # <= down[1]=0.50
        assert ladder.observe(5) == 0  # <= down[0]=0.20
        assert ladder.level == 0

    def test_pin_clamps_and_records(self):
        ladder = DegradationLadder(capacity=100)
        assert ladder.pin(99) == MAX_SHED_LEVEL
        assert ladder.pin(-3) == 0
        dicts = ladder.transitions_as_dicts()
        assert dicts[0]["to"] == MAX_SHED_LEVEL and dicts[0]["depth"] == -1

    def test_zero_capacity_never_divides(self):
        ladder = DegradationLadder(capacity=0)
        assert ladder.observe(50) == 0


class TestRetryPolicy:
    def test_exponential_with_cap_and_exhaustion(self):
        policy = RetryPolicy(base=10.0, factor=2.0, max_delay=50.0, max_retries=4, jitter=0.0)
        assert [policy.delay_for(n, token=1) for n in range(1, 6)] == [
            10.0,
            20.0,
            40.0,
            50.0,
            None,
        ]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base=100.0, factor=1.0, max_delay=100.0, jitter=0.1)
        first = policy.delay_for(1, token=42)
        assert first == policy.delay_for(1, token=42)  # replay-stable
        assert 90.0 <= first <= 110.0
        assert first != policy.delay_for(1, token=43)  # spread across tokens


class TestServiceCore:
    def test_accept_and_reconcile(self, tmp_path):
        async def scenario():
            async with live_stack(tmp_path) as (service, smtp, _web):
                sender, users = pick_targets(service)
                client = await ehlo_client(smtp.port)
                for i, subject in enumerate(
                    ["SPAM: pills", "NEWS: weekly", "lunch plans"]
                ):
                    code = await client.send_message(sender, users[i], subject=subject)
                    assert code == 250
                await client.quit()
                report = service.reconcile()
                assert report["reconciled"]
                assert report["accepted"] == service.stats.acked == 3
                # Spam/legit alike arrive from an unknown sender: all gray,
                # so each got a challenge and sits in quarantine.
                assert sum(
                    c["in_quarantine"] for c in report["per_company"].values()
                ) == 3

        asyncio.run(scenario())

    def test_unrouted_recipient_accounted_not_lost(self, tmp_path):
        async def scenario():
            async with live_stack(tmp_path) as (service, _smtp, _web):
                future = service.try_submit(
                    {
                        "kind": "mail",
                        "mail_from": "a@ext-0.livegen.example",
                        "rcpt_to": "ghost@nowhere.invalid",
                        "size": 100,
                        "subject": "hi",
                    }
                )
                code = await asyncio.wait_for(future, 10.0)
                assert code == 550
                report = service.reconcile()
                assert report["reconciled"]
                assert report["unrouted_applied"] == 1
                assert service.stats.acked == 0

        asyncio.run(scenario())

    def test_overload_3x_capacity_tempfails_never_loses(self, tmp_path):
        """Offered ≥ 3× capacity: the excess gets 421, the ladder
        escalates and relaxes, and the ledger equals the acks exactly."""

        async def scenario():
            # engine_delay 5ms/message ≈ 200 msgs/s capacity; offer 600/s.
            async with live_stack(
                tmp_path, queue_size=16, batch_max=4, engine_delay=0.005
            ) as (service, smtp, _web):
                report = await run_stress(
                    StressConfig(
                        smtp_port=smtp.port,
                        web_port=None,
                        recipients=pick_targets(service)[1],
                        rate=600.0,
                        messages=240,
                        connections=24,
                        seed=5,
                    )
                )
                # Every offered message got an answer: 250 or a tempfail.
                assert report["completed"] == report["offered"] == 240
                assert report["errors"] == 0
                refused = report["codes"].get("421", 0)
                assert refused > 0, report
                assert service.stats.refused_full == refused
                # Backpressure pushed the ladder up...
                ups = [
                    t for t in service.ladder.transitions_as_dicts()
                    if t["to"] > t["from"]
                ]
                assert ups, service.ladder.transitions
                # ...and the drained queue brought it back to full service.
                await asyncio.sleep(0.1)
                assert service.ladder.level == 0

                reconciliation = service.reconcile()
                assert reconciliation["reconciled"]
                assert reconciliation["accepted"] == report["acked"]
                assert report["acked"] + refused == 240

        asyncio.run(scenario())

    def test_shed_level2_quarantines_without_challenge(self, tmp_path):
        """Quarantine-by-default: gray mail is spooled and ledgered but no
        challenge is issued while shed level 2 is pinned; unpinning
        restores the full pipeline. Observable via /healthz throughout."""

        async def scenario():
            async with live_stack(tmp_path) as (service, smtp, web):
                sender, users = pick_targets(service)
                installation = service.route(users[0])

                status, _ = await http_request(
                    web.port, "POST", "/shed", {"level": 2}
                )
                assert status == 200
                status, health = await http_request(web.port, "GET", "/healthz")
                assert health["shed_level"] == 2

                client = await ehlo_client(smtp.port)
                assert await client.send_message(sender, users[0]) == 250
                assert installation.dispatcher.shed_quarantined == 1
                challenges_after_shed = len(
                    installation.challenge_manager._challenges
                )
                assert challenges_after_shed == 0

                # Reversible: unpin, next gray message gets its challenge.
                status, _ = await http_request(
                    web.port, "POST", "/shed", {"level": 0}
                )
                assert status == 200
                assert (
                    await client.send_message(
                        f"other@{sender.split('@')[1]}", users[1]
                    )
                    == 250
                )
                assert len(installation.challenge_manager._challenges) == 1
                await client.quit()

                status, health = await http_request(web.port, "GET", "/healthz")
                assert health["shed_level"] == 0
                # Both messages ledgered either way: shedding never drops.
                report = service.reconcile()
                assert report["reconciled"]
                assert report["accepted"] == 2

        asyncio.run(scenario())

    def test_shed_level1_uses_reduced_chain(self, tmp_path):
        async def scenario():
            async with live_stack(tmp_path) as (service, _smtp, _web):
                installation = next(iter(service.installations.values()))
                full = {type(f).__name__ for f in installation.filter_chain.filters}
                shed = {
                    type(f).__name__
                    for f in installation.dispatcher.shed_chain.filters
                }
                assert shed < full  # strictly smaller
                assert "OnlineNaiveBayesFilter" not in shed
                assert "SenderReputationFilter" not in shed

        asyncio.run(scenario())

    def test_graceful_close_drains_queue(self, tmp_path):
        """close() applies everything already admitted before stopping."""

        async def scenario():
            async with live_stack(
                tmp_path, engine_delay=0.002
            ) as (service, _smtp, _web):
                sender_domain = "ext-0.livegen.example"
                _, users = pick_targets(service)
                futures = [
                    service.try_submit(
                        {
                            "kind": "mail",
                            "mail_from": f"s{i}@{sender_domain}",
                            "rcpt_to": users[i % len(users)],
                            "size": 50,
                            "subject": f"SPAM: {i}",
                        }
                    )
                    for i in range(20)
                ]
                assert all(f is not None for f in futures)
                return service, futures

        async def run():
            service, futures = await scenario()
            # live_stack's finally already closed the service: every
            # admitted future must have resolved during the drain.
            assert all(f.done() for f in futures)
            codes = {f.result() for f in futures}
            assert codes == {250}
            report = service.reconcile()
            assert report["reconciled"]
            assert report["accepted"] == 20

        asyncio.run(run())

    def test_refuses_after_close(self, tmp_path):
        async def scenario():
            async with live_stack(tmp_path) as (service, _smtp, _web):
                pass
            assert (
                service.try_submit(
                    {"kind": "mail", "mail_from": "a@b.c", "rcpt_to": "d@e.f",
                     "size": 1, "subject": ""}
                )
                is None
            )
            assert service.stats.refused_full == 1

        asyncio.run(scenario())
