"""Unit + property tests for synthetic name generation."""

import random

from hypothesis import given, strategies as st

from repro.net.addresses import is_well_formed
from repro.workload import naming

seeds = st.integers(0, 2**32 - 1)


class TestDomains:
    @given(seeds)
    def test_domains_are_valid_address_domains(self, seed):
        domain = naming.make_domain(random.Random(seed))
        assert is_well_formed(f"user@{domain}")

    @given(seeds)
    def test_suffix_embedded(self, seed):
        domain = naming.make_domain(random.Random(seed), suffix="e7")
        assert "-e7." in domain


class TestLocals:
    @given(seeds)
    def test_person_locals_form_valid_addresses(self, seed):
        local = naming.make_person_local(random.Random(seed))
        assert is_well_formed(f"{local}@example.com")


class TestSubjects:
    @given(seeds, st.integers(10, 14))
    def test_campaign_subject_word_count(self, seed, n_words):
        subject = naming.make_campaign_subject(random.Random(seed), n_words)
        assert len(subject.split()) == n_words

    @given(seeds)
    def test_short_subjects_are_short(self, seed):
        subject = naming.make_short_subject(random.Random(seed))
        assert 2 <= len(subject.split()) <= 6

    @given(seeds, st.integers(1, 100))
    def test_newsletter_subject_contains_issue_and_is_long(self, seed, issue):
        subject = naming.make_newsletter_subject(random.Random(seed), issue)
        assert f"issue {issue}" in subject
        # Long enough to survive Fig. 6's >=10-word clustering filter.
        assert len(subject.split()) >= 10

    def test_campaign_subjects_deterministic_per_seed(self):
        a = naming.make_campaign_subject(random.Random(5), 12)
        b = naming.make_campaign_subject(random.Random(5), 12)
        assert a == b


class TestMalformed:
    @given(seeds)
    def test_malformed_addresses_are_actually_malformed(self, seed):
        address = naming.make_malformed_address(random.Random(seed))
        assert not is_well_formed(address)
