"""Bench: §6 (discussion summary figures)."""

from repro.analysis import discussion

from benchmarks.conftest import run_analysis


def test_sec6_discussion_summary(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, discussion.compute, bench_result.store, bench_result.info
    )
    emit_report(
        "sec6", discussion.build_table(stats).render()
    )

    # "One challenge for every 21 emails it receives."
    assert 10 < stats.emails_per_challenge < 35
    # "A traffic increase of less than 1 %." (we tolerate up to 1.5 %)
    assert stats.traffic_increase < 0.015
    # "Only about 5 % of them are solved."
    assert 0.015 < stats.challenges_solved_share < 0.08
    # Whitelist assumption holds: ~94 % of inbox mail needs no challenge.
    assert stats.inbox_instant_share > 0.85
    # Delay concerns a small share of inbox mail, half resolved quickly.
    assert stats.inbox_quarantined_share < 0.15
    assert stats.quarantined_under_30min > 0.25
