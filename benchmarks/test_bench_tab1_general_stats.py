"""Bench: Table 1 (general statistics of the collected data)."""

from repro.analysis import general_stats

from benchmarks.conftest import run_analysis


def test_tab1_general_stats(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, general_stats.compute, bench_result.store, bench_result.info
    )
    emit_report("tab1", general_stats.build_table(stats).render())

    assert stats.companies == 47
    assert stats.open_relays == 13
    # Accounting identities of Table 1.
    assert (
        stats.white + stats.black + stats.gray + stats.dropped_at_mta
        == stats.total_incoming
    )
    assert stats.challenges_sent <= stats.gray
    assert stats.solved_captchas <= stats.challenges_sent
    # Ratio anchors (paper): black/white ~ 0.13, challenges/gray ~ 0.37
    # in Table 1 accounting; loose bands here.
    assert 0.05 < stats.black / stats.white < 0.4
    assert stats.dropped_reverse_dns + stats.dropped_rbl > (
        10 * stats.dropped_antivirus
    )
