"""Bench: §2 drop table + Fig. 2 (MTA-IN email treatment)."""

from repro.analysis import mta_breakdown
from repro.core.mta_in import DropReason

from benchmarks.conftest import run_analysis


def test_tab_drop_and_fig2(benchmark, bench_result, emit_report):
    stats = run_analysis(benchmark, mta_breakdown.compute, bench_result.store)
    emit_report("tab_drop_fig2", mta_breakdown.build_table(stats).render())

    # Paper: unknown recipient 62.36 % of incoming dominates every other
    # reason by an order of magnitude.
    shares = stats.drop_shares
    assert 0.5 < shares[DropReason.UNKNOWN_RECIPIENT] < 0.8
    assert 0.02 < shares[DropReason.UNRESOLVABLE_DOMAIN] < 0.08
    assert 0.01 < shares[DropReason.NO_RELAY] < 0.05
    assert shares[DropReason.MALFORMED] < 0.005
    assert shares[DropReason.SENDER_REJECTED] < 0.005
    # Paper: 249/1000 reach the CR filter at closed relays; open relays
    # pass most messages onward.
    assert 0.18 < stats.closed_pass_rate < 0.35
    assert stats.open_pass_rate > 1.5 * stats.closed_pass_rate
