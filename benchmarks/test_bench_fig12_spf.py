"""Bench: Fig. 12 / §5.2 (offline SPF validation of the gray spool)."""

from repro.analysis import spf_study
from repro.analysis.spf_study import ChallengeFate

from benchmarks.conftest import run_analysis


def test_fig12_spf_validation(benchmark, bench_result, emit_report):
    stats = run_analysis(benchmark, spf_study.compute, bench_result.store)
    emit_report("fig12", spf_study.render(bench_result.store))

    # Fig. 12 anchors: dropping SPF-fails removes ~9 % of expired and
    # ~4.1 % of bounced challenges, ~2.5 % of bad challenges overall, at a
    # cost of ~0.25 % of the solved ones.
    assert 0.04 < stats.fail_share(ChallengeFate.EXPIRED) < 0.16
    assert 0.015 < stats.fail_share(ChallengeFate.BOUNCED) < 0.08
    assert 0.01 < stats.bad_challenge_fail_share < 0.06
    assert stats.fail_share(ChallengeFate.SOLVED) < 0.02
    # The ordering that makes SPF attractive: it prunes bad challenges far
    # more aggressively than good ones.
    assert stats.bad_challenge_fail_share > 3 * stats.fail_share(
        ChallengeFate.SOLVED
    )
