"""Bench: Fig. 6 / §4.1 (spam-campaign clustering, spurious deliveries)."""

from repro.analysis import clustering

from benchmarks.conftest import run_analysis


def test_fig6_clustering(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, clustering.compute, bench_result.store, bench_result.info
    )
    emit_report(
        "fig6", clustering.render(bench_result.store, bench_result.info)
    )

    # Plenty of clusters (paper: 1,775 at full scale over 3 months).
    assert stats.n_clusters > 100
    # Only a small minority contains a solved challenge (paper: 28/1775).
    assert 0 < stats.clusters_with_solved < 0.25 * stats.n_clusters
    # Botnet (low-similarity) clusters dominate; marketing (high-similarity)
    # clusters exist.
    assert len(stats.low_similarity_clusters) > len(
        stats.high_similarity_clusters
    )
    assert len(stats.high_similarity_clusters) > 0
    # High-similarity clusters reach very high solve rates (paper: 97 %).
    solving_high = [
        c for c in stats.high_similarity_clusters if c.solved > 0
    ]
    assert solving_high
    assert max(c.solve_rate for c in solving_high) > 0.5
    # Low-similarity clusters bounce heavily and solve one-or-two at most.
    low = stats.low_similarity_clusters
    avg_bounce = sum(c.bounce_rate for c in low) / len(low)
    assert 0.2 < avg_bounce < 0.55  # paper: 31 %
    solving_low = [c for c in low if c.solved > 0]
    if solving_low:
        assert max(c.solved for c in solving_low) <= 4  # paper: 1-2
    # §4.1: spurious spam delivery ~1 per 10,000 challenges.
    assert stats.spurious_rate < 8e-4
