"""Micro-benchmarks of the substrate hot paths.

Not a paper artifact: these measure the building blocks whose throughput
bounds how large a deployment the simulator can replay (address parsing,
DNS resolution, dispatcher decisions, event-loop overhead, end-to-end
message handling).
"""

import random

from repro.net.addresses import is_well_formed
from repro.sim.engine import Simulator
from repro.core.message import MessageKind, SenderClass, make_message

from tests.helpers import CONTACT, CONTACT_DOMAIN, USER_ADDRESS, make_micro_env


def test_address_parsing_throughput(benchmark):
    addresses = [
        f"user{i}.last@sub{i % 7}.example{i % 13}.com" for i in range(1000)
    ]

    def parse_all():
        return sum(1 for a in addresses if is_well_formed(a))

    assert benchmark(parse_all) == 1000


def test_dns_resolution_throughput(benchmark):
    env = make_micro_env()

    def resolve_many():
        hits = 0
        for _ in range(1000):
            hits += env.resolver.resolves(CONTACT_DOMAIN)
        return hits

    assert benchmark(resolve_many) == 1000


def test_event_loop_throughput(benchmark):
    def run_10k_events():
        simulator = Simulator()
        count = [0]
        for i in range(10_000):
            simulator.schedule(float(i), lambda: count.__setitem__(0, count[0] + 1))
        simulator.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_inbound_pipeline_throughput(benchmark):
    """Full MTA-IN → dispatcher → spool path, mixed white/gray traffic."""
    env = make_micro_env()
    env.installation.seed_whitelist(USER_ADDRESS, [CONTACT])
    rng = random.Random(0)
    messages = []
    for i in range(2_000):
        if i % 3 == 0:
            sender = CONTACT  # white path
        else:
            sender = f"stranger{rng.randrange(500)}@{CONTACT_DOMAIN}"
        messages.append(
            make_message(
                0.0,
                sender,
                USER_ADDRESS,
                subject="w " * 11,
                size=5_000,
                client_ip="10.1.0.1",
                kind=MessageKind.SPAM,
                sender_class=SenderClass.REAL,
            )
        )

    def handle_all():
        for message in messages:
            env.installation.handle_inbound(message)
        return len(env.store.mta)

    benchmark.pedantic(handle_all, rounds=3, iterations=1)
    assert len(env.store.mta) >= 2_000
