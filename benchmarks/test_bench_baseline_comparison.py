"""Bench: the CR-vs-content-filter comparison behind the paper's motivation.

Not a paper artifact of its own; §1 cites Erickson et al.'s finding that
CR beats a SpamAssassin-style filter (~1 % FP, 0 FN). This bench trains
the naive-Bayes baseline on the shared deployment and asserts the ordering
holds at benchmark scale.
"""

from repro.baselines.comparison import build_table, compare_defences

from benchmarks.conftest import run_analysis


def test_baseline_comparison(benchmark, bench_result, emit_report):
    comparison = run_analysis(
        benchmark, compare_defences, bench_result.store
    )
    emit_report("baseline_comparison", build_table(comparison).render())

    # CR: essentially zero false negatives (paper: 0 %), small FP.
    assert comparison.cr_false_negative_rate < 0.002
    assert comparison.cr_false_positive_rate < 0.04  # paper: ~1 %
    # The content filter is competent but strictly worse on FN and not
    # better on FP.
    assert comparison.bayes.accuracy > 0.9
    assert comparison.bayes.false_negative_rate > (
        comparison.cr_false_negative_rate
    )
    assert comparison.bayes.false_negative_rate > 0.001
    assert comparison.bayes.false_positive_rate >= 0.0
