"""Bench: Fig. 9/10 + §4.3 (whitelist change rate, digest sizes)."""

from repro.analysis import churn

from benchmarks.conftest import run_analysis


def test_fig9_fig10_churn(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, churn.compute, bench_result.store, bench_result.info
    )
    emit_report("fig9_fig10", churn.render(bench_result.store, bench_result.info))

    # Fig. 9: the 1-10 bin dominates (paper: 51.1 %), with a monotonically
    # thinning tail to >600.
    assert stats.bin_shares[0] > 30.0
    assert stats.bin_shares[0] > stats.bin_shares[1] > stats.bin_shares[3]
    assert stats.bin_shares[-1] < 2.0
    # §4.3: only 6.8 % of whitelists gain >=1 entry/day; 0.2 % >=5/day.
    assert 0.01 < stats.share_ge_1_per_day < 0.20
    assert stats.share_ge_5_per_day < 0.02
    assert stats.share_ge_2_per_day < stats.share_ge_1_per_day
    # ~0.3 new entries per user per day on average.
    assert 0.1 < stats.additions_per_user_day < 0.7
    # Fig. 10: three contrasted users with very different digest profiles.
    examples = churn.pick_digest_examples(bench_result.store)
    assert len(examples) == 3
    means = sorted(e.mean for e in examples)
    assert means[-1] > 3 * means[0]
