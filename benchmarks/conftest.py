"""Shared benchmark fixtures.

All benchmarks measure the *analysis* stage over one shared full-scale
deployment run (the ``bench`` preset: the paper's 47 companies / 13 open
relays over six simulated weeks, several hundred thousand messages). The
simulation itself runs once per session; each benchmark then times the
log-analysis that regenerates one paper table or figure, and writes the
paper-vs-measured report to ``reports/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import run_simulation

REPORTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "reports"


@pytest.fixture(scope="session")
def bench_result():
    """The shared full-deployment simulation (47 companies, 42 days)."""
    return run_simulation("bench", seed=7)


@pytest.fixture(scope="session")
def emit_report():
    """Write one experiment's rendered report to reports/<exp_id>.txt."""
    REPORTS_DIR.mkdir(exist_ok=True)

    def _emit(exp_id: str, text: str) -> None:
        path = REPORTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report written to {path}]")

    return _emit


def run_analysis(benchmark, fn, *args):
    """Benchmark *fn(*args)* with a small fixed round count (the analyses
    scan hundreds of thousands of records; default calibration would take
    minutes per bench)."""
    return benchmark.pedantic(fn, args=args, rounds=3, iterations=1)
