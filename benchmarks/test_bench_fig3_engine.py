"""Bench: Fig. 3 (message categories at the internal processing engine)."""

from repro.analysis import engine_breakdown

from benchmarks.conftest import run_analysis


def test_fig3_engine_breakdown(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, engine_breakdown.compute, bench_result.store
    )
    emit_report("fig3", engine_breakdown.build_table(stats).render())

    # Paper's own figures for the filter-drop share of the gray spool span
    # 54 % (Fig. 3) to 77.5 % (§5.2); we must land inside that corridor.
    assert 0.5 <= stats.filter_drop_share <= 0.85
    # RBL is the biggest dropper, antivirus the smallest (Table 1 ordering).
    shares = stats.filter_shares
    assert shares["rbl"] > shares["reverse_dns"] > shares["antivirus"]
    # Challenges for roughly a quarter of gray mail (Fig. 3: 28 %).
    assert 0.12 < stats.challenged_share < 0.40
    # Open relays reply with more challenges per message (paper: +9 %).
    assert stats.open_relay_extra > -0.03
