"""Bench: §3.1–3.3 (reflection ratio, backscatter ratio, traffic)."""

from repro.analysis import reflection

from benchmarks.conftest import run_analysis


def test_sec3_reflection_backscatter_traffic(benchmark, bench_result, emit_report):
    stats = run_analysis(benchmark, reflection.compute, bench_result.store)
    emit_report("sec3_ratios", reflection.build_table(stats).render())

    # §3.1: R = 19.3 % at the CR filter, 4.8 % at MTA-IN.
    assert 0.13 < stats.reflection_cr < 0.27
    assert 0.03 < stats.reflection_mta < 0.10
    # §6: one challenge per ~21 received emails.
    assert 10 < stats.emails_per_challenge < 35
    # §3.2: worst-case backscatter beta = 8.7 % / 2.1 %.
    assert 0.05 < stats.beta_cr < 0.15
    assert 0.01 < stats.beta_mta < 0.05
    # ~2 % of gray senders manually whitelisted from the digest.
    assert 0.002 < stats.digest_whitelist_share < 0.06
    # §3.3: RT = 2.5 % at the CR filter; <1 % internet-wide.
    assert 0.015 < stats.rt_cr < 0.04
    assert stats.rt_mta < 0.015
