"""Wall-clock benches for the parallel multi-run execution layer.

The speedup check is the acceptance gate for the fan-out substrate: a
4-run ablation sweep at ``jobs=4`` must beat the serial path by >=1.5x
on a multi-core runner. Machines with fewer than four cores skip it —
there is nothing to prove there.
"""

import os
import time

import pytest

from repro.core.config import FilterSettings
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.util.render import TextTable

#: A 4-run ablation sweep at the `tiny` scale: the deployed product, the
#: no-auxiliary-filters ablation, the dedup ablation, and inline SPF.
SWEEP = [
    RunSpec("tiny", seed=11, label="baseline"),
    RunSpec(
        "tiny",
        seed=11,
        filters_template=FilterSettings(
            antivirus=False, reverse_dns=False, rbl=False
        ),
        label="no-filters",
    ),
    RunSpec(
        "tiny",
        seed=11,
        config_overrides={"challenge_dedup": False},
        label="no-dedup",
    ),
    RunSpec(
        "tiny",
        seed=11,
        filters_template=FilterSettings(spf=True),
        label="inline-spf",
    ),
]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup check needs >= 4 cores",
)
def test_parallel_sweep_speedup(emit_report):
    """jobs=4 runs the 4-spec ablation sweep >=1.5x faster than serial."""
    serial_runner = ParallelRunner(jobs=1, cache=None)
    started = time.perf_counter()
    serial = serial_runner.run(SWEEP)
    serial_wall = time.perf_counter() - started

    parallel_runner = ParallelRunner(jobs=4, cache=None)
    started = time.perf_counter()
    parallel = parallel_runner.run(SWEEP)
    parallel_wall = time.perf_counter() - started

    speedup = serial_wall / parallel_wall
    table = TextTable(
        headers=["mode", "wall (s)", "runs"],
        title=f"Parallel fan-out — 4-run tiny ablation sweep ({speedup:.2f}x)",
    )
    table.add_row("jobs=1 (serial bypass)", f"{serial_wall:.2f}", len(serial))
    table.add_row("jobs=4 (process pool)", f"{parallel_wall:.2f}", len(parallel))
    emit_report("parallel_speedup", table.render())

    # Identical content regardless of execution mode.
    assert [s.digest for s in serial] == [s.digest for s in parallel]
    assert speedup >= 1.5


def test_bench_fanout_serial_bypass(benchmark):
    """Times the jobs=1 inline path on one tiny run (the pool-free floor
    every parallel speedup is measured against)."""
    runner = ParallelRunner(jobs=1, cache=None)
    summaries = benchmark.pedantic(
        runner.run, args=([SWEEP[0]],), rounds=1, iterations=1
    )
    assert summaries[0].store.summary_counts()["mta"] > 0


def test_bench_cached_sweep_is_simulation_free(benchmark, tmp_path_factory):
    """Second invocation of a cached sweep answers purely from disk."""
    from repro.experiments.parallel import RunCache

    cache = RunCache(tmp_path_factory.mktemp("runs"))
    warmup = ParallelRunner(jobs=1, cache=cache)
    warmup.run(SWEEP[:2])
    assert warmup.runs_executed == 2

    cached = ParallelRunner(jobs=1, cache=cache)
    summaries = benchmark.pedantic(
        cached.run, args=(SWEEP[:2],), rounds=1, iterations=1
    )
    assert cached.runs_executed == 0
    assert cached.cache_hits == 2
    assert len(summaries) == 2
