"""Bench: Fig. 7/8 + §4.2 (delivery delay of quarantined messages)."""

from repro.analysis import delays
from repro.util.simtime import DAY, HOUR, MINUTE
from repro.util.stats import cdf_at

from benchmarks.conftest import run_analysis


def test_fig7_fig8_delay_cdf(benchmark, bench_result, emit_report):
    stats = run_analysis(benchmark, delays.compute, bench_result.store)
    emit_report("fig7_fig8", delays.render(bench_result.store))

    # Fig. 7 anchors: 30 % of captcha releases < 5 min, ~half < 30 min.
    assert 0.15 < cdf_at(stats.captcha_cdf, 5 * MINUTE) < 0.45
    assert 0.40 < cdf_at(stats.captcha_cdf, 30 * MINUTE) < 0.75
    # Fig. 8: solves concentrate below ~4 hours.
    assert cdf_at(stats.captcha_cdf, 4 * HOUR) > 0.75
    # Digest releases span 4 h - 3 d.
    assert cdf_at(stats.digest_cdf, 4 * HOUR) < 0.2
    assert cdf_at(stats.digest_cdf, 3 * DAY) > 0.6
    # §4.2: ~94 % of inbox mail delivered instantly; >1-day delays rare.
    assert stats.instant_share > 0.85
    assert stats.inbox_delayed_over_1day_share < 0.05
