"""Bench: Fig. 4(a) delivery status and Fig. 4(b) CAPTCHA attempts."""

from repro.analysis import challenges

from benchmarks.conftest import run_analysis


def test_fig4_challenge_statistics(benchmark, bench_result, emit_report):
    stats = run_analysis(benchmark, challenges.compute, bench_result.store)
    emit_report(
        "fig4",
        "\n\n".join(
            [
                challenges.build_delivery_table(stats).render(),
                challenges.build_web_table(stats).render(),
                challenges.build_attempts_table(stats).render(),
            ]
        ),
    )

    # Fig. 4(a): roughly half the challenges get delivered; of the
    # undelivered, non-existent recipients dominate (paper: 71.7 %).
    assert 0.40 < stats.delivered_share < 0.60
    assert 0.60 < stats.nonexistent_share_of_undelivered < 0.90
    # Blacklist-related bounces are a small portion.
    undelivered = stats.resolved - stats.delivered
    assert stats.bounced_blacklisted < 0.15 * undelivered
    # §3.2: ~94 % of delivered challenges never opened; few percent solved.
    assert stats.never_opened_share > 0.88
    assert 0.02 < stats.solved_share_of_delivered < 0.12
    assert 0.015 < stats.solved_share_of_sent < 0.06
    # Fig. 4(b): nobody ever needed more than five attempts.
    assert stats.max_attempts <= 5
