"""End-to-end report generation: every figure/table off one LogStore.

This is the tentpole's proof: one simulated deployment, then the full
paper-order report (``run_all``) regenerated from scratch each round with
the analysis index dropped first — so the timing covers the single shared
pass over every log table plus all rendering, exactly what a user pays
after a run.

``REPRO_BENCH_PRESET`` picks the deployment scale (default ``small``; CI
smoke uses ``tiny``).

Reference numbers (small preset, seed 11, interleaved A/B against the
pre-index tree on the same machine): cold report generation went from
~200 ms (best) / ~220 ms (median) to ~75 ms / ~85 ms — about 2.6-2.8x —
and a warm index renders the whole report in ~10 ms.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_simulation
from repro.experiments.registry import run_all

PRESET = os.environ.get("REPRO_BENCH_PRESET", "small")


@pytest.fixture(scope="module")
def report_result():
    return run_simulation(PRESET, seed=11)


def test_full_report_generation_cold_index(benchmark, report_result):
    """Cold start: the shared index is rebuilt from the raw records."""

    def generate():
        report_result.store.drop_indices()
        return run_all(report_result)

    out = benchmark.pedantic(generate, rounds=5, iterations=1)
    assert "=== fig1 ===" in out
    assert "=== sec6 ===" in out


def test_full_report_generation_warm_index(benchmark, report_result):
    """Warm start: aggregates already materialised, pure rendering cost."""
    report_result.store.drop_indices()
    run_all(report_result)

    out = benchmark.pedantic(
        lambda: run_all(report_result), rounds=5, iterations=1
    )
    assert "=== tab1 ===" in out
