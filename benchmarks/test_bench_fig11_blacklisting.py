"""Bench: Fig. 11 / §5.1 (challenge-server blacklisting)."""

from repro.analysis import blacklisting

from benchmarks.conftest import run_analysis


def test_fig11_sec51_blacklisting(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, blacklisting.compute, bench_result.store, bench_result.info
    )
    emit_report(
        "fig11_sec51",
        blacklisting.render(bench_result.store, bench_result.info),
    )

    # §5.1: 75 % of servers never appeared in any blacklist.
    assert 0.6 < stats.never_listed_share < 0.95
    # A few servers were listed for long stretches (paper: 17-129 of 132
    # days), while most saw at most brief listings.
    top = stats.top_listed_days
    horizon = bench_result.info.horizon_days
    assert top[0] > 0.15 * horizon
    assert top[1] > 0.10 * horizon
    # No meaningful correlation between volume and blacklisting (the
    # paper's central surprise).
    assert abs(stats.volume_listing_correlation) < 0.55
    assert abs(stats.volume_bounce_correlation) < 0.55
    # The top-3 challenge senders stayed clean (paper: none listed).
    assert max(stats.top_senders_listed_days(3)) <= 0.15 * horizon
