"""Bench: Fig. 5 (per-company variability and correlations)."""

from repro.analysis import variability
from repro.util.stats import median

from benchmarks.conftest import run_analysis


def test_fig5_variability(benchmark, bench_result, emit_report):
    stats = run_analysis(
        benchmark, variability.compute, bench_result.store, bench_result.info
    )
    emit_report(
        "fig5", variability.render(bench_result.store, bench_result.info)
    )

    assert len(stats.points) == 47
    # Paper: reflection stays in 10-25 % across installations...
    reflections = [p.reflection for p in stats.points]
    assert 0.05 < min(reflections)
    assert max(reflections) < 0.35
    assert 0.10 < median(reflections) < 0.25
    # ...and is essentially uncorrelated with company size/volume.
    assert abs(stats.correlation("users", "reflection")) < 0.45
    assert abs(stats.correlation("emails", "reflection")) < 0.55
    # White share varies widely between companies.
    whites = [p.white_share for p in stats.points]
    assert max(whites) - min(whites) > 0.2
    # Solved share correlates positively with white share; reflection
    # anti-correlates with it (paper's two robust signs).
    assert stats.correlation("white", "captcha") > 0.15
    assert stats.correlation("white", "reflection") < -0.03
