"""Bench: Fig. 1 (weighted lifecycle of incoming emails)."""

from repro.analysis import flow

from benchmarks.conftest import run_analysis


def test_fig1_lifecycle(benchmark, bench_result, emit_report):
    result = run_analysis(benchmark, flow.compute, bench_result.store)
    emit_report("fig1", flow.build_table(result).render())

    assert flow.conservation_check(result)
    # Paper per-1000 anchors: 751 dropped / 249 to dispatcher / 31 white /
    # 48 challenges / ~2 released.
    assert 650 < result.dropped_at_mta < 820
    assert 180 < result.to_dispatcher < 350
    assert 18 < result.white < 50
    assert 30 < result.challenges_sent < 75
    assert 1 < result.released_captcha + result.released_digest < 8
    # The gray spool dwarfs the white spool, and the filters drop most of it.
    assert result.gray > 4 * result.white
    assert result.filter_dropped > result.quarantined
