"""Live hot-path bench: the pinned-preset run behind the trajectory files.

Two layers keep the committed performance trajectory honest:

* ``tests/test_bench_trajectory.py`` (tier-1, fast) validates the
  *committed* ``BENCH_PR*.json`` files — schema, pinned workload, and the
  PR-over-PR throughput floors.
* this module *measures*: it replays the exact pinned workload the
  trajectory files record (``small`` preset, seed 11) on the current tree.

By default the measurement is informational (numbers vary by host). Set
``REPRO_BENCH_ENFORCE=1`` to turn on the regression gate: the live run
must reach at least ``1 - tolerance`` of the newest committed entry's
msgs/sec. That mode only makes sense on hardware comparable to what wrote
the committed entry — CI uses ``scripts/update_bench.py --check`` instead,
which re-measures the committed *ratio* against the recorded baseline
commit and is therefore host-independent.
"""

from __future__ import annotations

import json
import os
import pathlib
import re

import pytest

from repro.experiments import run_simulation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Fraction of the committed msgs/sec the live run must reach under
#: ``REPRO_BENCH_ENFORCE=1``.
TOLERANCE = 0.20


def _newest_committed() -> tuple:
    entries = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match:
            entries.append((int(match.group(1)), json.loads(path.read_text())))
    if not entries:
        pytest.fail(
            "no committed BENCH_PR*.json — the bench trajectory is part of "
            "the repo; run scripts/update_bench.py to regenerate it"
        )
    return max(entries)


def test_hot_path_throughput_vs_committed(benchmark):
    """Replay the pinned trajectory workload; optionally enforce it."""
    pr, committed = _newest_committed()
    preset, seed = committed["preset"], committed["seed"]

    result = benchmark.pedantic(
        lambda: run_simulation(preset, seed=seed), rounds=1, iterations=1
    )

    messages = len(result.store.mta)
    # The workload is pinned: a different message count means the bench is
    # no longer measuring what the committed entry measured.
    assert messages == committed["messages"], (
        f"live run produced {messages} messages but {pr}'s committed entry "
        f"recorded {committed['messages']} — the pinned workload drifted"
    )
    assert result.simulator.events_processed == committed["events"]

    live = messages / result.wall_seconds
    floor = committed["msgs_per_sec"] * (1.0 - TOLERANCE)
    print(
        f"\nhot path: {live:,.0f} msgs/sec live vs {committed['msgs_per_sec']:,.0f} "
        f"committed (PR {pr}); enforce floor {floor:,.0f}"
    )
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        assert live >= floor, (
            f"live throughput {live:,.0f} msgs/sec regressed more than "
            f"{TOLERANCE:.0%} below PR {pr}'s committed "
            f"{committed['msgs_per_sec']:,.0f}"
        )


def test_batched_vs_unbatched_delivery(benchmark):
    """Informational A/B: the batch data plane vs per-message scheduling.

    Uses the tiny preset so both arms fit in one bench run; the store
    digests must match exactly (the batched plane is a pure optimisation).
    """
    from repro.experiments.parallel import store_digest

    def both():
        batched = run_simulation("tiny", seed=7, batch_delivery=True)
        unbatched = run_simulation("tiny", seed=7, batch_delivery=False)
        return batched, unbatched

    batched, unbatched = benchmark.pedantic(both, rounds=1, iterations=1)
    assert store_digest(batched.store) == store_digest(unbatched.store)
    print(
        f"\nbatched {batched.wall_seconds:.3f}s vs "
        f"unbatched {unbatched.wall_seconds:.3f}s (tiny preset)"
    )
