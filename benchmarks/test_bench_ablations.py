"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper artifacts; they quantify how much each mechanism
contributes to the published behaviour:

* **auxiliary filters** — §3.1's argument that without them a CR system is
  a spam multiplier;
* **challenge de-duplication** — the pending-challenge suppression that
  keeps repeat senders from receiving one challenge per message;
* **dual outbound MTAs** — the §5.1 mitigation keeping user mail off the
  blacklisted challenge IP.

The ablation fleet (the baseline `small` deployment plus each modified
configuration) is independent run-by-run, so it executes once per module
through the parallel runner — fanned out over worker processes when the
machine has them — and every bench then times its analysis over the
shared summaries.
"""

import os
from collections import defaultdict

import pytest

from repro.analysis import reflection
from repro.core.config import FilterSettings
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.util.render import TextTable
from repro.util.simtime import DAY

SEED = 11

#: The whole ablation fleet, executed in one fan-out.
SPECS = {
    "baseline": RunSpec("small", seed=SEED, label="baseline"),
    "no_filters": RunSpec(
        "small",
        seed=SEED,
        filters_template=FilterSettings(
            antivirus=False, reverse_dns=False, rbl=False
        ),
        label="no-auxiliary-filters",
    ),
    "no_dedup": RunSpec(
        "small",
        seed=SEED,
        config_overrides={"challenge_dedup": False},
        label="no-challenge-dedup",
    ),
}


@pytest.fixture(scope="module")
def ablation_summaries():
    """Run the ablation fleet once, in parallel, uncached (benches measure)."""
    jobs = min(len(SPECS), os.cpu_count() or 1)
    runner = ParallelRunner(jobs=jobs, cache=None)
    summaries = runner.run(list(SPECS.values()))
    return dict(zip(SPECS, summaries))


def test_ablation_auxiliary_filters(benchmark, emit_report, ablation_summaries):
    """Without the filter chain, R explodes toward the spam share."""
    baseline = ablation_summaries["baseline"]
    unfiltered = ablation_summaries["no_filters"]

    r_unfiltered = benchmark.pedantic(
        reflection.compute, args=(unfiltered.store,), rounds=3, iterations=1
    )
    r_base = reflection.compute(baseline.store)
    table = TextTable(
        headers=["configuration", "R (CR filter)", "beta", "challenges"],
        title="Ablation — auxiliary filters (Sec. 3.1's spam-multiplier bound)",
    )
    table.add_row(
        "deployed product",
        f"{100 * r_base.reflection_cr:.1f}%",
        f"{100 * r_base.beta_cr:.1f}%",
        r_base.challenges,
    )
    table.add_row(
        "no auxiliary filters",
        f"{100 * r_unfiltered.reflection_cr:.1f}%",
        f"{100 * r_unfiltered.beta_cr:.1f}%",
        r_unfiltered.challenges,
    )
    emit_report("ablation_filters", table.render())

    # The filters cut reflected challenges several-fold; without them the
    # system reflects most of its gray load (>60 %).
    assert r_unfiltered.reflection_cr > 0.6
    assert r_unfiltered.reflection_cr > 3 * r_base.reflection_cr
    assert r_unfiltered.beta_cr > 2.5 * r_base.beta_cr


def test_ablation_challenge_dedup(benchmark, emit_report, ablation_summaries):
    """Without pending-challenge suppression, repeat senders get one
    challenge per message."""
    baseline = ablation_summaries["baseline"]
    nodedup = ablation_summaries["no_dedup"]

    def count_suppressed():
        return sum(
            1
            for r in baseline.store.dispatch
            if r.challenge_id is not None and not r.challenge_created
        )

    suppressed = benchmark.pedantic(count_suppressed, rounds=3, iterations=1)
    base_challenges = len(baseline.store.challenges)
    nodedup_challenges = len(nodedup.store.challenges)
    table = TextTable(
        headers=["configuration", "challenges sent", "suppressed duplicates"],
        title="Ablation — challenge de-duplication",
    )
    table.add_row("dedup on (product)", base_challenges, suppressed)
    table.add_row("dedup off", nodedup_challenges, 0)
    emit_report("ablation_dedup", table.render())

    # Every suppressed duplicate becomes an extra challenge email. (The two
    # runs share a seed but diverge slightly once whitelists differ, so
    # compare with a tolerance.)
    assert nodedup_challenges >= base_challenges
    assert nodedup_challenges >= base_challenges + 0.5 * suppressed


def test_ablation_dual_outbound_mta(benchmark, emit_report, ablation_summaries):
    """Dual-MTA installations keep user mail off the blacklisted IP."""
    result = ablation_summaries["baseline"]

    def listed_days_by_ip():
        listed = defaultdict(set)
        for probe in result.store.probes:
            if probe.listed:
                listed[probe.ip].add(int(probe.t // DAY))
        return listed

    listed_days = benchmark.pedantic(listed_days_by_ip, rounds=3, iterations=1)

    table = TextTable(
        headers=["config", "challenge-IP listed-days", "user-IP listed-days"],
        title="Ablation — dual outbound MTAs (Sec. 5.1 mitigation)",
    )
    dual_user_days = 0
    dual_challenge_days = 0
    for config in result.company_configs.values():
        challenge_days = len(listed_days.get(config.challenge_ip, ()))
        user_days = len(listed_days.get(config.mta_out_ip, ()))
        if config.dual_outbound:
            dual_challenge_days += challenge_days
            dual_user_days += user_days
            if challenge_days or user_days:
                table.add_row(config.company_id, challenge_days, user_days)
    emit_report("ablation_dual_mta", table.render())

    # Whatever blacklisting happens to dual installations lands on the
    # dedicated challenge IP; the user-mail IP stays clean (user mail never
    # hits spam traps).
    assert dual_user_days == 0
