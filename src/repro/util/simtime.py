"""Simulated-time helpers.

The simulation clock counts integer seconds from a fixed epoch,
2010-07-01 00:00:00 UTC — the first day of the paper's six-month
measurement window (July–December 2010).
"""

from __future__ import annotations

import datetime as _dt

MINUTE = 60
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Calendar instant that simulated time 0 corresponds to.
SIM_EPOCH = _dt.datetime(2010, 7, 1, 0, 0, 0)
SIM_EPOCH_LABEL = "2010-07-01T00:00:00"


def day_of(timestamp: float) -> int:
    """Return the zero-based simulated day index containing *timestamp*."""
    return int(timestamp // DAY)


def seconds_into_day(timestamp: float) -> float:
    """Return how far into its day *timestamp* falls, in seconds."""
    return timestamp - day_of(timestamp) * DAY


def weekday_of(timestamp: float) -> int:
    """Return the weekday (0=Monday .. 6=Sunday) of *timestamp*.

    The simulated epoch, 2010-07-01, was a Thursday (weekday 3).
    """
    return (3 + day_of(timestamp)) % 7


def is_weekend(timestamp: float) -> bool:
    """True when *timestamp* falls on a Saturday or Sunday."""
    return weekday_of(timestamp) >= 5


def format_timestamp(timestamp: float) -> str:
    """Render a simulated timestamp as an ISO-8601 calendar string."""
    return (SIM_EPOCH + _dt.timedelta(seconds=float(timestamp))).isoformat()


def format_duration(seconds: float) -> str:
    """Render a duration compactly: ``90`` -> ``'1m30s'``, ``90000`` -> ``'1d1h'``."""
    seconds = int(round(seconds))
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds}s"
    if seconds < HOUR:
        minutes, secs = divmod(seconds, MINUTE)
        return f"{minutes}m{secs}s" if secs else f"{minutes}m"
    if seconds < DAY:
        hours, rem = divmod(seconds, HOUR)
        minutes = rem // MINUTE
        return f"{hours}h{minutes}m" if minutes else f"{hours}h"
    days, rem = divmod(seconds, DAY)
    hours = rem // HOUR
    return f"{days}d{hours}h" if hours else f"{days}d"
