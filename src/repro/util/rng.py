"""Deterministic, named random streams.

Every stochastic component of the simulation draws from its own named child
stream derived from a single master seed. This keeps runs reproducible and —
just as important for a measurement reproduction — keeps the components
statistically independent: adding draws to one subsystem does not perturb the
sequence seen by any other.
"""

from __future__ import annotations

import hashlib
import math
import random


def poisson(rng: random.Random, lam: float) -> int:
    """Draw from Poisson(*lam*) using *rng*.

    Knuth's product method for small rates; a rounded-normal approximation
    above 50, where the product method underflows.
    """
    if lam <= 0.0:
        return 0
    if lam > 50.0:
        return max(0, round(rng.gauss(lam, math.sqrt(lam))))
    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


class RngStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are identified by name; requesting the same name twice returns
    the *same* stream object, so state advances continuously within a
    subsystem while remaining isolated between subsystems.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.stream("spam")
    >>> b = streams.stream("legit")
    >>> a is streams.stream("spam")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def child(self, name: str) -> "RngStreams":
        """Return a new :class:`RngStreams` namespaced under *name*.

        Useful when a subsystem itself wants to hand out named streams
        (e.g. one stream per spam campaign).
        """
        return RngStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
