"""Shared utilities: deterministic RNG streams, simulated time, statistics,
and plain-text rendering of tables, histograms, and CDFs."""

from repro.util.rng import RngStreams
from repro.util.simtime import (
    DAY,
    HOUR,
    MINUTE,
    SIM_EPOCH_LABEL,
    day_of,
    format_duration,
    format_timestamp,
)

__all__ = [
    "RngStreams",
    "MINUTE",
    "HOUR",
    "DAY",
    "SIM_EPOCH_LABEL",
    "day_of",
    "format_duration",
    "format_timestamp",
]
