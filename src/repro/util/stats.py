"""Small statistics toolkit used by the analysis pipeline.

Implemented by hand (no numpy dependency in the library itself) so the
analysis code exactly documents what is being computed; the test-suite
cross-checks several of these against numpy/scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Population variance (divide by N)."""
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(variance(values))


def median(values: Sequence[float]) -> float:
    """Median via :func:`percentile` at 50."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (same convention as numpy default).

    *pct* is in ``[0, 100]``.
    """
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either sequence is constant (the paper's scatter
    matrix renders those cells as blank).
    """
    if len(xs) != len(ys):
        raise ValueError("pearson() requires equal-length sequences")
    if len(xs) < 2:
        raise ValueError("pearson() requires at least two points")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if sx == 0.0 or sy == 0.0:
        return 0.0
    r = cov / (sx * sy)
    # Clamp tiny floating-point excursions outside [-1, 1].
    return max(-1.0, min(1.0, r))


@dataclass(frozen=True)
class CdfPoint:
    """One step of an empirical CDF: ``fraction`` of samples are <= ``value``."""

    value: float
    fraction: float


def empirical_cdf(values: Iterable[float]) -> list[CdfPoint]:
    """Return the empirical CDF of *values* as a list of steps.

    The result is sorted by value and the last fraction is exactly 1.0.
    """
    ordered = sorted(values)
    n = len(ordered)
    points: list[CdfPoint] = []
    for i, v in enumerate(ordered, start=1):
        if points and points[-1].value == v:
            points[-1] = CdfPoint(v, i / n)
        else:
            points.append(CdfPoint(v, i / n))
    return points


def cdf_at(points: Sequence[CdfPoint], value: float) -> float:
    """Evaluate an empirical CDF (as returned by :func:`empirical_cdf`) at *value*."""
    fraction = 0.0
    for point in points:
        if point.value <= value:
            fraction = point.fraction
        else:
            break
    return fraction


@dataclass(frozen=True)
class HistogramBin:
    """A half-open histogram bin ``[low, high)`` with its count."""

    low: float
    high: float
    count: int

    @property
    def label(self) -> str:
        return f"[{self.low:g}, {self.high:g})"


def histogram(
    values: Iterable[float], edges: Sequence[float]
) -> list[HistogramBin]:
    """Bin *values* into the half-open bins defined by *edges*.

    ``edges`` must be strictly increasing; values outside ``[edges[0],
    edges[-1])`` are ignored, mirroring how the paper's figures clip their
    axes.
    """
    if len(edges) < 2:
        raise ValueError("histogram() needs at least two edges")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("histogram() edges must be strictly increasing")
    counts = [0] * (len(edges) - 1)
    for v in values:
        if v < edges[0] or v >= edges[-1]:
            continue
        # Linear scan is fine: analysis histograms have < 20 bins.
        for i in range(len(counts)):
            if edges[i] <= v < edges[i + 1]:
                counts[i] += 1
                break
    return [
        HistogramBin(edges[i], edges[i + 1], counts[i]) for i in range(len(counts))
    ]


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with 0/0 defined as 0.0."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
