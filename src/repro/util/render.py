"""Plain-text rendering of the paper's tables and figures.

The original paper presents results as tables, bar charts, CDFs, and a
scatter matrix. This module renders the *data content* of each as aligned
ASCII, which is what the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.util.stats import CdfPoint, HistogramBin


@dataclass
class TextTable:
    """A simple aligned table with an optional title."""

    headers: Sequence[str]
    rows: list[Sequence[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(len(self.title), sum(widths) + 2 * len(widths)))
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class ComparisonTable:
    """A paper-vs-measured comparison, the standard bench output format."""

    title: str
    rows: list[tuple[str, Optional[float], Optional[float], str]] = field(
        default_factory=list
    )

    def add(
        self,
        label: str,
        paper: Optional[float],
        measured: Optional[float],
        unit: str = "",
    ) -> None:
        """Record one compared quantity. Pass ``paper=None`` for quantities
        the paper does not report numerically."""
        self.rows.append((label, paper, measured, unit))

    def render(self) -> str:
        table = TextTable(
            headers=["quantity", "paper", "measured", "delta"], title=self.title
        )
        for label, paper, measured, unit in self.rows:
            table.add_row(
                label,
                _fmt_value(paper, unit),
                _fmt_value(measured, unit),
                _fmt_delta(paper, measured),
            )
        return table.render()


def render_histogram(
    bins: Sequence[HistogramBin], title: str = "", width: int = 40
) -> str:
    """Render histogram bins as horizontal ASCII bars with percentages."""
    total = sum(b.count for b in bins) or 1
    peak = max((b.count for b in bins), default=1) or 1
    lines: list[str] = [title] if title else []
    label_width = max((len(b.label) for b in bins), default=0)
    for b in bins:
        bar = "#" * max(1 if b.count else 0, round(width * b.count / peak))
        pct = 100.0 * b.count / total
        lines.append(f"{b.label.ljust(label_width)}  {bar.ljust(width)} {pct:6.2f}%")
    return "\n".join(lines)


def render_cdf(
    points: Sequence[CdfPoint],
    probes: Sequence[float],
    title: str = "",
    value_format: str = "{:g}",
) -> str:
    """Render a CDF as `value -> fraction` rows evaluated at *probes*."""
    from repro.util.stats import cdf_at

    lines: list[str] = [title] if title else []
    for probe in probes:
        frac = cdf_at(points, probe)
        lines.append(f"  <= {value_format.format(probe):>12}: {100.0 * frac:6.2f}%")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.4g}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _fmt_value(value: Optional[float], unit: str) -> str:
    if value is None:
        return "-"
    if unit == "%":
        return f"{value:.2f}%"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3g}{unit}"
    return f"{value:,.0f}{unit}"


def _fmt_delta(paper: Optional[float], measured: Optional[float]) -> str:
    if paper is None or measured is None:
        return "-"
    if paper == 0:
        return "n/a"
    return f"{100.0 * (measured - paper) / paper:+.1f}%"
