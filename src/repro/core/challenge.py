"""Challenge generation and the CAPTCHA web flow.

When a gray message passes the auxiliary filters, the dispatcher sends the
sender an email containing a link to a CAPTCHA page. This module tracks the
full lifecycle of such challenges:

* creation and de-duplication — while a challenge for a ``(recipient,
  sender)`` pair is pending, further messages from the same sender attach
  to it instead of triggering new challenge emails;
* delivery outcome (delivered / bounced / expired), filled in by the
  outbound MTA;
* the web side (page opened, CAPTCHA attempts, solved), which the paper
  measured from the challenge web server's access logs (§3.2, Fig. 4(b)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.message import EmailMessage
from repro.net.mta_out import DeliveryResult


class WebAction(enum.Enum):
    """Events appearing in the challenge web server's access log."""

    OPEN = "open"
    ATTEMPT = "attempt"
    SOLVE = "solve"


@dataclass
class Challenge:
    """One challenge sent (or attached to) for a (recipient, sender) pair."""

    challenge_id: int
    company_id: str
    user: str
    sender: str
    created_at: float
    size: int
    #: The message that triggered the challenge. The CR system itself never
    #: inspects it; the workload's behaviour models use it to decide how the
    #: challenge recipient reacts (solve / ignore / backscatter victim).
    origin: Optional[EmailMessage] = None
    msg_ids: list[int] = field(default_factory=list)
    delivery: Optional[DeliveryResult] = None
    opened_at: Optional[float] = None
    attempts: int = 0
    solved_at: Optional[float] = None

    @property
    def solved(self) -> bool:
        return self.solved_at is not None

    @property
    def opened(self) -> bool:
        return self.opened_at is not None


class ChallengeManager:
    """Issues and tracks challenges for one company."""

    def __init__(self, company_id: str) -> None:
        self.company_id = company_id
        self._challenges: dict[int, Challenge] = {}
        self._pending: dict[tuple[str, str], int] = {}
        self._next_id = 1
        self.created_count = 0
        self.suppressed_count = 0
        #: Pending slots cleared because their quarantined messages all
        #: reached a terminal status (expiry sweep, digest delete, drain) —
        #: distinct from slots cleared by a solve. The lifecycle auditor
        #: checks that no slot outlives its messages.
        self.pending_expired = 0

    def issue(
        self,
        user: str,
        sender: str,
        message: EmailMessage,
        now: float,
        size: int,
        dedup: bool = True,
    ) -> tuple[Challenge, bool]:
        """Issue (or reuse) a challenge for *message*.

        Returns ``(challenge, created)``. ``created`` is False when a
        pending challenge for the same (user, sender) absorbed the message,
        in which case no new challenge email must be sent. With *dedup*
        off, every message gets its own challenge email.
        """
        # Inputs are canonical lowercase on the engine path; the guards
        # skip four str copies per issued challenge.
        if not user.islower():
            user = user.lower()
        if not sender.islower():
            sender = sender.lower()
        key = (user, sender)
        existing_id = self._pending.get(key) if dedup else None
        if existing_id is not None:
            challenge = self._challenges[existing_id]
            challenge.msg_ids.append(message.msg_id)
            self.suppressed_count += 1
            return challenge, False
        challenge = Challenge(
            challenge_id=self._next_id,
            company_id=self.company_id,
            user=user,
            sender=sender,
            created_at=now,
            size=size,
            origin=message,
            msg_ids=[message.msg_id],
        )
        self._next_id += 1
        self._challenges[challenge.challenge_id] = challenge
        self._pending[key] = challenge.challenge_id
        self.created_count += 1
        return challenge, True

    def get(self, challenge_id: int) -> Challenge:
        return self._challenges[challenge_id]

    def get_or_none(self, challenge_id: int) -> Optional[Challenge]:
        """Lookup tolerant of unknown ids — the live web frontend receives
        attacker-controlled ids and must 404, not crash."""
        return self._challenges.get(challenge_id)

    def record_delivery(self, challenge_id: int, result: DeliveryResult) -> None:
        self._challenges[challenge_id].delivery = result

    def record_open(self, challenge_id: int, now: float) -> None:
        challenge = self._challenges[challenge_id]
        if challenge.opened_at is None:
            challenge.opened_at = now

    def record_attempt(self, challenge_id: int, now: float) -> None:
        challenge = self._challenges[challenge_id]
        if challenge.opened_at is None:
            challenge.opened_at = now
        challenge.attempts += 1

    def record_solve(self, challenge_id: int, now: float) -> Challenge:
        """Mark solved and clear the pending slot so future messages from
        this sender (pre-whitelist race) would get a fresh challenge."""
        challenge = self._challenges[challenge_id]
        if challenge.solved_at is None:
            challenge.solved_at = now
        self._clear_pending(challenge)
        return challenge

    def expire_pending(self, challenge_id: int) -> None:
        """Drop the pending slot when the quarantined messages behind it
        all reached a terminal status (expired, deleted, or drained).

        Must fire whenever the *last* gray entry attached to a challenge
        is finalized without a solve — otherwise the slot stays live and
        the sender's next message silently attaches to a dead challenge
        instead of triggering a fresh one (the pending-slot leak this PR's
        auditor flushed out of the digest-delete path).
        """
        if self._clear_pending(self._challenges[challenge_id]):
            self.pending_expired += 1

    def _clear_pending(self, challenge: Challenge) -> bool:
        key = (challenge.user, challenge.sender)
        if self._pending.get(key) == challenge.challenge_id:
            del self._pending[key]
            return True
        return False

    def pending_challenge_for(
        self, user: str, sender: str
    ) -> Optional[Challenge]:
        challenge_id = self._pending.get((user.lower(), sender.lower()))
        return None if challenge_id is None else self._challenges[challenge_id]

    def all_challenges(self) -> list[Challenge]:
        return list(self._challenges.values())

    @property
    def pending_count(self) -> int:
        """Live (user, sender) pending slots."""
        return len(self._pending)

    def pending_items(self) -> list[tuple[tuple[str, str], int]]:
        """Snapshot of live pending slots as ((user, sender), challenge_id);
        used by the lifecycle auditor to detect leaked slots."""
        return list(self._pending.items())
