"""Inbound MTA checks — the first layer of Figure 1.

The paper's MTA-IN drops more than 75 % of incoming mail before it ever
reaches the CR dispatcher, for five reasons (its §2 table):

=====================  =========
Malformed email          0.06 %
Unresolvable domain      4.19 %
No relay                 2.27 %
Sender rejected          0.03 %
Unknown recipient       62.36 %
=====================  =========

The check order below follows the paper's description: well-formedness
first, then sender-domain resolution, then relay policy, then site-level
sender blocks, and finally recipient validation (skipped for relayed
domains, which is why open relays "pass most of the messages to the next
layer").
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.config import CompanyConfig
from repro.core.message import EmailMessage
from repro.net.addresses import is_well_formed
from repro.net.dns import DnsTemporaryFailure, Resolver


class DropReason(enum.Enum):
    """Why MTA-IN refused a message."""

    # Identity hash instead of Enum's Python-level name hash: members are
    # Counter keys in the analysis index's hottest pass, and equality is
    # identity for enums anyway.
    __hash__ = object.__hash__

    MALFORMED = "malformed"
    UNRESOLVABLE_DOMAIN = "unresolvable_domain"
    NO_RELAY = "no_relay"
    SENDER_REJECTED = "sender_rejected"
    UNKNOWN_RECIPIENT = "unknown_recipient"


class MtaIn:
    """First-layer checks of one company's inbound MTA."""

    def __init__(self, config: CompanyConfig, resolver: Resolver) -> None:
        self.config = config
        self.resolver = resolver
        self.accepted = 0
        #: Sender-domain checks skipped because DNS was temporarily down.
        self.dns_tempfails = 0
        self.dropped: dict[DropReason, int] = {reason: 0 for reason in DropReason}

    def check(self, message: EmailMessage) -> Optional[DropReason]:
        """Return ``None`` to accept *message*, or the drop reason."""
        reason = self._classify(message)
        if reason is None:
            self.accepted += 1
        else:
            self.dropped[reason] += 1
        return reason

    def _classify(self, message: EmailMessage) -> Optional[DropReason]:
        if not is_well_formed(message.env_to):
            return DropReason.MALFORMED
        # The null reverse-path ("<>", RFC 5321) marks delivery status
        # notifications; it is legal and skips every sender-side check.
        null_sender = message.env_from == ""
        if not null_sender:
            if not is_well_formed(message.env_from):
                return DropReason.MALFORMED
            sender_domain = message.env_from.rsplit("@", 1)[-1].lower()
            try:
                if not self.resolver.resolves(sender_domain):
                    return DropReason.UNRESOLVABLE_DOMAIN
            except DnsTemporaryFailure:
                # A real MTA would 451 and the remote would retry until the
                # weather cleared; inbound retries are not modelled, so a
                # transient failure passes the check rather than being
                # misclassified as UNRESOLVABLE_DOMAIN.
                self.dns_tempfails += 1
        rcpt_local, rcpt_domain = message.env_to.rsplit("@", 1)
        rcpt_domain = rcpt_domain.lower()
        if not self.config.accepts_domain(rcpt_domain):
            return DropReason.NO_RELAY
        if (
            not null_sender
            and message.env_from.lower() in self.config.rejected_senders
        ):
            return DropReason.SENDER_REJECTED
        if rcpt_domain == self.config.domain:
            if not self.config.is_protected_recipient(rcpt_local, rcpt_domain):
                return DropReason.UNKNOWN_RECIPIENT
        # Relayed domains: the server cannot validate recipients, so the
        # message passes (this is the open-relay behaviour from the paper).
        return None
