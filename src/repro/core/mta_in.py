"""Inbound MTA checks — the first layer of Figure 1.

The paper's MTA-IN drops more than 75 % of incoming mail before it ever
reaches the CR dispatcher, for five reasons (its §2 table):

=====================  =========
Malformed email          0.06 %
Unresolvable domain      4.19 %
No relay                 2.27 %
Sender rejected          0.03 %
Unknown recipient       62.36 %
=====================  =========

The check order below follows the paper's description: well-formedness
first, then sender-domain resolution, then relay policy, then site-level
sender blocks, and finally recipient validation (skipped for relayed
domains, which is why open relays "pass most of the messages to the next
layer").
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.config import CompanyConfig
from repro.core.message import EmailMessage
from repro.net.addresses import (
    _SPLIT_CACHE,
    _WELL_FORMED_CACHE,
    is_well_formed,
    split_address,
)
from repro.net.dns import DnsTemporaryFailure, Resolver


class DropReason(enum.Enum):
    """Why MTA-IN refused a message."""

    # Identity hash instead of Enum's Python-level name hash: members are
    # Counter keys in the analysis index's hottest pass, and equality is
    # identity for enums anyway.
    __hash__ = object.__hash__

    MALFORMED = "malformed"
    UNRESOLVABLE_DOMAIN = "unresolvable_domain"
    NO_RELAY = "no_relay"
    SENDER_REJECTED = "sender_rejected"
    UNKNOWN_RECIPIENT = "unknown_recipient"


#: Shared hint for messages that fail well-formedness: nothing after the
#: grammar check runs, so there is no sender domain and no post-DNS verdict.
_HINT_MALFORMED = (DropReason.MALFORMED, None, None)


class MtaIn:
    """First-layer checks of one company's inbound MTA."""

    def __init__(self, config: CompanyConfig, resolver: Resolver) -> None:
        self.config = config
        self.resolver = resolver
        self.accepted = 0
        #: Sender-domain checks skipped because DNS was temporarily down.
        self.dns_tempfails = 0
        self.dropped: dict[DropReason, int] = {reason: 0 for reason in DropReason}

    def check(self, message: EmailMessage) -> Optional[DropReason]:
        """Return ``None`` to accept *message*, or the drop reason.

        Batch-built messages carry a precomputed hint (see
        :meth:`precheck_batch`); for those, only the DNS resolution check
        — the one time-dependent step — runs here. Everything else takes
        the full :meth:`_classify` walk.
        """
        hint = message.mta_hint
        if hint is not None:
            reason, sender_domain, post = hint
            if reason is None:
                reason = post
                if sender_domain is not None:
                    try:
                        if not self.resolver.resolves(sender_domain):
                            reason = DropReason.UNRESOLVABLE_DOMAIN
                    except DnsTemporaryFailure:
                        self.dns_tempfails += 1
        else:
            reason = self._classify(message)
        if reason is None:
            self.accepted += 1
        else:
            self.dropped[reason] += 1
        return reason

    def _classify(self, message: EmailMessage) -> Optional[DropReason]:
        if not is_well_formed(message.env_to):
            return DropReason.MALFORMED
        # The null reverse-path ("<>", RFC 5321) marks delivery status
        # notifications; it is legal and skips every sender-side check.
        null_sender = message.env_from == ""
        if not null_sender:
            if not is_well_formed(message.env_from):
                return DropReason.MALFORMED
            sender_domain = message.env_from.rsplit("@", 1)[-1].lower()
            try:
                if not self.resolver.resolves(sender_domain):
                    return DropReason.UNRESOLVABLE_DOMAIN
            except DnsTemporaryFailure:
                # A real MTA would 451 and the remote would retry until the
                # weather cleared; inbound retries are not modelled, so a
                # transient failure passes the check rather than being
                # misclassified as UNRESOLVABLE_DOMAIN.
                self.dns_tempfails += 1
        rcpt_local, rcpt_domain = message.env_to.rsplit("@", 1)
        rcpt_domain = rcpt_domain.lower()
        if not self.config.accepts_domain(rcpt_domain):
            return DropReason.NO_RELAY
        if (
            not null_sender
            and message.env_from.lower() in self.config.rejected_senders
        ):
            return DropReason.SENDER_REJECTED
        if rcpt_domain == self.config.domain:
            if not self.config.is_protected_recipient(rcpt_local, rcpt_domain):
                return DropReason.UNKNOWN_RECIPIENT
        # Relayed domains: the server cannot validate recipients, so the
        # message passes (this is the open-relay behaviour from the paper).
        return None

    def precheck_batch(self, messages: list) -> None:
        """Precompute the DNS-independent MTA verdict for a message batch.

        One linear sweep with every lookup hoisted to a local — the batch
        equivalent of :meth:`_classify`, minus the resolver step. Sets
        ``message.mta_hint = (pre_dns_reason, sender_domain,
        post_dns_reason)`` on every message:

        * ``pre_dns_reason`` — MALFORMED, concluded before DNS would run;
        * ``sender_domain`` — domain to resolve at delivery time (``None``
          for the null reverse-path, whose sender checks are skipped);
        * ``post_dns_reason`` — the verdict *assuming resolution passes*.

        Legal because everything except resolution depends only on the
        envelope and on per-run-static config (relay domains, rejected
        senders, the protected-user set); DNS alone is time-dependent
        (fault plans, tempfail weather) and stays in :meth:`check`.
        Addresses are lowercased here exactly as ``normalize_ingress``
        will lowercase them before :meth:`check` reads the hint.
        """
        config = self.config
        rejected = config.rejected_senders
        own_domain = config.domain
        # accepts_domain / is_protected_recipient are one-line set checks;
        # their operands are inlined here so the sweep pays set membership,
        # not bound-method calls, per message.
        relay_set = config._relay_set
        user_set = config._user_set
        wf = is_well_formed
        split = split_address
        # Memo dicts consulted inline: a hit costs one dict get instead of
        # a function call. Misses fall back to the functions, which own the
        # cap/clear policy (the dicts are cleared in place, never rebound,
        # so these references stay live).
        wf_cache_get = _WELL_FORMED_CACHE.get
        split_cache_get = _SPLIT_CACHE.get
        no_relay = DropReason.NO_RELAY
        sender_rejected = DropReason.SENDER_REJECTED
        unknown = DropReason.UNKNOWN_RECIPIENT
        for message in messages:
            # islower() is an allocation-free C scan; generator traffic is
            # already canonical, so the common case skips the str copy.
            env_to = message.env_to
            if not env_to.islower():
                env_to = env_to.lower()
            verdict = wf_cache_get(env_to)
            if not (verdict if verdict is not None else wf(env_to)):
                message.mta_hint = _HINT_MALFORMED
                continue
            env_from = message.env_from
            if env_from:
                if not env_from.islower():
                    env_from = env_from.lower()
                verdict = wf_cache_get(env_from)
                if not (verdict if verdict is not None else wf(env_from)):
                    message.mta_hint = _HINT_MALFORMED
                    continue
                pair = split_cache_get(env_from)
                sender_domain = (
                    pair if pair is not None else split(env_from)
                )[1]
            else:
                sender_domain = None
            pair = split_cache_get(env_to)
            if pair is None:
                pair = split(env_to)
            rcpt_local, rcpt_domain = pair
            if rcpt_domain == own_domain:
                if sender_domain is not None and env_from in rejected:
                    post = sender_rejected
                elif rcpt_local not in user_set:
                    post = unknown
                else:
                    post = None
            elif rcpt_domain not in relay_set:
                post = no_relay
            elif sender_domain is not None and env_from in rejected:
                post = sender_rejected
            else:
                post = None
            message.mta_hint = (None, sender_domain, post)
