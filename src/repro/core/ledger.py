"""The message-lifecycle ledger: every accepted message ends in exactly one
terminal disposition.

The paper's headline numbers are all *conservation statements* — 90.4M
inbound emails partitioned into delivered / quarantined / dropped /
challenged outcomes (Table 1, Fig. 1, the §3 ratios) — so a message our
pipeline silently strands skews every reproduced figure. This module makes
the partition explicit as a per-company state machine::

    accepted ─→ delivered        (sender whitelisted → straight to inbox)
             ─→ black_dropped    (sender blacklisted)
             ─→ filter_dropped   (auxiliary filter chain)
             ─→ quarantined ─→ released            (CAPTCHA or digest)
                            ─→ deleted             (user, from the digest)
                            ─→ expired             (30-day quarantine)
                            ─→ pending_at_horizon  (run ended first)

Each pipeline layer records its own stage: the engine records ``accept``,
the dispatcher records the classification, and the gray spool records the
quarantine terminals — so the ledger cross-checks the layers against each
other instead of trusting any single one.

Two operating modes:

* **Counters (always on).** O(1) per message; the end-of-run partition
  invariant (``accepted == sum of terminal buckets``, nothing left in
  quarantine) is checked after every run by
  :class:`~repro.experiments.runner.LedgerStats`.
* **Audit (opt-in).** ``run_simulation(audit=True)``, ``--audit`` on the
  CLI, or ``REPRO_AUDIT=1`` additionally tracks every message's current
  state and validates each transition *as it happens* — an illegal edge
  (release after expiry, double finalize, a spool entry the ledger never
  saw) raises :class:`LedgerError` at the offending call, not at the end
  of the run. Audit mode changes no observable output: the measurement
  store is byte-identical with audit on or off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class LedgerError(RuntimeError):
    """A lifecycle invariant was violated (illegal transition or a broken
    end-of-run partition)."""


class LifecycleState(enum.Enum):
    """Where one accepted message currently is in the CR pipeline."""

    # Identity hash (C speed) — these are dict/Counter keys on the per-
    # message hot path; enum equality is identity, so this is safe.
    __hash__ = object.__hash__

    ACCEPTED = "accepted"
    #: Terminal: sender whitelisted, message went straight to the inbox.
    DELIVERED = "delivered"
    #: Terminal: sender blacklisted, message silently dropped.
    BLACK_DROPPED = "black_dropped"
    #: Terminal: an auxiliary filter (AV/rDNS/RBL/SPF) dropped it.
    FILTER_DROPPED = "filter_dropped"
    #: Non-terminal: waiting in the gray spool.
    QUARANTINED = "quarantined"
    #: Terminal: released to the inbox (solved challenge or digest).
    RELEASED = "released"
    #: Terminal: the user deleted it from the digest.
    DELETED = "deleted"
    #: Terminal: the 30-day quarantine elapsed.
    EXPIRED = "expired"
    #: Terminal: still quarantined when the simulation horizon ended.
    PENDING_AT_HORIZON = "pending_at_horizon"


#: States a message can rest in forever. Everything else must drain.
TERMINAL_STATES = frozenset(
    {
        LifecycleState.DELIVERED,
        LifecycleState.BLACK_DROPPED,
        LifecycleState.FILTER_DROPPED,
        LifecycleState.RELEASED,
        LifecycleState.DELETED,
        LifecycleState.EXPIRED,
        LifecycleState.PENDING_AT_HORIZON,
    }
)

#: The legal edges of the state machine.
LEGAL_TRANSITIONS = {
    LifecycleState.ACCEPTED: frozenset(
        {
            LifecycleState.DELIVERED,
            LifecycleState.BLACK_DROPPED,
            LifecycleState.FILTER_DROPPED,
            LifecycleState.QUARANTINED,
        }
    ),
    LifecycleState.QUARANTINED: frozenset(
        {
            LifecycleState.RELEASED,
            LifecycleState.DELETED,
            LifecycleState.EXPIRED,
            LifecycleState.PENDING_AT_HORIZON,
        }
    ),
}


@dataclass(frozen=True)
class LedgerSnapshot:
    """Frozen end-of-run view of one company's ledger."""

    company_id: str
    audit: bool
    accepted: int
    delivered: int
    black_dropped: int
    filter_dropped: int
    quarantined_total: int
    released: int
    deleted: int
    expired: int
    pending_at_horizon: int
    #: Messages still in quarantine (should be 0 after the drain).
    in_quarantine: int
    #: Audit mode only: (msg_id, state) of every message *not* in a
    #: terminal state at snapshot time. Empty when conservation holds.
    stranded: tuple = ()

    @property
    def terminal_total(self) -> int:
        return (
            self.delivered
            + self.black_dropped
            + self.filter_dropped
            + self.released
            + self.deleted
            + self.expired
            + self.pending_at_horizon
        )

    @property
    def conserved(self) -> bool:
        """Every accepted message sits in exactly one terminal bucket."""
        return (
            self.accepted == self.terminal_total
            and self.in_quarantine == 0
            and not self.stranded
        )

    @property
    def live_conserved(self) -> bool:
        """Mid-run conservation: every accepted message is either in a
        terminal bucket or currently waiting in quarantine.

        This is the invariant a *running* service satisfies (quarantine is
        legitimately non-empty between digests); :attr:`conserved` is the
        end-of-run form after the drain. Used by the live frontend's
        WAL-replay reconciliation and its ``/stats`` endpoint.
        """
        return (
            self.in_quarantine >= 0
            and self.accepted == self.terminal_total + self.in_quarantine
        )


class MessageLedger:
    """Lifecycle accounting for one company's accepted messages.

    Counters are maintained unconditionally (a handful of dict increments
    per message). With ``audit=True`` the ledger also keeps every
    message's current state and raises :class:`LedgerError` the moment a
    transition is illegal or the running partition stops summing.
    """

    def __init__(self, company_id: str, audit: bool = False) -> None:
        self.company_id = company_id
        self.audit = audit
        self.accepted = 0
        self._counts: dict[LifecycleState, int] = {
            state: 0 for state in LifecycleState
        }
        #: msg_id -> current state; audit mode only.
        self._states: Optional[dict[int, LifecycleState]] = (
            {} if audit else None
        )

    # -- transitions ------------------------------------------------------

    def accept(self, msg_id: int) -> None:
        """MTA-IN accepted *msg_id*: it enters the lifecycle."""
        self.accepted += 1
        self._counts[LifecycleState.ACCEPTED] += 1
        if self._states is not None:
            if msg_id in self._states:
                raise LedgerError(
                    f"{self.company_id}: message {msg_id} accepted twice"
                )
            self._states[msg_id] = LifecycleState.ACCEPTED

    def transition(self, msg_id: int, state: LifecycleState) -> None:
        """Move *msg_id* into *state* (classification or a gray terminal)."""
        self._counts[state] += 1
        if self._states is None:
            return
        prev = self._states.get(msg_id)
        if prev is None:
            raise LedgerError(
                f"{self.company_id}: message {msg_id} moved to {state.value} "
                f"but was never accepted"
            )
        if state not in LEGAL_TRANSITIONS.get(prev, frozenset()):
            raise LedgerError(
                f"{self.company_id}: illegal lifecycle transition for "
                f"message {msg_id}: {prev.value} -> {state.value}"
            )
        self._states[msg_id] = state
        self._check_partition()

    # -- invariants -------------------------------------------------------

    @property
    def in_quarantine(self) -> int:
        """Messages currently waiting in the gray spool."""
        c = self._counts
        return c[LifecycleState.QUARANTINED] - (
            c[LifecycleState.RELEASED]
            + c[LifecycleState.DELETED]
            + c[LifecycleState.EXPIRED]
            + c[LifecycleState.PENDING_AT_HORIZON]
        )

    @property
    def unclassified(self) -> int:
        """Accepted messages the dispatcher has not yet placed (transiently
        nonzero only inside ``handle_inbound``)."""
        c = self._counts
        return self.accepted - (
            c[LifecycleState.DELIVERED]
            + c[LifecycleState.BLACK_DROPPED]
            + c[LifecycleState.FILTER_DROPPED]
            + c[LifecycleState.QUARANTINED]
        )

    def _check_partition(self) -> None:
        """Continuous audit-mode check: the stage counters still partition
        the accepted population (catches a layer bypassing the ledger)."""
        if self.unclassified != 0 or self.in_quarantine < 0:
            c = self._counts
            raise LedgerError(
                f"{self.company_id}: lifecycle partition broken: "
                f"{self.accepted} accepted != "
                f"{c[LifecycleState.DELIVERED]} delivered + "
                f"{c[LifecycleState.BLACK_DROPPED]} black + "
                f"{c[LifecycleState.FILTER_DROPPED]} filter-dropped + "
                f"{c[LifecycleState.QUARANTINED]} quarantined "
                f"(in quarantine now: {self.in_quarantine})"
            )

    def count(self, state: LifecycleState) -> int:
        return self._counts[state]

    def snapshot(self) -> LedgerSnapshot:
        """Freeze the ledger for end-of-run verdicts and reports."""
        c = self._counts
        stranded: tuple = ()
        if self._states is not None:
            stranded = tuple(
                (msg_id, state.value)
                for msg_id, state in self._states.items()
                if state not in TERMINAL_STATES
            )
        return LedgerSnapshot(
            company_id=self.company_id,
            audit=self.audit,
            accepted=self.accepted,
            delivered=c[LifecycleState.DELIVERED],
            black_dropped=c[LifecycleState.BLACK_DROPPED],
            filter_dropped=c[LifecycleState.FILTER_DROPPED],
            quarantined_total=c[LifecycleState.QUARANTINED],
            released=c[LifecycleState.RELEASED],
            deleted=c[LifecycleState.DELETED],
            expired=c[LifecycleState.EXPIRED],
            pending_at_horizon=c[LifecycleState.PENDING_AT_HORIZON],
            in_quarantine=self.in_quarantine,
            stranded=stranded,
        )


__all__ = [
    "LEGAL_TRANSITIONS",
    "LedgerError",
    "LedgerSnapshot",
    "LifecycleState",
    "MessageLedger",
    "TERMINAL_STATES",
]
