"""The internal email dispatcher — the core of the CR infrastructure.

Figure 1's "dispatcher" decides which category an accepted message belongs
to: **white** (sender in the recipient's whitelist → inbox), **black**
(sender in the recipient's blacklist → dropped), or **gray** (unknown
sender). Gray messages then face the auxiliary filter chain; survivors are
quarantined and a challenge is sent to their sender — unless a challenge
for the same (recipient, sender) pair is already pending, in which case the
message simply joins the waiting set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.challenge import Challenge, ChallengeManager
from repro.core.filters.base import FilterChain
from repro.core.ledger import LifecycleState, MessageLedger
from repro.core.message import EmailMessage
from repro.core.spools import Category, GraySpool
from repro.core.whitelist import WhitelistDirectory
from repro.util.simtime import DAY


@dataclass(frozen=True)
class DispatchDecision:
    """Everything the engine needs to log about one dispatched message."""

    category: Category
    filter_drop: Optional[str]
    challenge: Optional[Challenge]
    challenge_created: bool


class Dispatcher:
    """Sorts accepted messages into spools for one company."""

    def __init__(
        self,
        whitelists: WhitelistDirectory,
        filter_chain: FilterChain,
        gray_spool: GraySpool,
        challenge_manager: ChallengeManager,
        quarantine_days: int,
        challenge_size: int,
        challenge_dedup: bool = True,
        ledger: Optional[MessageLedger] = None,
    ) -> None:
        self.whitelists = whitelists
        self.filter_chain = filter_chain
        self.gray_spool = gray_spool
        self.challenge_manager = challenge_manager
        self.quarantine_seconds = quarantine_days * DAY
        self.challenge_size = challenge_size
        self.challenge_dedup = challenge_dedup
        self.ledger = ledger
        self.white_count = 0
        self.black_count = 0
        self.gray_count = 0

    def _record(self, message: EmailMessage, state: LifecycleState) -> None:
        if self.ledger is not None:
            self.ledger.transition(message.msg_id, state)

    def process(
        self, message: EmailMessage, user_key: str, now: float
    ) -> DispatchDecision:
        """Classify *message* addressed to *user_key* (full address).

        ``message.env_from`` is already lowercase (normalized once at
        engine ingress).
        """
        sender = message.env_from
        lists = self.whitelists.lists_for(user_key)
        if sender and lists.in_whitelist(sender):
            self.white_count += 1
            self._record(message, LifecycleState.DELIVERED)
            return DispatchDecision(Category.WHITE, None, None, False)
        if sender and lists.in_blacklist(sender):
            self.black_count += 1
            self._record(message, LifecycleState.BLACK_DROPPED)
            return DispatchDecision(Category.BLACK, None, None, False)

        self.gray_count += 1
        dropping_filter = self.filter_chain.first_drop(message, now)
        if dropping_filter is not None:
            self._record(message, LifecycleState.FILTER_DROPPED)
            return DispatchDecision(Category.GRAY, dropping_filter, None, False)

        if not sender:
            # Null reverse-path: a bounce/DSN. Challenging it would answer
            # an autoresponder with an autoresponder (RFC 3834 forbids it,
            # and two CR systems would otherwise loop), so the message is
            # quarantined for the digest without any challenge.
            self.gray_spool.add(
                message,
                user_key,
                now,
                expires_at=now + self.quarantine_seconds,
                challenge_id=None,
            )
            return DispatchDecision(Category.GRAY, None, None, False)

        challenge, created = self.challenge_manager.issue(
            user_key,
            sender,
            message,
            now,
            self.challenge_size,
            dedup=self.challenge_dedup,
        )
        self.gray_spool.add(
            message,
            user_key,
            now,
            expires_at=now + self.quarantine_seconds,
            challenge_id=challenge.challenge_id,
        )
        return DispatchDecision(Category.GRAY, None, challenge, created)
