"""The internal email dispatcher — the core of the CR infrastructure.

Figure 1's "dispatcher" decides which category an accepted message belongs
to: **white** (sender in the recipient's whitelist → inbox), **black**
(sender in the recipient's blacklist → dropped), or **gray** (unknown
sender). Gray messages then face the auxiliary filter chain; survivors are
quarantined and a challenge is sent to their sender — unless a challenge
for the same (recipient, sender) pair is already pending, in which case the
message simply joins the waiting set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.challenge import Challenge, ChallengeManager
from repro.core.filters.base import FilterChain
from repro.core.ledger import LifecycleState, MessageLedger
from repro.core.message import EmailMessage
from repro.core.spools import Category, GraySpool
from repro.core.whitelist import WhitelistDirectory
from repro.util.simtime import DAY


@dataclass(frozen=True)
class DispatchDecision:
    """Everything the engine needs to log about one dispatched message."""

    category: Category
    filter_drop: Optional[str]
    challenge: Optional[Challenge]
    challenge_created: bool


class Dispatcher:
    """Sorts accepted messages into spools for one company."""

    def __init__(
        self,
        whitelists: WhitelistDirectory,
        filter_chain: FilterChain,
        gray_spool: GraySpool,
        challenge_manager: ChallengeManager,
        quarantine_days: int,
        challenge_size: int,
        challenge_dedup: bool = True,
        ledger: Optional[MessageLedger] = None,
    ) -> None:
        self.whitelists = whitelists
        self.filter_chain = filter_chain
        self.gray_spool = gray_spool
        self.challenge_manager = challenge_manager
        self.quarantine_seconds = quarantine_days * DAY
        self.challenge_size = challenge_size
        self.challenge_dedup = challenge_dedup
        self.ledger = ledger
        self.white_count = 0
        self.black_count = 0
        self.gray_count = 0
        #: Overload-shedding state, driven by the live frontend's
        #: degradation ladder; the simulation never touches it, so the
        #: defaults keep simulated dispatch byte-identical.
        #: Level 0: full configured chain. Level 1: run ``shed_chain``
        #: (the chain minus auxiliary members) instead. Level >= 2:
        #: quarantine-by-default — skip the chain *and* challenge
        #: issuance entirely; messages still land in the gray spool with
        #: a ledger transition, never dropped silently.
        self.shed_level = 0
        self.shed_chain: Optional[FilterChain] = None
        #: Messages quarantined without chain/challenge because the
        #: dispatcher was at shed level >= 2 when they arrived.
        self.shed_quarantined = 0

    def _record(self, message: EmailMessage, state: LifecycleState) -> None:
        if self.ledger is not None:
            self.ledger.transition(message.msg_id, state)

    def process(
        self, message: EmailMessage, user_key: str, now: float
    ) -> DispatchDecision:
        """Classify *message* addressed to *user_key* (full address).

        ``message.env_from`` is already lowercase (normalized once at
        engine ingress).
        """
        sender = message.env_from
        lists = self.whitelists.lists_for(user_key)
        if sender and lists.in_whitelist(sender):
            self.white_count += 1
            self._record(message, LifecycleState.DELIVERED)
            return DispatchDecision(Category.WHITE, None, None, False)
        if sender and lists.in_blacklist(sender):
            self.black_count += 1
            self._record(message, LifecycleState.BLACK_DROPPED)
            return DispatchDecision(Category.BLACK, None, None, False)

        self.gray_count += 1
        if self.shed_level >= 2:
            # Deep overload: quarantine-by-default. No chain, no challenge
            # email — but the message is spooled and ledger-accounted, so
            # nothing is lost; it surfaces in the next digest.
            self.shed_quarantined += 1
            self.gray_spool.add(
                message,
                user_key,
                now,
                expires_at=now + self.quarantine_seconds,
                challenge_id=None,
            )
            return DispatchDecision(Category.GRAY, None, None, False)
        chain = (
            self.shed_chain
            if self.shed_level >= 1 and self.shed_chain is not None
            else self.filter_chain
        )
        dropping_filter = chain.first_drop(message, now)
        if dropping_filter is not None:
            self._record(message, LifecycleState.FILTER_DROPPED)
            return DispatchDecision(Category.GRAY, dropping_filter, None, False)

        if not sender:
            # Null reverse-path: a bounce/DSN. Challenging it would answer
            # an autoresponder with an autoresponder (RFC 3834 forbids it,
            # and two CR systems would otherwise loop), so the message is
            # quarantined for the digest without any challenge.
            self.gray_spool.add(
                message,
                user_key,
                now,
                expires_at=now + self.quarantine_seconds,
                challenge_id=None,
            )
            return DispatchDecision(Category.GRAY, None, None, False)

        challenge, created = self.challenge_manager.issue(
            user_key,
            sender,
            message,
            now,
            self.challenge_size,
            dedup=self.challenge_dedup,
        )
        self.gray_spool.add(
            message,
            user_key,
            now,
            expires_at=now + self.quarantine_seconds,
            challenge_id=challenge.challenge_id,
        )
        return DispatchDecision(Category.GRAY, None, challenge, created)
