"""The challenge-response anti-spam product (the system the paper measures).

Components, mirroring Figure 1 of the paper:

* :mod:`repro.core.mta_in` — the inbound MTA's first-layer checks
  (well-formedness, sender-domain resolution, relay policy, recipient
  validation);
* :mod:`repro.core.dispatcher` — the internal email dispatcher that sorts
  accepted mail into the white / black / gray spools;
* :mod:`repro.core.filters` — the auxiliary anti-spam filters applied to
  gray mail (antivirus, reverse DNS, IP blacklist, SPF);
* :mod:`repro.core.challenge` — challenge generation and the CAPTCHA web
  flow;
* :mod:`repro.core.whitelist` — per-user whitelists/blacklists with all four
  whitelisting mechanisms;
* :mod:`repro.core.spools` — the gray spool (30-day quarantine) and spool
  accounting;
* :mod:`repro.core.digest` — the daily digest of quarantined messages;
* :mod:`repro.core.engine` — :class:`CompanyInstallation`, one deployed
  instance of the product, wiring everything together.
"""

from repro.core.config import CompanyConfig, FilterSettings
from repro.core.message import EmailMessage, MessageKind, SenderClass
from repro.core.mta_in import DropReason, MtaIn
from repro.core.spools import Category, GraySpool, ReleaseMechanism
from repro.core.whitelist import WhitelistDirectory, WhitelistSource


def __getattr__(name):
    # Lazy re-export: repro.core.engine depends on repro.analysis.records,
    # which imports leaf modules of this package — importing the engine
    # eagerly here would close that loop into a circular import.
    if name in ("CompanyInstallation", "BehaviorHooks"):
        from repro.core import engine

        return getattr(engine, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


__all__ = [
    "CompanyConfig",
    "FilterSettings",
    "CompanyInstallation",
    "BehaviorHooks",
    "EmailMessage",
    "MessageKind",
    "SenderClass",
    "MtaIn",
    "DropReason",
    "Category",
    "GraySpool",
    "ReleaseMechanism",
    "WhitelistDirectory",
    "WhitelistSource",
]
