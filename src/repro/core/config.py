"""Per-company configuration of a CR installation.

Also re-exports the fault-injection presets
(:data:`~repro.net.faults.FAULT_PRESETS`) so deployment configuration —
scale preset, filter settings, network weather — reads from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.net.faults import (  # noqa: F401  (re-export)
    FAULT_PRESETS,
    FaultSettings,
    fault_preset_names,
    get_fault_preset,
)


@dataclass(frozen=True)
class FilterSettings:
    """Which auxiliary filters the installation runs on gray mail.

    The commercial product in the paper ran antivirus, reverse-DNS, and a
    SpamHaus IP blacklist; SPF was evaluated only offline (Fig. 12), so it
    defaults to off here too.
    """

    antivirus: bool = True
    reverse_dns: bool = True
    rbl: bool = True
    spf: bool = False
    antivirus_detection_rate: float = 0.98
    rbl_provider: str = "spamhaus-zen"


@dataclass(frozen=True)
class CompanyConfig:
    """Static description of one protected company."""

    company_id: str
    name: str
    #: Primary domain whose users the CR system protects.
    domain: str
    #: Local parts of the protected accounts.
    users: Tuple[str, ...]
    #: IP of the inbound MTA.
    mta_in_ip: str
    #: IP used for outgoing *user* mail.
    mta_out_ip: str
    #: IP used for outgoing *challenges*. One third of the paper's
    #: installations used a second MTA-OUT with a distinct IP precisely to
    #: contain blacklisting damage; for the rest this equals ``mta_out_ip``.
    challenge_ip: str
    #: Open relays additionally accept mail for these foreign domains,
    #: without being able to validate their recipients.
    relay_domains: Tuple[str, ...] = ()
    #: Envelope senders the MTA rejects outright (site-level blocks).
    rejected_senders: FrozenSet[str] = frozenset()
    filters: FilterSettings = field(default_factory=FilterSettings)
    #: Days a message waits in the gray spool before being dropped.
    quarantine_days: int = 30
    #: Suppress duplicate challenges while one is pending for the same
    #: (recipient, sender) pair. Always on in the commercial product;
    #: exposed for the dedup ablation bench.
    challenge_dedup: bool = True
    #: Hour of (simulated) day at which the daily digest is generated.
    digest_hour: int = 7

    def __post_init__(self) -> None:
        # Frozen dataclass: precompute the hot-path lookup sets once.
        object.__setattr__(self, "_user_set", frozenset(self.users))
        object.__setattr__(self, "_relay_set", frozenset(self.relay_domains))

    @property
    def open_relay(self) -> bool:
        return bool(self.relay_domains)

    @property
    def dual_outbound(self) -> bool:
        return self.challenge_ip != self.mta_out_ip

    def is_protected_recipient(self, local: str, domain: str) -> bool:
        """True when ``local@domain`` is a CR-protected account."""
        return domain == self.domain and local in self._user_set  # type: ignore[attr-defined]

    def accepts_domain(self, domain: str) -> bool:
        """True when the MTA accepts mail addressed to *domain* at all."""
        return domain == self.domain or domain in self._relay_set  # type: ignore[attr-defined]
