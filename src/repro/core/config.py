"""Per-company configuration of a CR installation.

Also re-exports the fault-injection presets
(:data:`~repro.net.faults.FAULT_PRESETS`) so deployment configuration —
scale preset, filter settings, network weather — reads from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.net.faults import (  # noqa: F401  (re-export)
    FAULT_PRESETS,
    FaultSettings,
    fault_preset_names,
    get_fault_preset,
)


@dataclass(frozen=True)
class FilterSettings:
    """Which auxiliary filters the installation runs on gray mail.

    The commercial product in the paper ran antivirus, reverse-DNS, and a
    SpamHaus IP blacklist; SPF was evaluated only offline (Fig. 12), so it
    defaults to off here too.
    """

    antivirus: bool = True
    reverse_dns: bool = True
    rbl: bool = True
    spf: bool = False
    antivirus_detection_rate: float = 0.98
    rbl_provider: str = "spamhaus-zen"


#: Every filter the chain builder knows how to instantiate, in the
#: order the default product ran them (content/reputation are the PR 9
#: baselines from the related work; spf stayed offline in the paper).
FILTER_MEMBERS = (
    "antivirus", "reverse_dns", "rbl", "spf", "content", "reputation",
)

#: The legacy product chain — what :class:`FilterSettings` defaults build.
DEFAULT_CHAIN_MEMBERS = ("antivirus", "reverse_dns", "rbl")

#: Named chain compositions the CLI / frontier experiment accept.
CHAIN_PRESETS = {
    "default": DEFAULT_CHAIN_MEMBERS,
    # No auxiliary filters at all: every gray message is challenged. The
    # frontier's pure-CR reference point — its FPs are exactly the
    # unsolved-challenge losses, with no filter false drops mixed in.
    "cr-only": (),
    # The related-work baselines run *alone* so their FP/FN frontier is
    # attributable to the baseline itself, not the product chain.
    "naive-bayes": ("content",),
    "reputation": ("reputation",),
    # The product chain plus both baselines behind it.
    "hybrid": ("antivirus", "reverse_dns", "rbl", "content", "reputation"),
}


@dataclass(frozen=True)
class FilterChainSpec:
    """Declarative composition of the auxiliary filter chain.

    Frozen and hashable (tuples + scalars only) so a spec folds into the
    sweep cache key, ships to shard workers, and round-trips through
    scenario YAML with a deterministic repr. ``members`` are instantiated
    in order — the chain short-circuits on the first drop, so order is
    part of the configuration. Per-member knobs (thresholds, windows)
    live here rather than on the filters so one spec fully determines
    the chain.

    ``None`` everywhere a chain is accepted means "the legacy
    :class:`FilterSettings`-gated build" — byte-identical to the
    pre-spec behaviour, which is what keeps the scenario-free goldens
    pinned.
    """

    members: Tuple[str, ...] = DEFAULT_CHAIN_MEMBERS
    #: Online naive-Bayes log-odds decision threshold (0.0 = maximum
    #: likelihood; raise it to trade false positives for false negatives).
    content_threshold: float = 0.0
    #: Days of in-run training before the content filter may drop at all.
    content_warmup_days: float = 3.0
    #: Sliding history window of the sender-reputation filter.
    reputation_window_days: float = 14.0
    #: Spam share of a key's window at which reputation drops.
    reputation_threshold: float = 0.9
    #: Minimum combined (domain + /24) observations before judging.
    reputation_min_observations: int = 12

    def __post_init__(self) -> None:
        if not isinstance(self.members, tuple):
            object.__setattr__(self, "members", tuple(self.members))
        unknown = [m for m in self.members if m not in FILTER_MEMBERS]
        if unknown:
            raise ValueError(
                f"unknown filter member(s) {', '.join(unknown)}; "
                f"known: {', '.join(FILTER_MEMBERS)}"
            )
        if not 0.0 < self.reputation_threshold <= 1.0:
            raise ValueError(
                f"reputation_threshold must be in (0, 1]: "
                f"{self.reputation_threshold}"
            )

    @classmethod
    def parse(cls, value) -> "Optional[FilterChainSpec]":
        """Coerce the accepted chain notations into a spec.

        ``None`` passes through (legacy build); specs pass through; a
        string is either a preset name (``"hybrid"``) or a comma list of
        members (``"antivirus,content"``).
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            name = value.strip()
            if name in CHAIN_PRESETS:
                return cls(members=CHAIN_PRESETS[name])
            members = tuple(m.strip() for m in name.split(",") if m.strip())
            if not members:
                raise ValueError(f"empty filter chain spec: {value!r}")
            return cls(members=members)
        raise TypeError(
            f"chain must be a FilterChainSpec, a preset/comma string, or "
            f"None; got {type(value).__name__}"
        )


def chain_preset_names() -> list:
    """Registry listing for the CLI's ``--filters`` help text."""
    return sorted(CHAIN_PRESETS)


@dataclass(frozen=True)
class CompanyConfig:
    """Static description of one protected company."""

    company_id: str
    name: str
    #: Primary domain whose users the CR system protects.
    domain: str
    #: Local parts of the protected accounts.
    users: Tuple[str, ...]
    #: IP of the inbound MTA.
    mta_in_ip: str
    #: IP used for outgoing *user* mail.
    mta_out_ip: str
    #: IP used for outgoing *challenges*. One third of the paper's
    #: installations used a second MTA-OUT with a distinct IP precisely to
    #: contain blacklisting damage; for the rest this equals ``mta_out_ip``.
    challenge_ip: str
    #: Open relays additionally accept mail for these foreign domains,
    #: without being able to validate their recipients.
    relay_domains: Tuple[str, ...] = ()
    #: Envelope senders the MTA rejects outright (site-level blocks).
    rejected_senders: FrozenSet[str] = frozenset()
    filters: FilterSettings = field(default_factory=FilterSettings)
    #: Days a message waits in the gray spool before being dropped.
    quarantine_days: int = 30
    #: Suppress duplicate challenges while one is pending for the same
    #: (recipient, sender) pair. Always on in the commercial product;
    #: exposed for the dedup ablation bench.
    challenge_dedup: bool = True
    #: Hour of (simulated) day at which the daily digest is generated.
    digest_hour: int = 7

    def __post_init__(self) -> None:
        # Frozen dataclass: precompute the hot-path lookup sets once.
        object.__setattr__(self, "_user_set", frozenset(self.users))
        object.__setattr__(self, "_relay_set", frozenset(self.relay_domains))

    @property
    def open_relay(self) -> bool:
        return bool(self.relay_domains)

    @property
    def dual_outbound(self) -> bool:
        return self.challenge_ip != self.mta_out_ip

    def is_protected_recipient(self, local: str, domain: str) -> bool:
        """True when ``local@domain`` is a CR-protected account."""
        return domain == self.domain and local in self._user_set  # type: ignore[attr-defined]

    def accepts_domain(self, domain: str) -> bool:
        """True when the MTA accepts mail addressed to *domain* at all."""
        return domain == self.domain or domain in self._relay_set  # type: ignore[attr-defined]
