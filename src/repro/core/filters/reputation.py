"""Aggregated-historical sender reputation (Menahem & Puzis style).

Scores each gray message against the recent spam/ham history of two
aggregation keys — the envelope sender's domain and the client's /24
network — over a sliding window of simulated time. A message is dropped
when the combined window holds enough observations to judge and the
spam share meets the threshold; otherwise the filter abstains and lets
the rest of the chain (or the CR quarantine) decide.

Like the content filter, history is labelled from the workload's ground
truth, standing in for the feedback corpus a deployed reputation system
accumulates. Score-then-record: the message being judged is not part of
the history that judges it. The filter is fully deterministic (no RNG),
so per-company instances are shard-safe under replicated-trace
sharding — each company's filter sees exactly its own mail in time
order regardless of shard count.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.filters.base import SpamFilter
from repro.core.message import EmailMessage, MessageKind
from repro.util.simtime import DAY


class _History:
    """Sliding window of (t, is_spam) observations for one key."""

    __slots__ = ("events", "spam")

    def __init__(self) -> None:
        self.events: Deque[Tuple[float, bool]] = deque()
        self.spam = 0

    def prune(self, horizon: float) -> None:
        events = self.events
        while events and events[0][0] < horizon:
            _, was_spam = events.popleft()
            if was_spam:
                self.spam -= 1

    def record(self, t: float, is_spam: bool) -> None:
        self.events.append((t, is_spam))
        if is_spam:
            self.spam += 1

    def __len__(self) -> int:
        return len(self.events)


def _sender_domain(env_from: Optional[str]) -> Optional[str]:
    if not env_from or "@" not in env_from:
        return None
    return env_from.rsplit("@", 1)[1]


def _client_net(client_ip: str) -> str:
    """/24 prefix — the aggregation granularity of the related work."""
    return client_ip.rsplit(".", 1)[0]


class SenderReputationFilter(SpamFilter):
    """Drop mail from (domain, /24) pairs with a spammy recent history.

    ``threshold`` is the spam share of the combined window at which the
    filter drops; ``min_observations`` is the combined history size below
    which it abstains (a fresh sender deserves the benefit of the
    doubt — exactly the property that lets CR-style quarantining coexist
    with reputation). Null-sender mail (bounces, challenges) has no
    domain key and is judged on the /24 alone.
    """

    name = "reputation"

    def __init__(
        self,
        window_days: float = 14.0,
        threshold: float = 0.9,
        min_observations: int = 12,
    ) -> None:
        if window_days <= 0:
            raise ValueError(f"window_days must be positive: {window_days}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1]: {threshold}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be at least 1: {min_observations}"
            )
        self.window_seconds = window_days * DAY
        self.threshold = threshold
        self.min_observations = min_observations
        self._domains: Dict[str, _History] = {}
        self._networks: Dict[str, _History] = {}
        #: Messages dropped / abstained on, for introspection and tests.
        self.dropped = 0
        self.abstained = 0

    def _history(
        self, table: Dict[str, _History], key: str, horizon: float
    ) -> _History:
        history = table.get(key)
        if history is None:
            history = table[key] = _History()
        else:
            history.prune(horizon)
        return history

    def should_drop(self, message: EmailMessage, now: float) -> bool:
        horizon = now - self.window_seconds
        histories = []
        domain = _sender_domain(message.env_from)
        if domain is not None:
            histories.append(self._history(self._domains, domain, horizon))
        net_history = self._history(
            self._networks, _client_net(message.client_ip), horizon
        )
        histories.append(net_history)

        observations = sum(len(h) for h in histories)
        spam = sum(h.spam for h in histories)
        verdict = (
            observations >= self.min_observations
            and spam / observations >= self.threshold
        )
        if verdict:
            self.dropped += 1
        else:
            self.abstained += 1

        is_spam = message.kind is MessageKind.SPAM
        for history in histories:
            history.record(now, is_spam)
        return verdict
