"""Filter interface and chain."""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.core.message import EmailMessage


class SpamFilter(abc.ABC):
    """One anti-spam check applied to a gray message."""

    #: Stable identifier used in logs ("reverse_dns", "rbl", ...), matching
    #: the per-filter drop counters of the paper's Table 1.
    name: str = "filter"

    @abc.abstractmethod
    def should_drop(self, message: EmailMessage, now: float) -> bool:
        """True when the filter classifies *message* as spam."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class FilterChain:
    """Runs filters in order and reports the first one that drops.

    Short-circuits like the real product: once one filter drops a message,
    later filters never see it — which is why per-filter drop counts depend
    on chain order (antivirus → reverse DNS → RBL in the paper's text).
    """

    def __init__(self, filters: Sequence[SpamFilter]) -> None:
        self.filters = list(filters)
        self.drops_by_filter: dict[str, int] = {f.name: 0 for f in self.filters}
        self.passed = 0

    def first_drop(self, message: EmailMessage, now: float) -> Optional[str]:
        """Name of the filter that dropped *message*, or None if it passed."""
        for spam_filter in self.filters:
            if spam_filter.should_drop(message, now):
                self.drops_by_filter[spam_filter.name] += 1
                return spam_filter.name
        self.passed += 1
        return None
