"""IP-blacklist (RBL) filter.

The product queried the SpamHaus blacklist for every gray message's client
IP; we query whichever :class:`~repro.blacklistd.service.DnsblService` the
company subscribes to.
"""

from __future__ import annotations

from repro.blacklistd.service import DnsblService
from repro.core.filters.base import SpamFilter
from repro.core.message import EmailMessage


class RblFilter(SpamFilter):
    name = "rbl"

    def __init__(self, service: DnsblService) -> None:
        self.service = service

    def should_drop(self, message: EmailMessage, now: float) -> bool:
        return self.service.is_listed(message.client_ip, now)
