"""Auxiliary anti-spam filters applied to gray mail before challenging.

The commercial product combined three filters — antivirus, reverse-DNS, and
a SpamHaus-style IP blacklist — to cut the number of useless challenges
(they drop a large majority of gray mail, Fig. 3). SPF is implemented too,
but kept out of the default chain because the paper evaluated it only
offline (Fig. 12).
"""

from repro.core.filters.antivirus import AntivirusFilter
from repro.core.filters.base import FilterChain, SpamFilter
from repro.core.filters.rbl import RblFilter
from repro.core.filters.reverse_dns import ReverseDnsFilter
from repro.core.filters.spf import SpfEvaluator, SpfFilter, SpfResult

__all__ = [
    "SpamFilter",
    "FilterChain",
    "AntivirusFilter",
    "ReverseDnsFilter",
    "RblFilter",
    "SpfEvaluator",
    "SpfFilter",
    "SpfResult",
]
