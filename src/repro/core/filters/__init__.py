"""Auxiliary anti-spam filters applied to gray mail before challenging.

The commercial product combined three filters — antivirus, reverse-DNS, and
a SpamHaus-style IP blacklist — to cut the number of useless challenges
(they drop a large majority of gray mail, Fig. 3). SPF is implemented too,
but kept out of the default chain because the paper evaluated it only
offline (Fig. 12). The related-work baselines — an online naive-Bayes
content filter and an aggregated-historical sender-reputation filter —
are chain members as well, composed via
:class:`~repro.core.config.FilterChainSpec`.
"""

from repro.core.filters.antivirus import AntivirusFilter
from repro.core.filters.base import FilterChain, SpamFilter
from repro.core.filters.content import NaiveBayesFilter, OnlineNaiveBayesFilter
from repro.core.filters.rbl import RblFilter
from repro.core.filters.reputation import SenderReputationFilter
from repro.core.filters.reverse_dns import ReverseDnsFilter
from repro.core.filters.spf import SpfEvaluator, SpfFilter, SpfResult

__all__ = [
    "SpamFilter",
    "FilterChain",
    "AntivirusFilter",
    "ReverseDnsFilter",
    "RblFilter",
    "NaiveBayesFilter",
    "OnlineNaiveBayesFilter",
    "SenderReputationFilter",
    "SpfEvaluator",
    "SpfFilter",
    "SpfResult",
]
