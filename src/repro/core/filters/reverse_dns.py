"""Reverse-DNS filter: distrust clients whose IP has no PTR record.

Botnet members deliver spam straight from residential IPs that typically
lack (or have generic) reverse mappings, while legitimate mail servers
publish PTR records — the classic heuristic the paper's product employs.
"""

from __future__ import annotations

from repro.core.filters.base import SpamFilter
from repro.core.message import EmailMessage
from repro.net.dns import Resolver


class ReverseDnsFilter(SpamFilter):
    name = "reverse_dns"

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver

    def should_drop(self, message: EmailMessage, now: float) -> bool:
        return self.resolver.ptr(message.client_ip) is None
