"""Naive-Bayes content filtering: the Androutsopoulos et al. baseline.

Two layers live here:

* :class:`NaiveBayesFilter` — the multinomial naive-Bayes classifier with
  Laplace smoothing over subject tokens (the only "content" the
  measurement pipeline retains — like the paper, we never see message
  bodies). It is the shared math: the offline CR-vs-Bayes comparison in
  :mod:`repro.baselines` trains it post-hoc on logged records, and the
  online chain member below trains it incrementally during the run.

* :class:`OnlineNaiveBayesFilter` — a :class:`~repro.core.filters.base.SpamFilter`
  wrapping the classifier so it runs *inside* the dispatcher's chain.
  It scores each gray message first, then folds the message's label into
  the model, so a message never trains on itself. Labels come from the
  workload's ground truth, standing in for the user-feedback / honeypot
  corpora a real operator retrains from — the same modelling stance the
  offline baseline already takes.

Scoring cost note: token totals and the vocabulary are maintained
incrementally by :meth:`NaiveBayesFilter.train`, so one
:meth:`~NaiveBayesFilter.spam_log_odds` call is O(subject tokens) — not
O(vocabulary), which mattered once the classifier moved into the
per-message hot path.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.core.filters.base import SpamFilter
from repro.core.message import EmailMessage, MessageKind
from repro.util.simtime import DAY


@dataclass(frozen=True)
class TrainingSummary:
    """What the filter was fitted on."""

    spam_messages: int
    ham_messages: int
    vocabulary_size: int


def _tokenize(subject: str) -> list[str]:
    return [token for token in subject.lower().split() if token]


class NaiveBayesFilter:
    """Multinomial naive Bayes over subject tokens.

    >>> nb = NaiveBayesFilter()
    >>> nb.train([("cheap meds online", True), ("meeting notes", False)])
    TrainingSummary(spam_messages=1, ham_messages=1, vocabulary_size=5)
    >>> nb.classify("cheap cheap meds")
    True
    """

    def __init__(self, threshold: float = 0.0, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        #: Decision threshold on the log-odds (0.0 = maximum likelihood).
        self.threshold = threshold
        self.smoothing = smoothing
        self._spam_tokens: Counter = Counter()
        self._ham_tokens: Counter = Counter()
        self._spam_docs = 0
        self._ham_docs = 0
        # Incremental aggregates so scoring is O(subject), not O(vocab):
        # kept in lockstep by train(), the only mutation path.
        self._spam_token_total = 0
        self._ham_token_total = 0
        self._vocab: set = set()

    # -- training ---------------------------------------------------------

    def train(
        self, labelled_subjects: Iterable[tuple[str, bool]]
    ) -> TrainingSummary:
        """Fit on ``(subject, is_spam)`` pairs (incremental: can be called
        repeatedly)."""
        vocab = self._vocab
        for subject, is_spam in labelled_subjects:
            tokens = _tokenize(subject)
            if is_spam:
                self._spam_docs += 1
                self._spam_tokens.update(tokens)
                self._spam_token_total += len(tokens)
            else:
                self._ham_docs += 1
                self._ham_tokens.update(tokens)
                self._ham_token_total += len(tokens)
            vocab.update(tokens)
        return TrainingSummary(
            spam_messages=self._spam_docs,
            ham_messages=self._ham_docs,
            vocabulary_size=len(vocab),
        )

    def train_one(self, subject: str, is_spam: bool) -> None:
        """One labelled example, without building a summary (hot path)."""
        tokens = _tokenize(subject)
        if is_spam:
            self._spam_docs += 1
            self._spam_tokens.update(tokens)
            self._spam_token_total += len(tokens)
        else:
            self._ham_docs += 1
            self._ham_tokens.update(tokens)
            self._ham_token_total += len(tokens)
        self._vocab.update(tokens)

    def train_from_records(self, records: Iterable) -> TrainingSummary:
        """Fit on dispatch records using ground-truth labels (the corpus a
        real operator would assemble from user feedback)."""
        return self.train(
            (record.subject, record.kind is MessageKind.SPAM)
            for record in records
        )

    def vocabulary(self) -> set:
        return set(self._vocab)

    @property
    def trained(self) -> bool:
        return self._spam_docs > 0 and self._ham_docs > 0

    # -- scoring ----------------------------------------------------------

    def spam_log_odds(self, subject: str) -> float:
        """log P(spam | subject) - log P(ham | subject), up to a shared
        constant. Positive means spam-leaning."""
        if not self.trained:
            raise RuntimeError("classifier has not been trained on both classes")
        smoothing = self.smoothing
        vocab = len(self._vocab) or 1
        spam_denominator = self._spam_token_total + smoothing * vocab
        ham_denominator = self._ham_token_total + smoothing * vocab
        log_odds = math.log(self._spam_docs) - math.log(self._ham_docs)
        spam_tokens = self._spam_tokens
        ham_tokens = self._ham_tokens
        for token in _tokenize(subject):
            p_spam = (spam_tokens.get(token, 0) + smoothing) / spam_denominator
            p_ham = (ham_tokens.get(token, 0) + smoothing) / ham_denominator
            log_odds += math.log(p_spam) - math.log(p_ham)
        return log_odds

    def classify(self, subject: str) -> bool:
        """True when the filter calls *subject* spam."""
        return self.spam_log_odds(subject) > self.threshold

    def classify_record(self, record) -> bool:
        return self.classify(record.subject)


class OnlineNaiveBayesFilter(SpamFilter):
    """The naive-Bayes baseline as a live chain member.

    Score-then-train: the verdict for a message is computed from the
    model *before* the message's own label is folded in, so the filter
    never cheats on the message it is judging. During the first
    ``warmup_days`` of simulated time (and until it has seen both
    classes) it only trains — a fresh deployment has no corpus, and a
    zero-knowledge classifier dropping mail would be noise, not a
    baseline.
    """

    name = "content"

    def __init__(
        self,
        threshold: float = 0.0,
        warmup_days: float = 3.0,
        smoothing: float = 1.0,
    ) -> None:
        self.classifier = NaiveBayesFilter(
            threshold=threshold, smoothing=smoothing
        )
        self.warmup_seconds = warmup_days * DAY
        #: Messages scored while warm (trained + past warm-up).
        self.scored = 0
        #: Messages that only trained (warm-up or single-class model).
        self.warmup_passes = 0

    def should_drop(self, message: EmailMessage, now: float) -> bool:
        classifier = self.classifier
        if classifier.trained and now >= self.warmup_seconds:
            self.scored += 1
            verdict = classifier.classify(message.subject)
        else:
            self.warmup_passes += 1
            verdict = False
        # Ground-truth label == the operator's feedback corpus; newsletters
        # count as ham (solicited-ish bulk, like the offline baseline).
        classifier.train_one(
            message.subject, message.kind is MessageKind.SPAM
        )
        return verdict
