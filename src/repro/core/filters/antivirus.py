"""Antivirus scanning of quarantine candidates.

We do not re-implement a signature scanner; the workload labels messages
that carry malware (``has_virus``), and the filter detects them with a
configurable detection rate — real 2010-era engines missed a few percent of
fresh samples, which is what the miss rate models.
"""

from __future__ import annotations

import random

from repro.core.filters.base import SpamFilter
from repro.core.message import EmailMessage


class AntivirusFilter(SpamFilter):
    name = "antivirus"

    def __init__(self, detection_rate: float = 0.98, rng: random.Random = None) -> None:
        if not 0.0 <= detection_rate <= 1.0:
            raise ValueError(f"detection rate must be in [0,1]: {detection_rate}")
        self.detection_rate = detection_rate
        self.rng = rng if rng is not None else random.Random(0)

    def should_drop(self, message: EmailMessage, now: float) -> bool:
        if not message.has_virus:
            return False
        return self.rng.random() < self.detection_rate
