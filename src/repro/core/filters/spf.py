"""Sender Policy Framework evaluation (RFC 4408 subset).

§5.2 / Fig. 12 of the paper runs an *offline* SPF test over the gray spool
to estimate how many "bad" challenges SPF filtering would have avoided. We
implement the mechanisms that matter for envelope-sender validation against
a connecting IP: ``ip4`` (with optional /prefix) and the ``all`` qualifier.
Policies live as ``v=spf1`` TXT records in the simulated DNS.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.filters.base import SpamFilter
from repro.core.message import EmailMessage
from repro.net.dns import Resolver, iter_spf_mechanisms


class SpfResult(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    SOFTFAIL = "softfail"
    NEUTRAL = "neutral"
    NONE = "none"  # the domain publishes no SPF policy


def _ip_to_int(ip: str) -> Optional[int]:
    parts = ip.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        if not part.isdigit():
            return None
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


def _ip4_matches(mechanism_value: str, client_ip: str) -> bool:
    """Does ``ip4:<value>`` match *client_ip*? Supports /prefix notation."""
    if "/" in mechanism_value:
        network, prefix_str = mechanism_value.split("/", 1)
        try:
            prefix = int(prefix_str)
        except ValueError:
            return False
        if not 0 <= prefix <= 32:
            return False
    else:
        network, prefix = mechanism_value, 32
    net_int = _ip_to_int(network)
    client_int = _ip_to_int(client_ip)
    if net_int is None or client_int is None:
        return False
    if prefix == 0:
        return True
    mask = ((1 << prefix) - 1) << (32 - prefix)
    return (net_int & mask) == (client_int & mask)


class SpfEvaluator:
    """Evaluates the SPF policy of a sender domain against a client IP."""

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver

    def evaluate(self, sender_domain: str, client_ip: str) -> SpfResult:
        policy = self.resolver.spf_policy(sender_domain)
        if policy is None:
            return SpfResult.NONE
        default = SpfResult.NEUTRAL
        for term in iter_spf_mechanisms(policy):
            qualifier, mechanism = _split_qualifier(term)
            if mechanism == "all":
                default = _qualified_result(qualifier)
                continue
            if mechanism.startswith("ip4:"):
                if _ip4_matches(mechanism[4:], client_ip):
                    return _qualified_result(qualifier)
        return default

    def evaluate_message(self, message: EmailMessage) -> SpfResult:
        """Evaluate a message's envelope sender against its client IP."""
        if "@" not in message.env_from:
            return SpfResult.NONE
        domain = message.env_from.rsplit("@", 1)[-1].lower()
        return self.evaluate(domain, message.client_ip)


def _split_qualifier(term: str) -> tuple[str, str]:
    if term and term[0] in "+-~?":
        return term[0], term[1:]
    return "+", term


def _qualified_result(qualifier: str) -> SpfResult:
    return {
        "+": SpfResult.PASS,
        "-": SpfResult.FAIL,
        "~": SpfResult.SOFTFAIL,
        "?": SpfResult.NEUTRAL,
    }[qualifier]


class SpfFilter(SpamFilter):
    """Optional chain filter: drop messages whose SPF check hard-fails.

    Not part of the paper's deployed product; used by the Fig. 12 ablation
    and by the ``spf_ablation`` example to measure its would-be effect.
    """

    name = "spf"

    def __init__(self, evaluator: SpfEvaluator) -> None:
        self.evaluator = evaluator

    def should_drop(self, message: EmailMessage, now: float) -> bool:
        return self.evaluator.evaluate_message(message) is SpfResult.FAIL
