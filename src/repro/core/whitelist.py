"""Per-user whitelists and blacklists.

The paper's product supports four whitelisting mechanisms (§2):

1. the sender solves a challenge (``CAPTCHA``);
2. the user authorizes the sender from the daily digest (``DIGEST``);
3. the user adds the address manually (``MANUAL``);
4. the user previously sent mail to the address (``OUTBOUND``).

Every addition is also appended to a change log, which §4.3 / Fig. 9
analyses consume to measure whitelist churn.

Address casing: the inbound pipeline normalizes envelope addresses once at
engine ingress (``message.normalize_ingress``), so dispatcher lookups
arrive lowercase already. These classes nevertheless remain
case-insensitive at their public boundary — ``add_to_whitelist`` /
``in_whitelist`` / ``lists_for`` fold their arguments — because they are
also fed raw user input (manual imports, outbound mail, seeded address
books) that never passes through ingress. Normalization is a guarantee of
the message path, not a precondition of this API.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class WhitelistSource(enum.Enum):
    """Which of the four mechanisms added an entry."""

    CAPTCHA = "captcha"
    DIGEST = "digest"
    MANUAL = "manual"
    OUTBOUND = "outbound"
    #: Entries present before monitoring began (imported address books);
    #: excluded from churn statistics, like the paper's steady-state lists.
    SEED = "seed"


@dataclass(frozen=True)
class WhitelistEntry:
    address: str
    added_at: float
    source: WhitelistSource


@dataclass(frozen=True)
class WhitelistChange:
    """One logged whitelist addition."""

    t: float
    address: str
    source: WhitelistSource


class UserLists:
    """One user's whitelist + blacklist."""

    __slots__ = ("whitelist", "blacklist", "changes")

    def __init__(self) -> None:
        self.whitelist: dict[str, WhitelistEntry] = {}
        self.blacklist: set[str] = set()
        self.changes: list[WhitelistChange] = []

    def add_to_whitelist(
        self, address: str, t: float, source: WhitelistSource
    ) -> bool:
        """Add *address*; returns True when this was a new entry.

        Additions are idempotent: re-adding an existing address neither
        overwrites its provenance nor logs a change.
        """
        address = address.lower()
        if address in self.whitelist:
            return False
        self.whitelist[address] = WhitelistEntry(address, t, source)
        if source is not WhitelistSource.SEED:
            self.changes.append(WhitelistChange(t, address, source))
        # Whitelisting an address implicitly un-blacklists it.
        self.blacklist.discard(address)
        return True

    def remove_from_whitelist(self, address: str) -> bool:
        return self.whitelist.pop(address.lower(), None) is not None

    def add_to_blacklist(self, address: str) -> None:
        address = address.lower()
        self.blacklist.add(address)
        self.whitelist.pop(address, None)

    # islower() guards below skip the str copy for the (ubiquitous)
    # already-canonical addresses the engine's ingress normalization feeds
    # these per-message lookups.

    def in_whitelist(self, address: str) -> bool:
        if not address.islower():
            address = address.lower()
        return address in self.whitelist

    def in_blacklist(self, address: str) -> bool:
        if not address.islower():
            address = address.lower()
        return address in self.blacklist

    def entry_for(self, address: str) -> Optional[WhitelistEntry]:
        if not address.islower():
            address = address.lower()
        return self.whitelist.get(address)

    def changes_between(self, t0: float, t1: float) -> list[WhitelistChange]:
        """Changes with ``t0 <= t < t1`` (the churn-analysis window)."""
        return [c for c in self.changes if t0 <= c.t < t1]


class WhitelistDirectory:
    """All users' lists within one company, keyed by full address."""

    def __init__(self) -> None:
        self._lists: dict[str, UserLists] = {}

    def lists_for(self, user_address: str) -> UserLists:
        """Get (creating on first touch) the lists of *user_address*."""
        key = (
            user_address if user_address.islower() else user_address.lower()
        )
        lists = self._lists.get(key)
        if lists is None:
            lists = UserLists()
            self._lists[key] = lists
        return lists

    def known_users(self) -> list[str]:
        return list(self._lists)

    def items(self):
        return self._lists.items()

    def __len__(self) -> int:
        return len(self._lists)

    def __contains__(self, user_address: str) -> bool:
        return user_address.lower() in self._lists
