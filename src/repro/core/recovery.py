"""Checkpoint/restore: crash-consistent snapshots of a running simulation.

The CR product's zero-loss claim (tested by :mod:`repro.net.crashes`)
extends to the *simulation harness itself*: a long run killed halfway —
a preempted batch job, a crashed laptop, a failed parallel-sweep shard —
must be resumable without redoing the finished part and, crucially,
without changing the answer. The contract is exact:

    **resume ≡ uninterrupted** — a run checkpointed at time *T* and
    resumed from that checkpoint produces a byte-identical measurement
    store (same :func:`~repro.experiments.parallel.store_digest`) as the
    same run left alone.

That works because a checkpoint is one pickle of the *entire* live object
graph — simulator (with its event queue), world, installations, log
store, trace generator, behavior model, fault and crash plans — plus the
one piece of process-global state (the message-id counter). Pickling
shares references, so the graph reconnects exactly; every scheduled
callable is a bound method, ``functools.partial``, or callable class
(never a closure) precisely so this pickle succeeds. Writing a checkpoint
draws no random numbers and mutates nothing observable, so a run *with*
checkpointing is also byte-identical to one without.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro._version import __version__
from repro.util.simtime import DAY

#: On-disk snapshot format; bump on incompatible RunState changes.
CHECKPOINT_FORMAT = 1

#: Default spacing between snapshots for ``--checkpoint-every`` style knobs.
DEFAULT_CHECKPOINT_EVERY = 7 * DAY

#: Snapshot filename pattern (sortable by sim time).
_FILE_PREFIX = "checkpoint-"
_FILE_SUFFIX = ".pkl"


class CheckpointError(RuntimeError):
    """Raised on unreadable, incompatible, or corrupt snapshot files."""


@dataclass
class RunState:
    """The whole live object graph of one in-flight run.

    Everything :func:`repro.experiments.run_simulation` builds before it
    starts the clock, in one place — both so a checkpoint is a single
    ``pickle.dump`` and so the runner's finish path works identically on
    fresh and restored state.
    """

    scale: object
    seed: int
    audit: bool
    horizon: float
    simulator: object
    store: object
    world: object
    installations: dict
    monitor: object
    generator: object
    behavior: object
    fault_plan: object = None
    crash_plan: object = None
    #: The recurring snapshot writer armed on ``simulator`` (or ``None``);
    #: kept here so a resumed run keeps checkpointing to the same place.
    checkpointer: object = None
    #: Value of the global message-id counter at snapshot time.
    msg_id_counter: int = 0
    #: Resolved :class:`repro.scenarios.ScenarioSpec` of a scenario run
    #: (``None`` otherwise); read back with ``getattr`` so snapshots
    #: written before the field existed still restore.
    scenario: object = None


@dataclass
class CheckpointStats:
    """What checkpointing cost one run (reported by the profiler and the
    ``recovery`` experiment)."""

    #: Snapshot spacing in sim-seconds (0 when checkpointing was off).
    every: float = 0.0
    #: Snapshots written during the run.
    written: int = 0
    #: Total wall-clock seconds the *simulation* was blocked on snapshot
    #: writes: the full pickle+write when synchronous, just the fork and
    #: any wait for the previous background writer otherwise.
    write_seconds: float = 0.0
    #: Path of the newest snapshot, or ``None``.
    last_path: Optional[str] = None
    #: Path this run was restored from, or ``None`` for a fresh run.
    restored_from: Optional[str] = None
    #: Wall-clock seconds spent loading + reconnecting the snapshot.
    restore_seconds: float = 0.0

    @property
    def mean_write_seconds(self) -> float:
        return self.write_seconds / self.written if self.written else 0.0


class Checkpointer:
    """Recurring snapshot writer, scheduled with ``schedule_every``.

    A callable class (not a closure) because it rides in the event queue
    and is therefore itself part of every snapshot: a resumed run wakes up
    with its checkpointer armed and keeps writing to the same directory.

    On platforms with ``os.fork`` the write happens in a forked child
    (the BGSAVE trick): the fork freezes a copy-on-write image of the
    whole object graph, the child pickles and writes it while the parent
    keeps simulating, and the parent only ever blocks on the fork itself
    plus — if snapshots come faster than the disk drains them — a wait
    for the previous writer. At most one writer is in flight at a time,
    and :meth:`finalize` joins the last one before the run reports its
    results, so snapshot files are always complete by the time anyone
    can resume from them. ``synchronous=True`` forces the in-process
    write path (used where fork is unavailable and by tests that want
    deterministic timing).

    Either way the write path is side-effect-free with respect to the
    simulation: no RNG draws, no state mutation beyond wall-clock
    accounting (which is not part of the measurement store), so enabling
    checkpointing cannot change any result byte.
    """

    def __init__(
        self,
        state: RunState,
        directory: str,
        every: float,
        synchronous: Optional[bool] = None,
    ) -> None:
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive: {every}")
        self.state = state
        self.directory = str(directory)
        self.every = float(every)
        self.synchronous = (
            not hasattr(os, "fork") if synchronous is None else synchronous
        )
        self.written = 0
        self.write_seconds = 0.0
        self.last_path: Optional[str] = None
        #: PID of the in-flight background writer, if any.
        self._child: Optional[int] = None

    def arm(self) -> None:
        """Schedule the recurring snapshot on the state's simulator."""
        simulator = self.state.simulator
        self.state.checkpointer = self
        simulator.schedule_every(
            self.every, self.save, until=self.state.horizon,
            label="checkpoint",
        )

    def save(self) -> str:
        """Snapshot the current state; returns the snapshot's path.

        In background mode the returned path is where the child is
        writing; it is guaranteed complete only after the next
        :meth:`save` or :meth:`finalize` joins the writer.
        """
        started = time.perf_counter()
        self._join_writer()
        if self.synchronous:
            path = save_checkpoint(self.state, self.directory)
        else:
            path = _snapshot_path(self.directory, self.state.simulator.now)
            pid = os.fork()
            if pid == 0:
                # Child: write the frozen image and leave without running
                # any of the parent's cleanup (atexit, buffered IO, ...).
                code = 0
                try:
                    save_checkpoint(self.state, self.directory)
                except BaseException:
                    code = 1
                finally:
                    os._exit(code)
            self._child = pid
        self.written += 1
        self.write_seconds += time.perf_counter() - started
        self.last_path = path
        return path

    def finalize(self) -> None:
        """Join the in-flight background writer, if any.

        Called by the runner after the drain, so every snapshot is on
        disk (or has raised) before the run's results are visible.
        """
        started = time.perf_counter()
        self._join_writer()
        self.write_seconds += time.perf_counter() - started

    def _join_writer(self) -> None:
        if self._child is None:
            return
        pid, status = os.waitpid(self._child, 0)
        self._child = None
        if os.waitstatus_to_exitcode(status) != 0:
            raise CheckpointError(
                f"background checkpoint writer (pid {pid}) failed with "
                f"status {status}; snapshot under {self.directory} was "
                "not written"
            )

    def __getstate__(self) -> dict:
        # A writer PID is meaningless in a snapshot (and in the child's
        # own frozen copy of this object).
        state = self.__dict__.copy()
        state["_child"] = None
        return state

    def stats(
        self,
        restored_from: Optional[str] = None,
        restore_seconds: float = 0.0,
    ) -> CheckpointStats:
        return CheckpointStats(
            every=self.every,
            written=self.written,
            write_seconds=self.write_seconds,
            last_path=self.last_path,
            restored_from=restored_from,
            restore_seconds=restore_seconds,
        )


def _snapshot_path(directory: str, sim_time: float) -> str:
    return os.path.join(
        directory, f"{_FILE_PREFIX}{int(sim_time):012d}{_FILE_SUFFIX}"
    )


def save_checkpoint(state: RunState, directory: str) -> str:
    """Atomically write *state* to ``directory`` and return the file path.

    The file lands as ``checkpoint-<sim_seconds>.pkl`` via write-then-
    rename, so a crash mid-write can never leave a half snapshot behind
    with a valid name — the recovery scan only ever sees complete files.
    """
    from repro.core.message import snapshot_msg_ids

    state.msg_id_counter = snapshot_msg_ids()
    os.makedirs(directory, exist_ok=True)
    path = _snapshot_path(directory, state.simulator.now)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": __version__,
        "sim_time": state.simulator.now,
        "state": state,
    }
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str) -> RunState:
    """Read a snapshot written by :func:`save_checkpoint` and reconnect
    the process-global message-id counter.

    Raises :class:`CheckpointError` on missing/corrupt files or on
    format/version mismatches — a snapshot from a different code version
    could deserialize into objects whose behavior silently diverged, so
    it is refused outright rather than trusted.
    """
    from repro.core.message import restore_msg_ids

    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointError(f"corrupt checkpoint {path}: not a snapshot")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {payload.get('format')!r}; "
            f"this build reads format {CHECKPOINT_FORMAT}"
        )
    if payload.get("version") != __version__:
        raise CheckpointError(
            f"checkpoint {path} was written by version "
            f"{payload.get('version')!r}; this is {__version__} — refusing "
            f"to resume across versions"
        )
    state = payload["state"]
    if not isinstance(state, RunState):
        raise CheckpointError(f"corrupt checkpoint {path}: bad state object")
    restore_msg_ids(state.msg_id_counter)
    return state


def checkpoint_paths(directory: str) -> list:
    """All complete snapshots under *directory*, oldest first."""
    try:
        names = os.listdir(directory)
    except (FileNotFoundError, NotADirectoryError):
        return []
    names = sorted(
        n for n in names
        if n.startswith(_FILE_PREFIX) and n.endswith(_FILE_SUFFIX)
    )
    return [os.path.join(directory, n) for n in names]


def latest_checkpoint(directory: str) -> Optional[str]:
    """Newest complete snapshot under *directory*, or ``None``."""
    paths = checkpoint_paths(directory)
    return paths[-1] if paths else None
