"""The daily digest of quarantined messages.

Every protected user receives a daily summary of their gray spool, from
which they can manually authorize a sender (whitelisting + releasing the
message) or delete entries. How diligently a user processes the digest is a
behaviour, supplied by the workload layer through a review hook.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DigestAction(enum.Enum):
    """What a user chose to do with one digest entry."""

    WHITELIST = "whitelist"
    DELETE = "delete"
    IGNORE = "ignore"


@dataclass(frozen=True)
class DigestDecision:
    """One user decision on one quarantined message.

    ``act_delay`` is how long after receiving the digest the user acts —
    the paper measures digest-driven releases at 4 hours to 3 days after
    message arrival (Fig. 7/8).
    """

    msg_id: int
    action: DigestAction
    act_delay: float = 0.0
