"""The daily digest of quarantined messages.

Every protected user receives a daily summary of their gray spool, from
which they can manually authorize a sender (whitelisting + releasing the
message) or delete entries. How diligently a user processes the digest is a
behaviour, supplied by the workload layer through a review hook.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DigestAction(enum.Enum):
    """What a user chose to do with one digest entry."""

    WHITELIST = "whitelist"
    DELETE = "delete"
    IGNORE = "ignore"


@dataclass(frozen=True)
class DigestDecision:
    """One user decision on one quarantined message.

    ``act_delay`` is how long after receiving the digest the user acts —
    the paper measures digest-driven releases at 4 hours to 3 days after
    message arrival (Fig. 7/8).
    """

    msg_id: int
    action: DigestAction
    act_delay: float = 0.0


@dataclass
class DigestCounters:
    """Per-company accounting of the digest stage, consumed by the
    lifecycle auditor: digest actions are the only path besides the
    CAPTCHA solve and the expiry sweep that moves a quarantined message
    to a terminal state, so their counts must reconcile with the gray
    spool's release/delete totals (stale actions — decisions about
    entries already finalized by an earlier event — are counted here and
    excluded from that reconciliation)."""

    digests_generated: int = 0
    entries_listed: int = 0
    whitelist_actions: int = 0
    delete_actions: int = 0
    #: Decisions that arrived after the entry was already finalized
    #: (released by a solve, expired, or covered by an earlier whitelist
    #: action in the same digest) — legal no-ops, not leaks.
    stale_actions: int = 0
