"""Spool accounting: the white / black / gray message categories.

The gray spool is the heart of the CR mechanism: messages from unknown
senders wait there — for up to 30 days — until the sender solves a
challenge, the user releases them from the digest, or they expire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.message import EmailMessage


class Category(enum.Enum):
    """Dispatcher verdict for an accepted message."""

    # Identity hash (C speed) — these are Counter keys in the analysis
    # index's hot passes; enum equality is identity, so this is safe.
    __hash__ = object.__hash__

    WHITE = "white"
    BLACK = "black"
    GRAY = "gray"


class ReleaseMechanism(enum.Enum):
    """How a gray message got released to the inbox."""

    CAPTCHA = "captcha"
    DIGEST = "digest"


class GrayStatus(enum.Enum):
    PENDING = "pending"
    RELEASED = "released"
    EXPIRED = "expired"
    DELETED = "deleted"  # user deleted it from the digest


@dataclass
class GrayEntry:
    """One quarantined message."""

    __slots__ = (
        "message",
        "user",
        "entered_at",
        "expires_at",
        "challenge_id",
        "status",
    )

    message: EmailMessage
    user: str
    entered_at: float
    expires_at: float
    challenge_id: Optional[int]
    status: GrayStatus


class GraySpool:
    """The quarantine store of one company.

    Indexed three ways: by message id (release bookkeeping), by user (digest
    assembly), and by ``(user, sender)`` (releasing everything a sender has
    pending once their challenge is solved).
    """

    def __init__(self) -> None:
        self._entries: dict[int, GrayEntry] = {}
        self._by_user: dict[str, set[int]] = {}
        self._by_user_sender: dict[tuple[str, str], set[int]] = {}
        self.total_entered = 0
        self.total_released = 0
        self.total_expired = 0
        self.total_deleted = 0

    def add(
        self,
        message: EmailMessage,
        user: str,
        now: float,
        expires_at: float,
        challenge_id: Optional[int],
    ) -> GrayEntry:
        entry = GrayEntry(
            message=message,
            user=user,
            entered_at=now,
            expires_at=expires_at,
            challenge_id=challenge_id,
            status=GrayStatus.PENDING,
        )
        self._entries[message.msg_id] = entry
        self._by_user.setdefault(user, set()).add(message.msg_id)
        key = (user, message.env_from.lower())
        self._by_user_sender.setdefault(key, set()).add(message.msg_id)
        self.total_entered += 1
        return entry

    def get(self, msg_id: int) -> Optional[GrayEntry]:
        return self._entries.get(msg_id)

    def pending_for_user(self, user: str) -> list[GrayEntry]:
        """The user's current quarantine (their daily digest content)."""
        ids = self._by_user.get(user, ())
        return [self._entries[i] for i in ids]

    def pending_from_sender(self, user: str, sender: str) -> list[GrayEntry]:
        ids = self._by_user_sender.get((user, sender.lower()), ())
        return [self._entries[i] for i in ids]

    def release(self, msg_id: int) -> Optional[GrayEntry]:
        """Release one entry to the inbox; returns it, or None if absent."""
        return self._finalize(msg_id, GrayStatus.RELEASED)

    def delete(self, msg_id: int) -> Optional[GrayEntry]:
        """User deleted the entry from the digest."""
        return self._finalize(msg_id, GrayStatus.DELETED)

    def expire_due(self, now: float) -> list[GrayEntry]:
        """Expire every entry whose quarantine period has elapsed."""
        due = [e for e in self._entries.values() if e.expires_at <= now]
        expired = []
        for entry in due:
            finalized = self._finalize(entry.message.msg_id, GrayStatus.EXPIRED)
            if finalized is not None:
                expired.append(finalized)
        return expired

    def _finalize(self, msg_id: int, status: GrayStatus) -> Optional[GrayEntry]:
        entry = self._entries.pop(msg_id, None)
        if entry is None:
            return None
        entry.status = status
        user_ids = self._by_user.get(entry.user)
        if user_ids is not None:
            user_ids.discard(msg_id)
            if not user_ids:
                del self._by_user[entry.user]
        key = (entry.user, entry.message.env_from.lower())
        sender_ids = self._by_user_sender.get(key)
        if sender_ids is not None:
            sender_ids.discard(msg_id)
            if not sender_ids:
                del self._by_user_sender[key]
        if status is GrayStatus.RELEASED:
            self.total_released += 1
        elif status is GrayStatus.EXPIRED:
            self.total_expired += 1
        elif status is GrayStatus.DELETED:
            self.total_deleted += 1
        return entry

    @property
    def pending_count(self) -> int:
        return len(self._entries)

    def users_with_pending(self) -> list[str]:
        return list(self._by_user)
