"""Spool accounting: the white / black / gray message categories.

The gray spool is the heart of the CR mechanism: messages from unknown
senders wait there — for up to 30 days — until the sender solves a
challenge, the user releases them from the digest, or they expire.

Expiry boundary convention
--------------------------
The simulator's ``run(until=...)`` and ``schedule_every`` treat ``until``
as **half-open** (an event exactly at the horizon does not fire). The
quarantine deadline is the opposite: :meth:`GraySpool.expire_due` is
**closed at the sweep instant** — an entry whose ``expires_at`` equals
``now`` is already due, because the quarantine promise is "held *for* 30
days", not "held beyond them". Consequence: when a digest action and the
expiry sweep land on the same timestamp, whichever the event queue runs
first wins and the other becomes a no-op (``_finalize`` on a missing id
returns None); the message still reaches exactly one terminal status.
``tests/test_core_engine.py`` pins both the 30-day boundary and the
same-timestamp ordering.

Addresses in ``message.env_from`` are lowercased once at engine ingress
(see ``engine.normalize_ingress``); the spool indexes them verbatim.
Query arguments to :meth:`pending_from_sender` are still normalized here
because callers may pass user-supplied casing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.ledger import LifecycleState, MessageLedger
from repro.core.message import EmailMessage


class Category(enum.Enum):
    """Dispatcher verdict for an accepted message."""

    # Identity hash (C speed) — these are Counter keys in the analysis
    # index's hot passes; enum equality is identity, so this is safe.
    __hash__ = object.__hash__

    WHITE = "white"
    BLACK = "black"
    GRAY = "gray"


class ReleaseMechanism(enum.Enum):
    """How a gray message got released to the inbox."""

    CAPTCHA = "captcha"
    DIGEST = "digest"


class GrayStatus(enum.Enum):
    PENDING = "pending"
    RELEASED = "released"
    EXPIRED = "expired"
    DELETED = "deleted"  # user deleted it from the digest
    PENDING_AT_HORIZON = "pending_at_horizon"  # run ended mid-quarantine


#: GrayStatus terminal -> the lifecycle state the ledger records.
_LIFECYCLE_FOR_STATUS = {
    GrayStatus.RELEASED: LifecycleState.RELEASED,
    GrayStatus.EXPIRED: LifecycleState.EXPIRED,
    GrayStatus.DELETED: LifecycleState.DELETED,
    GrayStatus.PENDING_AT_HORIZON: LifecycleState.PENDING_AT_HORIZON,
}


@dataclass
class GrayEntry:
    """One quarantined message."""

    __slots__ = (
        "message",
        "user",
        "entered_at",
        "expires_at",
        "challenge_id",
        "status",
    )

    message: EmailMessage
    user: str
    entered_at: float
    expires_at: float
    challenge_id: Optional[int]
    status: GrayStatus


class GraySpool:
    """The quarantine store of one company.

    Indexed three ways: by message id (release bookkeeping), by user (digest
    assembly), and by ``(user, sender)`` (releasing everything a sender has
    pending once their challenge is solved).

    Conservation contract (checked by the lifecycle ledger)::

        total_entered == pending_count + total_released + total_expired
                       + total_deleted + total_pending_at_horizon

    at every instant, and ``pending_count == 0`` after :meth:`drain`.
    """

    def __init__(self, ledger: Optional[MessageLedger] = None) -> None:
        self._entries: dict[int, GrayEntry] = {}
        # The id indexes are dict-as-set (msg_id -> None), not set[int]:
        # their iteration order feeds the digest-review RNG consumption
        # and the release order, and dict insertion order survives a
        # pickle round-trip exactly, while a set re-hashes into a fresh
        # table on unpickle and may iterate differently. Checkpoint/
        # restore (core/recovery.py) relies on this.
        self._by_user: dict[str, dict[int, None]] = {}
        self._by_user_sender: dict[tuple[str, str], dict[int, None]] = {}
        self._ledger = ledger
        self.total_entered = 0
        self.total_released = 0
        self.total_expired = 0
        self.total_deleted = 0
        self.total_pending_at_horizon = 0

    def add(
        self,
        message: EmailMessage,
        user: str,
        now: float,
        expires_at: float,
        challenge_id: Optional[int],
    ) -> GrayEntry:
        entry = GrayEntry(
            message=message,
            user=user,
            entered_at=now,
            expires_at=expires_at,
            challenge_id=challenge_id,
            status=GrayStatus.PENDING,
        )
        self._entries[message.msg_id] = entry
        self._by_user.setdefault(user, {})[message.msg_id] = None
        key = (user, message.env_from)
        self._by_user_sender.setdefault(key, {})[message.msg_id] = None
        self.total_entered += 1
        if self._ledger is not None:
            self._ledger.transition(message.msg_id, LifecycleState.QUARANTINED)
        return entry

    def get(self, msg_id: int) -> Optional[GrayEntry]:
        return self._entries.get(msg_id)

    def pending_for_user(self, user: str) -> list[GrayEntry]:
        """The user's current quarantine (their daily digest content)."""
        ids = self._by_user.get(user, ())
        return [self._entries[i] for i in ids]

    def pending_from_sender(self, user: str, sender: str) -> list[GrayEntry]:
        ids = self._by_user_sender.get((user, sender.lower()), ())
        return [self._entries[i] for i in ids]

    def release(self, msg_id: int) -> Optional[GrayEntry]:
        """Release one entry to the inbox; returns it, or None if absent."""
        return self._finalize(msg_id, GrayStatus.RELEASED)

    def delete(self, msg_id: int) -> Optional[GrayEntry]:
        """User deleted the entry from the digest."""
        return self._finalize(msg_id, GrayStatus.DELETED)

    def expire_due(self, now: float) -> list[GrayEntry]:
        """Expire every entry whose quarantine period has elapsed.

        Closed boundary: ``expires_at <= now`` is due (see the module
        docstring for why this deliberately differs from the simulator's
        half-open ``until``).
        """
        due = [e for e in self._entries.values() if e.expires_at <= now]
        expired = []
        for entry in due:
            finalized = self._finalize(entry.message.msg_id, GrayStatus.EXPIRED)
            if finalized is not None:
                expired.append(finalized)
        return expired

    def drain(self, now: float) -> list[GrayEntry]:
        """End-of-run teardown: every entry still quarantined when the
        simulation horizon ends gets the ``PENDING_AT_HORIZON`` terminal
        status (the gray-spool analogue of ``MtaOut.drain``). Returns the
        drained entries; after this ``pending_count`` is 0."""
        stranded = list(self._entries.values())
        drained = []
        for entry in stranded:
            finalized = self._finalize(
                entry.message.msg_id, GrayStatus.PENDING_AT_HORIZON
            )
            if finalized is not None:
                drained.append(finalized)
        return drained

    def _finalize(self, msg_id: int, status: GrayStatus) -> Optional[GrayEntry]:
        entry = self._entries.pop(msg_id, None)
        if entry is None:
            return None
        entry.status = status
        user_ids = self._by_user.get(entry.user)
        if user_ids is not None:
            user_ids.pop(msg_id, None)
            if not user_ids:
                del self._by_user[entry.user]
        key = (entry.user, entry.message.env_from)
        sender_ids = self._by_user_sender.get(key)
        if sender_ids is not None:
            sender_ids.pop(msg_id, None)
            if not sender_ids:
                del self._by_user_sender[key]
        if status is GrayStatus.RELEASED:
            self.total_released += 1
        elif status is GrayStatus.EXPIRED:
            self.total_expired += 1
        elif status is GrayStatus.DELETED:
            self.total_deleted += 1
        elif status is GrayStatus.PENDING_AT_HORIZON:
            self.total_pending_at_horizon += 1
        if self._ledger is not None:
            self._ledger.transition(msg_id, _LIFECYCLE_FOR_STATUS[status])
        return entry

    # -- crash recovery ---------------------------------------------------

    def rebuild_indexes(self) -> bool:
        """Recompute the user/sender indexes from the entry journal.

        Crash-recovery path (journaled durability): ``_entries`` is the
        durable quarantine store, the two id indexes are volatile derived
        state that a process crash wipes. Rebuilding walks the journal in
        insertion order, so the restored indexes iterate identically to
        the pre-crash ones — recovery is invisible to the digest RNG
        stream. Returns ``True`` when the rebuilt indexes are equal to
        the pre-crash ones (the per-crash state-verification verdict).
        """
        by_user: dict[str, dict[int, None]] = {}
        by_user_sender: dict[tuple[str, str], dict[int, None]] = {}
        for msg_id, entry in self._entries.items():
            by_user.setdefault(entry.user, {})[msg_id] = None
            key = (entry.user, entry.message.env_from)
            by_user_sender.setdefault(key, {})[msg_id] = None
        matched = (
            by_user == self._by_user
            and by_user_sender == self._by_user_sender
        )
        self._by_user = by_user
        self._by_user_sender = by_user_sender
        return matched

    def lose_uncommitted(self, cutoff: float) -> int:
        """Crash with *lossy* durability: entries that entered the spool
        at or after *cutoff* (the last journal sync before the crash)
        vanish — no terminal status, no ledger transition. This
        deliberately strands messages so tests can prove the lifecycle
        conservation oracle catches real loss. Returns how many entries
        were lost."""
        lost = [
            msg_id
            for msg_id, entry in self._entries.items()
            if entry.entered_at >= cutoff
        ]
        for msg_id in lost:
            entry = self._entries.pop(msg_id)
            user_ids = self._by_user.get(entry.user)
            if user_ids is not None:
                user_ids.pop(msg_id, None)
                if not user_ids:
                    del self._by_user[entry.user]
            key = (entry.user, entry.message.env_from)
            sender_ids = self._by_user_sender.get(key)
            if sender_ids is not None:
                sender_ids.pop(msg_id, None)
                if not sender_ids:
                    del self._by_user_sender[key]
        return len(lost)

    @property
    def pending_count(self) -> int:
        return len(self._entries)

    def users_with_pending(self) -> list[str]:
        return list(self._by_user)
