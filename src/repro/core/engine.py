"""One deployed CR installation: the full product wired together.

:class:`CompanyInstallation` owns every per-company component — inbound MTA
checks, whitelist directory, filter chain, gray spool, challenge manager,
the outbound MTAs (user mail and challenges, possibly on distinct IPs), the
daily digest, and the quarantine expiry sweep — and emits every log record
the measurement pipeline consumes.

User- and sender-*behaviour* (does the sender solve the CAPTCHA? how
diligently does the user weed the digest?) is injected via
:class:`BehaviorHooks` so the product code stays mechanism-only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Callable, Mapping, Optional

from repro.analysis.records import (
    ChallengeOutcomeRecord,
    ChallengeRecord,
    DigestRecord,
    DispatchRecord,
    ExpiryRecord,
    MtaRecord,
    OutboundMailRecord,
    ReleaseRecord,
    WebAccessRecord,
    WhitelistChangeRecord,
)
from repro.analysis.store import LogStore
from repro.blacklistd.service import DnsblService
from repro.core.challenge import Challenge, ChallengeManager, WebAction
from repro.core.config import CompanyConfig, FilterChainSpec
from repro.core.digest import DigestAction, DigestCounters, DigestDecision
from repro.core.dispatcher import Dispatcher
from repro.core.filters.antivirus import AntivirusFilter
from repro.core.filters.base import FilterChain, SpamFilter
from repro.core.filters.content import OnlineNaiveBayesFilter
from repro.core.filters.rbl import RblFilter
from repro.core.filters.reputation import SenderReputationFilter
from repro.core.filters.reverse_dns import ReverseDnsFilter
from repro.core.filters.spf import SpfEvaluator, SpfFilter, SpfResult
from repro.core.ledger import MessageLedger
from repro.core.message import EmailMessage
from repro.core.mta_in import MtaIn
from repro.core.spools import Category, GrayEntry, GraySpool, ReleaseMechanism
from repro.core.whitelist import WhitelistDirectory, WhitelistSource
from repro.net.dns import Resolver
from repro.net.internet import Internet
from repro.net.mta_out import DeliveryResult, OutboundMta
from repro.net.smtp import Envelope
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, HOUR, day_of

#: Size of a challenge email in bytes. Challenges are small fixed-template
#: messages (a short text and one CAPTCHA URL); §3.3's reflected-traffic
#: ratio RT compares their bytes against full incoming messages.
DEFAULT_CHALLENGE_SIZE = 3_100


def _discard_delivery(envelope, result) -> None:
    """No-op final callback for fire-and-forget user mail (module-level so
    the pending delivery stays picklable for checkpoints)."""


@dataclass
class BehaviorHooks:
    """Workload-supplied behaviour models.

    ``on_challenge_delivered(installation, challenge)`` fires when a
    challenge email reaches a mailbox; the hook schedules any web activity
    (open / attempts / solve) on the installation's simulator.

    ``digest_review(installation, user, entries, now)`` fires per user per
    daily digest and returns the user's decisions.
    """

    on_challenge_delivered: Optional[
        Callable[["CompanyInstallation", Challenge], None]
    ] = None
    digest_review: Optional[
        Callable[["CompanyInstallation", str, list, float], list]
    ] = None


class CompanyInstallation:
    """The CR product as deployed at one company."""

    def __init__(
        self,
        config: CompanyConfig,
        simulator: Simulator,
        internet: Internet,
        resolver: Resolver,
        store: LogStore,
        dnsbl_services: Mapping[str, DnsblService],
        rng: random.Random,
        hooks: Optional[BehaviorHooks] = None,
        challenge_size: int = DEFAULT_CHALLENGE_SIZE,
        audit: bool = False,
        chain: Optional[FilterChainSpec] = None,
        outbound_factory: Optional[
            Callable[[str, str, Simulator, Internet], OutboundMta]
        ] = None,
    ) -> None:
        self.config = config
        self.simulator = simulator
        self.internet = internet
        self.resolver = resolver
        self.store = store
        self.hooks = hooks or BehaviorHooks()

        self.ledger = MessageLedger(config.company_id, audit=audit)
        self.digest_counters = DigestCounters()
        self.mta_in = MtaIn(config, resolver)
        self.whitelists = WhitelistDirectory()
        self.gray_spool = GraySpool(ledger=self.ledger)
        self.challenge_manager = ChallengeManager(config.company_id)
        self.spf_evaluator = SpfEvaluator(resolver)
        self.filter_chain = self._build_filter_chain(dnsbl_services, rng, chain)
        self.dispatcher = Dispatcher(
            whitelists=self.whitelists,
            filter_chain=self.filter_chain,
            gray_spool=self.gray_spool,
            challenge_manager=self.challenge_manager,
            quarantine_days=config.quarantine_days,
            challenge_size=challenge_size,
            challenge_dedup=config.challenge_dedup,
            ledger=self.ledger,
        )

        # The live frontend injects a backoff-with-jitter OutboundMta
        # subclass here; the simulation always uses the stock class.
        build_mta = outbound_factory or OutboundMta
        self.user_mta = build_mta(
            f"{config.company_id}-mta-out", config.mta_out_ip, simulator, internet
        )
        if config.dual_outbound:
            self.challenge_mta = build_mta(
                f"{config.company_id}-mta-challenge",
                config.challenge_ip,
                simulator,
                internet,
            )
        else:
            self.challenge_mta = self.user_mta

        self.inbox_delivered = 0
        #: Crash-fault schedule (:class:`repro.net.crashes.CrashPlan`) or
        #: ``None``; installed by ``CrashPlan.arm``.
        self.crash_plan = None

    def _build_filter_chain(
        self,
        dnsbl_services: Mapping[str, DnsblService],
        rng: random.Random,
        chain: Optional[FilterChainSpec] = None,
    ) -> FilterChain:
        settings = self.config.filters
        if chain is None:
            # Legacy build: FilterSettings toggles, fixed product order.
            filters: list[SpamFilter] = []
            if settings.antivirus:
                filters.append(
                    AntivirusFilter(settings.antivirus_detection_rate, rng)
                )
            if settings.reverse_dns:
                filters.append(ReverseDnsFilter(self.resolver))
            if settings.rbl:
                filters.append(self._rbl_filter(dnsbl_services, settings))
            if settings.spf:
                filters.append(SpfFilter(self.spf_evaluator))
            return FilterChain(filters)

        # Declarative build: the spec names members in chain order; the
        # per-company FilterSettings still supply antivirus/RBL tuning.
        builders = {
            "antivirus": lambda: AntivirusFilter(
                settings.antivirus_detection_rate, rng
            ),
            "reverse_dns": lambda: ReverseDnsFilter(self.resolver),
            "rbl": lambda: self._rbl_filter(dnsbl_services, settings),
            "spf": lambda: SpfFilter(self.spf_evaluator),
            "content": lambda: OnlineNaiveBayesFilter(
                threshold=chain.content_threshold,
                warmup_days=chain.content_warmup_days,
            ),
            "reputation": lambda: SenderReputationFilter(
                window_days=chain.reputation_window_days,
                threshold=chain.reputation_threshold,
                min_observations=chain.reputation_min_observations,
            ),
        }
        return FilterChain([builders[member]() for member in chain.members])

    def _rbl_filter(
        self, dnsbl_services: Mapping[str, DnsblService], settings
    ) -> RblFilter:
        service = dnsbl_services.get(settings.rbl_provider)
        if service is None:
            raise ValueError(
                f"unknown RBL provider {settings.rbl_provider!r} for "
                f"{self.config.company_id}"
            )
        return RblFilter(service)

    # -- lifecycle -------------------------------------------------------

    def start(self, until: float) -> None:
        """Arm the recurring daily jobs (digest + quarantine expiry)."""
        now = self.simulator.now
        first_digest = (day_of(now) + 1) * DAY + self.config.digest_hour * HOUR
        self.simulator.schedule_every(
            DAY, self._digest_run, start=first_digest, until=until,
            label=f"digest:{self.config.company_id}",
        )
        first_expiry = (day_of(now) + 1) * DAY + 30 * 60  # 00:30 nightly
        self.simulator.schedule_every(
            DAY, self._expiry_run, start=first_expiry, until=until,
            label=f"expiry:{self.config.company_id}",
        )

    # -- inbound path ----------------------------------------------------

    def handle_inbound(self, message: EmailMessage):
        """Process one incoming message end-to-end at the current sim time.

        Returns the MTA-IN :class:`~repro.core.mta_in.DropReason` when the
        message was refused at the door, ``None`` when it was accepted
        into the lifecycle (the live frontend maps this to its SMTP
        reply; the simulation ignores the return value)."""
        now = self.simulator.now
        if self.crash_plan is not None and self.crash_plan.down(
            self.config.company_id, "dispatcher", now
        ):
            # The dispatcher process is down: MTA-IN answers 4xx and the
            # sending MTA retries after the restart. No record is written
            # — nothing was accepted — so conservation is untouched. The
            # retry lands shortly after recovery (hash-derived offset); a
            # retry that would fall past the horizon is refused for good.
            delay = self.crash_plan.inbound_retry_delay(
                self.config.company_id, message.msg_id, now
            )
            if delay is not None:
                self.simulator.schedule_after(
                    delay,
                    partial(self.handle_inbound, message),
                    label=f"crash-defer:{self.config.company_id}",
                )
            return None
        config = self.config
        company_id = config.company_id
        open_relay = config.open_relay
        # Single normalization point, inlined from message.normalize_ingress
        # (which documents the contract): everything downstream (dispatcher,
        # spools, whitelists, challenge dedup) sees canonical lowercase
        # envelope addresses. This is the hottest per-message call site in
        # the simulation, hence the records built positionally from locals.
        env_from = message.env_from
        if env_from and not env_from.islower():
            env_from = message.env_from = env_from.lower()
        env_to = message.env_to
        if not env_to.islower():
            env_to = message.env_to = env_to.lower()
        msg_id = message.msg_id
        size = message.size
        drop_reason = self.mta_in.check(message)
        self.store.add_mta(
            MtaRecord(company_id, now, msg_id, drop_reason, open_relay, size)
        )
        if drop_reason is not None:
            return drop_reason

        self.ledger.accept(msg_id)
        user_key = env_to
        decision = self.dispatcher.process(message, user_key, now)

        quarantined = (
            decision.category is Category.GRAY
            and decision.filter_drop is None
        )
        spf = (
            self.spf_evaluator.evaluate_message(message)
            if quarantined
            else SpfResult.NONE
        )
        local, domain = user_key.rsplit("@", 1)
        challenge = decision.challenge
        self.store.add_dispatch(
            DispatchRecord(
                company_id,
                now,
                msg_id,
                user_key,
                decision.category,
                decision.filter_drop,
                challenge.challenge_id if challenge is not None else None,
                decision.challenge_created,
                env_from,
                message.subject,
                size,
                spf,
                message.kind,
                message.sender_class,
                message.campaign_id,
                open_relay,
                config.is_protected_recipient(local, domain),
            )
        )
        if decision.category is Category.WHITE:
            self.inbox_delivered += 1
        if decision.challenge_created and challenge is not None:
            self._send_challenge(challenge)
        return None

    # -- challenge path ---------------------------------------------------

    def _send_challenge(self, challenge: Challenge) -> None:
        now = self.simulator.now
        self.store.add_challenge(
            ChallengeRecord(
                company_id=self.config.company_id,
                challenge_id=challenge.challenge_id,
                t=now,
                user=challenge.user,
                sender=challenge.sender,
                server_ip=self.challenge_mta.ip,
                size=challenge.size,
            )
        )
        envelope = Envelope(
            mail_from=f"challenge@{self.config.domain}",
            rcpt_to=challenge.sender,
            size=challenge.size,
            client_ip=self.challenge_mta.ip,
            payload_id=challenge.challenge_id,
        )
        self.challenge_mta.send(
            envelope, partial(self._on_challenge_final, challenge.challenge_id)
        )

    def _on_challenge_final(
        self, challenge_id: int, _envelope: Envelope, result: DeliveryResult
    ) -> None:
        challenge = self.challenge_manager.get(challenge_id)
        self.challenge_manager.record_delivery(challenge_id, result)
        self.store.add_challenge_outcome(
            ChallengeOutcomeRecord(
                company_id=self.config.company_id,
                challenge_id=challenge_id,
                status=result.status,
                bounce_reason=result.bounce_reason,
                attempts=result.attempts,
                t_final=result.t_final,
            )
        )
        if result.delivered and self.hooks.on_challenge_delivered is not None:
            self.hooks.on_challenge_delivered(self, challenge)

    # -- challenge web server ---------------------------------------------

    def record_web_open(self, challenge_id: int) -> None:
        now = self.simulator.now
        self.challenge_manager.record_open(challenge_id, now)
        self.store.add_web_access(
            WebAccessRecord(
                self.config.company_id, challenge_id, now, WebAction.OPEN, True
            )
        )

    def record_web_attempt(self, challenge_id: int, success: bool) -> None:
        now = self.simulator.now
        self.challenge_manager.record_attempt(challenge_id, now)
        self.store.add_web_access(
            WebAccessRecord(
                self.config.company_id, challenge_id, now, WebAction.ATTEMPT, success
            )
        )

    def solve_challenge(self, challenge_id: int) -> None:
        """A successful CAPTCHA submission: whitelist + release."""
        now = self.simulator.now
        challenge = self.challenge_manager.get(challenge_id)
        if challenge.solved:
            return
        self.challenge_manager.record_attempt(challenge_id, now)
        self.challenge_manager.record_solve(challenge_id, now)
        self.store.add_web_access(
            WebAccessRecord(
                self.config.company_id, challenge_id, now, WebAction.SOLVE, True
            )
        )
        self._whitelist(challenge.user, challenge.sender, WhitelistSource.CAPTCHA)
        self._release_from_sender(
            challenge.user, challenge.sender, ReleaseMechanism.CAPTCHA
        )

    # -- digest path --------------------------------------------------------

    def _digest_run(self) -> None:
        now = self.simulator.now
        if self.crash_plan is not None and self.crash_plan.digest_skipped(
            self.config.company_id, now
        ):
            # Digest daemon down at firing time: today's digests are
            # simply missed; pending entries wait for tomorrow's run.
            return
        day = day_of(now)
        for user in self.gray_spool.users_with_pending():
            local, domain = user.rsplit("@", 1)
            if not self.config.is_protected_recipient(local, domain):
                continue  # relayed recipients get no digest
            entries = self.gray_spool.pending_for_user(user)
            self.digest_counters.digests_generated += 1
            self.digest_counters.entries_listed += len(entries)
            self.store.add_digest(
                DigestRecord(self.config.company_id, user, day, len(entries))
            )
            if self.hooks.digest_review is None:
                continue
            decisions = self.hooks.digest_review(self, user, entries, now)
            for decision in decisions:
                self._schedule_digest_action(user, decision)

    def _schedule_digest_action(self, user: str, decision: DigestDecision) -> None:
        if decision.action is DigestAction.IGNORE:
            return
        self.simulator.schedule_after(
            max(0.0, decision.act_delay),
            partial(self._apply_digest_action, user, decision),
            label=f"digest-action:{self.config.company_id}",
        )

    def _apply_digest_action(self, user: str, decision: DigestDecision) -> None:
        entry = self.gray_spool.get(decision.msg_id)
        if entry is None or entry.user != user:
            # Already released/expired in the meantime — a legal no-op,
            # counted so the auditor can reconcile actions vs. terminals.
            self.digest_counters.stale_actions += 1
            return
        if decision.action is DigestAction.WHITELIST:
            sender = entry.message.env_from
            self.digest_counters.whitelist_actions += 1
            self._whitelist(user, sender, WhitelistSource.DIGEST)
            self._release_from_sender(user, sender, ReleaseMechanism.DIGEST)
            self._clear_challenge_slot(entry)
        elif decision.action is DigestAction.DELETE:
            self.digest_counters.delete_actions += 1
            self.gray_spool.delete(decision.msg_id)
            # The delete may have removed the last quarantined message
            # behind this sender's challenge; without this the pending
            # slot leaked and the sender's next message never triggered a
            # fresh challenge (found by the lifecycle auditor).
            self._clear_challenge_slot(entry)

    # -- live digest web UI -------------------------------------------------

    def release_via_web(self, user: str, msg_id: int) -> bool:
        """Digest web page "release": same semantics as the WHITELIST
        digest action, but driven synchronously by the live HTTP frontend
        instead of the behaviour hook. Returns ``False`` when the entry is
        already gone (released / expired meanwhile) — a legal stale click.
        """
        entry = self.gray_spool.get(msg_id)
        if entry is None or entry.user != user:
            self.digest_counters.stale_actions += 1
            return False
        sender = entry.message.env_from
        self.digest_counters.whitelist_actions += 1
        if sender:
            self._whitelist(user, sender, WhitelistSource.DIGEST)
            self._release_from_sender(user, sender, ReleaseMechanism.DIGEST)
            self._clear_challenge_slot(entry)
            return True
        # Null-sender (bounce/DSN) entries have no sender to whitelist:
        # release just this message.
        released = self.gray_spool.release(msg_id)
        if released is None:
            return False
        self.inbox_delivered += 1
        self.store.add_release(
            ReleaseRecord(
                company_id=self.config.company_id,
                user=user,
                msg_id=msg_id,
                t_arrival=entry.message.t,
                t_release=self.simulator.now,
                mechanism=ReleaseMechanism.DIGEST,
                kind=entry.message.kind,
            )
        )
        return True

    def delete_via_web(self, user: str, msg_id: int) -> bool:
        """Digest web page "delete": same semantics as the DELETE digest
        action. Returns ``False`` on a stale click."""
        entry = self.gray_spool.get(msg_id)
        if entry is None or entry.user != user:
            self.digest_counters.stale_actions += 1
            return False
        self.digest_counters.delete_actions += 1
        self.gray_spool.delete(msg_id)
        self._clear_challenge_slot(entry)
        return True

    # -- quarantine expiry ---------------------------------------------------

    def _expiry_run(self) -> None:
        now = self.simulator.now
        if self.crash_plan is not None and self.crash_plan.expiry_skipped(
            self.config.company_id, now
        ):
            # Gray-spool store down during the nightly sweep: entries past
            # their deadline stay put until the next sweep (the quarantine
            # promise is "held at least 30 days", so holding longer is
            # legal and the ledger still balances).
            return
        expired = self.gray_spool.expire_due(now)
        for entry in expired:
            self.store.add_expiry(
                ExpiryRecord(
                    self.config.company_id, entry.user, entry.message.msg_id, now
                )
            )
        # Clear pending-challenge slots whose quarantined messages are gone,
        # so a returning sender gets a fresh challenge.
        for entry in expired:
            self._clear_challenge_slot(entry)

    def _clear_challenge_slot(self, entry: GrayEntry) -> None:
        """Retire *entry*'s pending-challenge slot if it was the last
        quarantined message from its sender. Every path that finalizes a
        gray entry without a solve (expiry sweep, digest delete, horizon
        drain) must call this, or the slot outlives its messages and the
        sender's next message attaches to a dead challenge."""
        if entry.challenge_id is None:
            return
        sender = entry.message.env_from
        if not self.gray_spool.pending_from_sender(entry.user, sender):
            self.challenge_manager.expire_pending(entry.challenge_id)

    def shutdown(self) -> None:
        """End-of-run teardown: give every message still quarantined at the
        horizon its ``PENDING_AT_HORIZON`` terminal status and retire the
        challenge slots behind them (the gray-spool analogue of
        ``OutboundMta.drain``). Writes no log records — the measurement
        store only ever sees events that happened *inside* the horizon, so
        report output is identical with or without the drain."""
        drained = self.gray_spool.drain(self.simulator.now)
        for entry in drained:
            self._clear_challenge_slot(entry)

    # -- user-side actions -----------------------------------------------------

    def send_user_mail(self, user_local: str, rcpt: str, size: int) -> None:
        """A protected user sends outgoing mail (whitelists the recipient)."""
        now = self.simulator.now
        user = f"{user_local}@{self.config.domain}"
        self._whitelist(user, rcpt, WhitelistSource.OUTBOUND)
        self.store.add_outbound(
            OutboundMailRecord(self.config.company_id, now, user, rcpt, size)
        )
        envelope = Envelope(
            mail_from=user,
            rcpt_to=rcpt,
            size=size,
            client_ip=self.user_mta.ip,
        )
        self.user_mta.send(envelope, _discard_delivery)

    def manual_whitelist(self, user: str, address: str) -> None:
        """The user imports an address into their whitelist by hand."""
        self._whitelist(user, address, WhitelistSource.MANUAL)

    # -- shared helpers -----------------------------------------------------------

    def _whitelist(self, user: str, address: str, source: WhitelistSource) -> None:
        # Inbound-path callers pass already-normalized addresses; user-side
        # entry points (outbound mail, manual import) pass raw user input,
        # so normalize here — once — before storage and logging.
        address = address.lower()
        lists = self.whitelists.lists_for(user)
        if lists.add_to_whitelist(address, self.simulator.now, source):
            self.store.add_whitelist_change(
                WhitelistChangeRecord(
                    self.config.company_id,
                    user,
                    address,
                    self.simulator.now,
                    source,
                )
            )

    def _release_from_sender(
        self, user: str, sender: str, mechanism: ReleaseMechanism
    ) -> None:
        now = self.simulator.now
        entries = self.gray_spool.pending_from_sender(user, sender)
        for entry in entries:
            released = self.gray_spool.release(entry.message.msg_id)
            if released is None:
                continue
            self.inbox_delivered += 1
            self.store.add_release(
                ReleaseRecord(
                    company_id=self.config.company_id,
                    user=user,
                    msg_id=entry.message.msg_id,
                    t_arrival=entry.message.t,
                    t_release=now,
                    mechanism=mechanism,
                    kind=entry.message.kind,
                )
            )

    def seed_whitelist(self, user: str, addresses: list[str]) -> None:
        """Pre-populate a user's whitelist (steady-state address book)."""
        lists = self.whitelists.lists_for(user)
        for address in addresses:
            lists.add_to_whitelist(address, 0.0, WhitelistSource.SEED)

    def seed_blacklist(self, user: str, addresses: list[str]) -> None:
        lists = self.whitelists.lists_for(user)
        for address in addresses:
            lists.add_to_blacklist(address)


__all__ = [
    "BehaviorHooks",
    "CompanyInstallation",
    "DEFAULT_CHALLENGE_SIZE",
    "GrayEntry",
]
