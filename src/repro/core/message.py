"""The email message model.

Messages carry two kinds of information:

* what the CR system can see (envelope addresses, subject, size, client IP);
* ground-truth labels the *simulation* knows but the system must never read
  (``kind``, ``sender_class``, ``campaign_id``) — these exist so the
  analysis pipeline can evaluate the system's decisions, exactly like the
  paper's authors could label traffic post-hoc from campaign structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class MessageKind(enum.Enum):
    """Ground-truth nature of a message."""

    # Identity hash (C speed) — these are Counter keys in the analysis
    # index's hot passes; enum equality is identity, so this is safe.
    __hash__ = object.__hash__

    LEGIT = "legit"  # human-to-human mail
    NEWSLETTER = "newsletter"  # automated but solicited-ish bulk mail
    SPAM = "spam"  # unsolicited bulk mail


class SenderClass(enum.Enum):
    """Ground truth about the *envelope sender* address.

    For spam, the envelope sender is almost always forged; the forgery
    target determines what happens to a challenge sent back to it
    (§3.2 of the paper).
    """

    REAL = "real"  # the address belongs to the actual sender
    NONEXISTENT_MAILBOX = "nonexistent"  # valid domain, no such user
    DEAD_DOMAIN = "dead_domain"  # resolvable domain, unreachable server
    INNOCENT_THIRD_PARTY = "innocent"  # a real, uninvolved user's address
    SPAM_TRAP = "trap"  # a DNSBL operator's honeypot address


_next_msg_id = 0


def _allocate_msg_id() -> int:
    global _next_msg_id
    _next_msg_id += 1
    return _next_msg_id


def allocate_msg_id_block(n: int) -> int:
    """Reserve *n* consecutive message ids; return the first.

    Equivalent to *n* sequential :func:`_allocate_msg_id` calls — row ``i``
    of a batch gets ``first + i`` — so bulk construction allocates exactly
    the ids per-message construction would have.
    """
    global _next_msg_id
    first = _next_msg_id + 1
    _next_msg_id += n
    return first


def reset_msg_ids() -> None:
    """Reset the global message-id counter (between independent runs)."""
    global _next_msg_id
    _next_msg_id = 0


def snapshot_msg_ids() -> int:
    """Current value of the global id counter, for checkpointing."""
    return _next_msg_id


def restore_msg_ids(value: int) -> None:
    """Restore the counter saved by :func:`snapshot_msg_ids` so a resumed
    run allocates the same ids an uninterrupted run would have."""
    global _next_msg_id
    _next_msg_id = value


@dataclass(slots=True)
class EmailMessage:
    """One inbound email as seen at a company's MTA-IN.

    ``slots=True`` (rather than a hand-written ``__slots__``) so the
    trailing default field works: a manually slotted dataclass cannot
    carry defaults because the class attribute collides with the slot.
    """

    msg_id: int
    t: float
    env_from: str
    env_to: str
    subject: str
    size: int
    client_ip: str
    kind: MessageKind
    sender_class: SenderClass
    campaign_id: Optional[str]
    has_virus: bool
    #: Precomputed ``(pre_dns_reason, sender_domain, post_dns_reason)``
    #: from :meth:`repro.core.mta_in.MtaIn.precheck_batch`, or ``None``
    #: when the message was built outside the batch path. Carries only the
    #: DNS-independent part of the MTA verdict — resolution stays a
    #: delivery-time check because fault plans make it time-dependent.
    mta_hint: Optional[tuple] = None


def normalize_ingress(message: EmailMessage) -> EmailMessage:
    """Lowercase the envelope addresses, in place, once.

    SMTP mailbox local-parts are case-sensitive in theory and universally
    case-insensitive in practice; the paper's logs key senders by
    lowercased address. This is called exactly once, at the top of
    ``CompanyInstallation.handle_inbound`` — everything downstream
    (dispatcher, spools, whitelists, challenge dedup, digest actions) may
    assume ``env_from``/``env_to`` are already canonical instead of
    re-lowercasing defensively. Before this existed, scattered ``.lower()``
    calls disagreed: a mixed-case recipient was wrongly dropped as
    UNKNOWN_RECIPIENT because MTA-IN compared the raw local-part.
    """
    # islower() is an allocation-free C scan; generator-built traffic is
    # already canonical, so the common case skips both str copies. (An
    # uncased string — digits-only local, say — fails islower() and takes
    # the lower() path, which is then the identity.)
    env_from = message.env_from
    if env_from and not env_from.islower():
        message.env_from = env_from.lower()
    env_to = message.env_to
    if not env_to.islower():
        message.env_to = env_to.lower()
    return message


def make_message(
    t: float,
    env_from: str,
    env_to: str,
    *,
    subject: str = "",
    size: int = 8_000,
    client_ip: str = "0.0.0.0",
    kind: MessageKind = MessageKind.LEGIT,
    sender_class: SenderClass = SenderClass.REAL,
    campaign_id: Optional[str] = None,
    has_virus: bool = False,
) -> EmailMessage:
    """Construct a message with a fresh id. Keyword-heavy on purpose: call
    sites read as trace descriptions."""
    return EmailMessage(
        msg_id=_allocate_msg_id(),
        t=t,
        env_from=env_from,
        env_to=env_to,
        subject=subject,
        size=size,
        client_ip=client_ip,
        kind=kind,
        sender_class=sender_class,
        campaign_id=campaign_id,
        has_virus=has_virus,
    )


class MessageBatch:
    """Struct-of-arrays staging area for bulk-generated mail.

    The trace generator appends one row per message in **generation
    order** — the order that fixes message-id allocation and FIFO
    tie-breaks, so a batch-built day is indistinguishable from the old
    one-``make_message``-per-arrival day. Rows are staged as plain tuples
    (the cheapest per-message operation Python offers) and transposed
    into columns once, at :meth:`finalize`, where the sort and the
    permutations all run through C-level primitives.

    A row is ``(t, env_from, env_to, subject, size, client_ip, kind,
    sender_class, campaign_id, has_virus)`` — exactly
    :class:`EmailMessage`'s field order after ``msg_id``, so
    materialization is a single splat per message. ``handlers`` is the
    parallel per-row delivery callable.
    """

    __slots__ = ("rows", "handlers")

    def __init__(self) -> None:
        self.rows: list = []
        self.handlers: list = []

    def __len__(self) -> int:
        return len(self.rows)

    def finalize(self) -> tuple:
        """Allocate ids, sort by arrival time, materialize the messages.

        Returns ``(times, handlers, messages)`` — parallel columns sorted
        by time (stable, so same-time rows keep generation order), ready
        for :meth:`repro.sim.engine.Simulator.schedule_batch`. Ids are
        assigned by generation position *before* the sort, reproducing
        per-message allocation exactly.
        """
        rows = self.rows
        n = len(rows)
        if n == 0:
            return [], [], []
        first = allocate_msg_id_block(n)
        ts = [row[0] for row in rows]
        order = sorted(range(n), key=ts.__getitem__)
        handlers = self.handlers
        messages = [EmailMessage(first + i, *rows[i]) for i in order]
        return (
            [ts[i] for i in order],
            [handlers[i] for i in order],
            messages,
        )
