"""The 4-hourly blacklist probe of §5.1.

The paper complemented bounce-log analysis with "an automated script that
periodically checked for the IP addresses of the CR servers in a number of
services that provide an IP blacklist", every 4 hours for 132 days. This
module is that script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.blacklistd.service import DnsblService
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, HOUR


@dataclass(frozen=True)
class ProbeObservation:
    """One probe: was *ip* listed by *service* at time *t*?"""

    t: float
    ip: str
    service: str
    listed: bool


class BlacklistMonitor:
    """Periodically queries every (server IP, DNSBL service) pair."""

    def __init__(
        self,
        simulator: Simulator,
        services: Sequence[DnsblService],
        server_ips: Sequence[str],
        interval: float = 4 * HOUR,
        sink: Optional[Callable[[ProbeObservation], None]] = None,
    ) -> None:
        self.simulator = simulator
        self.services = list(services)
        self.server_ips = list(server_ips)
        self.interval = interval
        self.observations: list[ProbeObservation] = []
        self._sink = sink

    def start(self, start: float = 0.0, until: Optional[float] = None) -> None:
        """Arm the recurring probe on the simulator."""
        self.simulator.schedule_every(
            self.interval,
            self.probe_once,
            start=max(start, self.simulator.now),
            until=until,
            label="blacklist-probe",
        )

    def probe_once(self) -> None:
        now = self.simulator.now
        for ip in self.server_ips:
            for service in self.services:
                obs = ProbeObservation(
                    t=now, ip=ip, service=service.name,
                    listed=service.is_listed(ip, now),
                )
                self.observations.append(obs)
                if self._sink is not None:
                    self._sink(obs)

    def listed_days(self, ip: str) -> float:
        """Days on which *ip* was observed listed by at least one service.

        Mirrors the paper's metric "appearing in at least one of the
        blacklists for N days".
        """
        days_listed: set[int] = set()
        for obs in self.observations:
            if obs.ip == ip and obs.listed:
                days_listed.add(int(obs.t // DAY))
        return float(len(days_listed))

    def never_listed_ips(self) -> list[str]:
        listed = {obs.ip for obs in self.observations if obs.listed}
        return [ip for ip in self.server_ips if ip not in listed]
