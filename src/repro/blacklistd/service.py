"""DNSBL operators: trap-driven listing with time-based delisting.

The paper probed eight public blacklists (Barracuda, SpamCop, SpamHaus,
SpamCannibal, ORBITrbl, SORBS, CBL, PSBL/Surriel). We model each as a
:class:`DnsblService` with its own :class:`ListingPolicy` — they differ in
aggressiveness (how few trap hits trigger a listing), listing duration, and
whether repeat offenders get escalating durations, which is what produces
the paper's observation that a few servers stayed listed for 17–129 days
while most never appeared at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.util.simtime import DAY, HOUR


@dataclass(frozen=True)
class ListingPolicy:
    """How an operator turns trap hits into listings."""

    #: Trap hits within ``window`` required to list an IP.
    threshold: int
    #: Sliding window over which hits are counted.
    window: float
    #: Duration of the first listing.
    base_duration: float
    #: Each subsequent listing lasts ``escalation`` times longer...
    escalation: float = 2.0
    #: ...capped at this duration.
    max_duration: float = 60 * DAY


class ListingInterval(NamedTuple):
    """One contiguous period during which an IP was listed.

    A ``NamedTuple`` rather than a dataclass: tens of thousands are
    appended to ``history`` when campaigns seed pre-listed botnets, and
    tuple construction is several times cheaper while keeping the
    ``.ip``/``.listed_at``/``.listed_until`` attribute access consumers
    rely on.
    """

    ip: str
    listed_at: float
    listed_until: float


@dataclass(slots=True)
class _IpState:
    hits: list[float] = field(default_factory=list)
    listings: int = 0
    #: When the current/last listing became (or becomes) visible.
    listed_from: float = -1.0
    listed_until: float = -1.0


class DnsblService:
    """One blacklist operator.

    Query answers are memoised TTL-aware: every cached answer carries the
    time until which it stays valid — a "listed" answer lapses exactly when
    the listing does, a "not listed" answer lapses when a pending listing
    becomes visible (``listing_lag``) and otherwise never, since it can
    only be flipped by a new listing event — which is why
    :meth:`_list`/:meth:`force_list` drop the affected IP's entry.

    ``listing_lag``/``delisting_lag`` model operator latency (fault
    injection): a triggered listing only becomes query-visible
    ``listing_lag`` seconds later, and stays visible ``delisting_lag``
    seconds past its policy expiry. Both default to zero, which reproduces
    the instantaneous behaviour bit-for-bit.
    """

    #: Class-wide switch so tests can compare cached vs uncached runs.
    CACHE_ENABLED = True

    #: Marker for the columnar pickle form of ``_state``/``history``
    #: (tens of thousands of tiny objects per service otherwise dominate
    #: simulation-checkpoint writes).
    _PACKED = "dnsbl-packed-v1"

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        ip_state = state["_state"]
        state["_state"] = (
            self._PACKED,
            tuple(ip_state.keys()),
            tuple(tuple(s.hits) for s in ip_state.values()),
            tuple(s.listings for s in ip_state.values()),
            tuple(s.listed_from for s in ip_state.values()),
            tuple(s.listed_until for s in ip_state.values()),
        )
        history = state["history"]
        state["history"] = (
            self._PACKED,
            tuple(i.ip for i in history),
            tuple(i.listed_at for i in history),
            tuple(i.listed_until for i in history),
        )
        return state

    def __setstate__(self, state: dict) -> None:
        packed = state["_state"]
        if isinstance(packed, tuple) and packed[0] == self._PACKED:
            _, ips, hits, listings, listed_from, listed_until = packed
            state["_state"] = {
                ip: _IpState(list(h), n, f, u)
                for ip, h, n, f, u in zip(
                    ips, hits, listings, listed_from, listed_until
                )
            }
        packed = state["history"]
        if isinstance(packed, tuple) and packed[0] == self._PACKED:
            _, ips, listed_at, listed_until = packed
            state["history"] = [
                ListingInterval(ip, a, u)
                for ip, a, u in zip(ips, listed_at, listed_until)
            ]
        self.__dict__.update(state)

    def __init__(
        self,
        name: str,
        policy: ListingPolicy,
        *,
        listing_lag: float = 0.0,
        delisting_lag: float = 0.0,
    ) -> None:
        self.name = name
        self.policy = policy
        self.listing_lag = float(listing_lag)
        self.delisting_lag = float(delisting_lag)
        self._state: dict[str, _IpState] = {}
        #: ip -> (answer, valid_until); stable "not listed" answers carry
        #: ``inf`` (they only flip via a listing event, which pops them).
        self._answer_cache: dict[str, tuple[bool, float]] = {}
        self.history: list[ListingInterval] = []
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def record_trap_hit(self, ip: str, now: float) -> None:
        """Register that *ip* delivered mail to one of our trap addresses."""
        state = self._state.setdefault(ip, _IpState())
        state.hits.append(now)
        # Trim hits that fell out of the sliding window.
        cutoff = now - self.policy.window
        state.hits = [t for t in state.hits if t >= cutoff]
        if len(state.hits) >= self.policy.threshold and state.listed_until <= now:
            self._list(ip, state, now)

    def _list(self, ip: str, state: _IpState, now: float) -> None:
        duration = min(
            self.policy.base_duration * (self.policy.escalation ** state.listings),
            self.policy.max_duration,
        )
        state.listings += 1
        # The operator publishes the listing ``listing_lag`` after the trap
        # evidence triggers it, and keeps it ``delisting_lag`` past expiry.
        visible_from = now + self.listing_lag
        state.listed_from = visible_from
        state.listed_until = visible_from + duration + self.delisting_lag
        state.hits.clear()
        self._answer_cache.pop(ip, None)
        self.history.append(ListingInterval(ip, visible_from, state.listed_until))

    def _answer(self, state: Optional[_IpState], now: float) -> tuple[bool, float]:
        """``(listed, valid_until)`` for one IP's state at *now*."""
        if state is None or now >= state.listed_until:
            return False, math.inf
        if now < state.listed_from:
            # Listing triggered but not yet published: "not listed", and
            # that answer goes stale the moment the listing appears.
            return False, state.listed_from
        return True, state.listed_until

    def is_listed(self, ip: str, now: float) -> bool:
        """DNSBL query: is *ip* currently listed?"""
        self.queries += 1
        if not DnsblService.CACHE_ENABLED:
            return self._answer(self._state.get(ip), now)[0]
        cached = self._answer_cache.get(ip)
        if cached is not None and now < cached[1]:
            self.cache_hits += 1
            return cached[0]
        self.cache_misses += 1
        answer = self._answer(self._state.get(ip), now)
        self._answer_cache[ip] = answer
        return answer[0]

    def force_list(self, ip: str, now: float, duration: float) -> None:
        """Administratively list *ip* (used to seed pre-listed botnet IPs).

        Takes effect immediately — no listing lag; these stand in for
        listings that predate the observation window.
        """
        # get-then-create instead of setdefault: this runs ~3x per botnet
        # member, and setdefault would build a throwaway _IpState per call.
        state = self._state.get(ip)
        if state is None:
            state = self._state[ip] = _IpState()
        state.listings += 1
        if state.listed_from < 0 or state.listed_from > now:
            state.listed_from = now
        state.listed_until = max(state.listed_until, now + duration)
        self._answer_cache.pop(ip, None)
        self.history.append(ListingInterval(ip, now, state.listed_until))

    def force_list_many(self, ips: list, now: float, duration: float) -> None:
        """Bulk :meth:`force_list` — one call per campaign per service
        instead of one per botnet member.

        State-identical to calling ``force_list`` on each IP in order
        (``force_list`` reads nothing it writes between calls); exists
        because seeding pre-listed botnets is the single hottest consumer
        of this module and the per-call body can hoist every lookup.
        """
        states = self._state
        states_get = states.get
        cache_pop = self._answer_cache.pop
        append = self.history.append
        until = now + duration
        for ip in ips:
            state = states_get(ip)
            if state is None:
                state = states[ip] = _IpState()
            state.listings += 1
            if state.listed_from < 0 or state.listed_from > now:
                state.listed_from = now
            if until > state.listed_until:
                state.listed_until = until
            cache_pop(ip, None)
            append(ListingInterval(ip, now, state.listed_until))

    def listed_intervals(self, ip: str) -> list[ListingInterval]:
        return [interval for interval in self.history if interval.ip == ip]

    def total_listed_time(self, ip: str, horizon: float) -> float:
        """Total seconds *ip* spent listed within ``[0, horizon]``.

        Intervals are merged so overlapping/adjacent listings are not
        double-counted.
        """
        spans = sorted(
            (i.listed_at, min(i.listed_until, horizon))
            for i in self.listed_intervals(ip)
            if i.listed_at < horizon
        )
        total = 0.0
        current_start: Optional[float] = None
        current_end = 0.0
        for start, end in spans:
            if current_start is None:
                current_start, current_end = start, end
            elif start <= current_end:
                current_end = max(current_end, end)
            else:
                total += current_end - current_start
                current_start, current_end = start, end
        if current_start is not None:
            total += current_end - current_start
        return total


#: Policies loosely ranked by real-world reputation for aggressiveness in
#: 2010: CBL/PSBL-style automated lists triggered on very few hits with
#: short listings; SpamHaus-style lists needed corroboration but listed
#: longer; SpamCannibal was notoriously sticky.
DEFAULT_SERVICE_POLICIES: dict[str, ListingPolicy] = {
    "barracuda-rbl": ListingPolicy(threshold=4, window=1 * DAY, base_duration=2 * DAY),
    "spamcop-bl": ListingPolicy(
        threshold=3, window=1 * DAY, base_duration=1 * DAY, escalation=1.5
    ),
    "spamhaus-zen": ListingPolicy(threshold=6, window=2 * DAY, base_duration=4 * DAY),
    "cannibal-bl": ListingPolicy(
        threshold=2,
        window=3 * DAY,
        base_duration=7 * DAY,
        escalation=3.0,
        max_duration=90 * DAY,
    ),
    "orbit-rbl": ListingPolicy(threshold=3, window=1 * DAY, base_duration=2 * DAY),
    "sorbs-spam": ListingPolicy(
        threshold=4, window=2 * DAY, base_duration=3 * DAY, escalation=2.5
    ),
    "cbl-abuseat": ListingPolicy(
        threshold=2, window=12 * HOUR, base_duration=12 * HOUR, escalation=1.5
    ),
    "psbl-surriel": ListingPolicy(
        threshold=2, window=1 * DAY, base_duration=1 * DAY, escalation=1.5
    ),
}


def make_default_services() -> list[DnsblService]:
    """Instantiate the eight blacklist operators probed in §5.1."""
    return [
        DnsblService(name, policy)
        for name, policy in DEFAULT_SERVICE_POLICIES.items()
    ]
