"""The DNSBL ecosystem around the CR product.

Spam traps are honeypot addresses whose only purpose is to catch senders of
unsolicited mail; DNSBL operators harvest trap hits and publish IP
blacklists; remote mail servers (and the CR product's own RBL filter)
consult those lists. A CR installation participates in this ecosystem from
both sides: its RBL filter *queries* blacklists, while its challenge MTA
risks *appearing* on them when challenges are reflected to trap addresses
(§5.1 of the paper).
"""

from repro.blacklistd.monitor import BlacklistMonitor, ProbeObservation
from repro.blacklistd.service import DnsblService, ListingPolicy, make_default_services
from repro.blacklistd.spamtrap import TrapDirectory

__all__ = [
    "DnsblService",
    "ListingPolicy",
    "make_default_services",
    "TrapDirectory",
    "BlacklistMonitor",
    "ProbeObservation",
]
