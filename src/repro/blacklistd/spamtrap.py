"""Spam-trap address pools.

Each DNSBL operator seeds trap addresses across ordinary-looking domains.
When any mail — a spam message or a misdirected challenge — is delivered to
a trap address, the owning operator records a hit against the sending IP.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional


class TrapDirectory:
    """Maps trap addresses to the DNSBL service that owns them."""

    def __init__(self) -> None:
        self._owner_by_address: dict[str, str] = {}

    def add_trap(self, address: str, service_name: str) -> None:
        self._owner_by_address[address.lower()] = service_name

    def create_traps(
        self,
        service_name: str,
        domains: Iterable[str],
        per_domain: int,
        rng: random.Random,
    ) -> list[str]:
        """Seed *per_domain* trap mailboxes on each of *domains*.

        Trap local parts look like plausible harvested addresses ("old
        employee" style), because that is what makes real traps effective.
        """
        created: list[str] = []
        for domain in domains:
            for _ in range(per_domain):
                local = "trap-" + "".join(
                    rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
                    for _ in range(8)
                )
                address = f"{local}@{domain}"
                self.add_trap(address, service_name)
                created.append(address)
        return created

    def is_trap(self, address: str) -> bool:
        return address.lower() in self._owner_by_address

    def owner_of(self, address: str) -> Optional[str]:
        return self._owner_by_address.get(address.lower())

    def addresses(self) -> list[str]:
        return list(self._owner_by_address)

    def __len__(self) -> int:
        return len(self._owner_by_address)
