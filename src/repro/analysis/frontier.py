"""FP/FN frontiers: CR vs. the competing-filter baselines, per scenario.

The original paper could argue only from its own deployment that CR
beats content filtering on false positives (§1, citing Erickson et
al.). With the baselines now living *inside* the dispatcher's chain
(:mod:`repro.core.filters.content` / ``reputation``), this experiment
produces the table the paper could not: the same simulated deployment
re-run under each chain composition — pure CR, the shipped product
chain, each baseline alone, and the full hybrid — across every scenario
in the declarative pack, with end-to-end false-positive and
false-negative rates per cell, averaged over seeds.

"End-to-end" means inbox truth, uniformly for every chain: a false
negative is spam that reached an inbox (whitelist hit or spurious
release); a false positive is a legitimate person-to-person message
that never made it, whether a filter dropped it or its challenge went
unsolved. That keeps the columns comparable — a content filter's false
drops and CR's lost-challenge losses land in the same bucket.

Registered as experiment id ``frontier``. :func:`check_frontier` is the
machine-checked non-degeneracy gate CI runs: every cell must evaluate
(both classes observed, no failed runs), and pure CR must beat the
naive-Bayes chain on false positives in clean weather — the paper's
headline claim, now measured instead of cited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.store import LogStore
from repro.core.config import FilterChainSpec
from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.util.render import TextTable
from repro.util.stats import safe_ratio

#: Row label for the scenario-free (clean weather, no attacks) row.
CLEAN = "(clean)"

#: Frontier columns: (label, chain argument for ``run_simulation``).
#: ``None`` is the legacy product build — deliberately, so its runs
#: share cache entries with every other default-chain sweep.
FRONTIER_CHAINS: Tuple[Tuple[str, object], ...] = (
    ("cr-only", "cr-only"),
    ("product", None),
    ("naive-bayes", "naive-bayes"),
    ("reputation", "reputation"),
    ("hybrid", "hybrid"),
)

#: Default seeds (the acceptance gate wants >= 3).
FRONTIER_SEEDS = (3, 5, 7)


@dataclass(frozen=True)
class FrontierCell:
    """One (scenario, chain) cell, accumulated over the seed set."""

    scenario: str
    chain: str
    seeds: Tuple[int, ...]
    spam_total: int
    spam_delivered: int
    legit_total: int
    legit_lost: int
    #: Runs that errored even after retry; a healthy frontier has none.
    failed_runs: int = 0

    @property
    def false_negative_rate(self) -> float:
        """Spam that reached an inbox."""
        return safe_ratio(self.spam_delivered, self.spam_total)

    @property
    def false_positive_rate(self) -> float:
        """Legitimate person-to-person mail that never made it."""
        return safe_ratio(self.legit_lost, self.legit_total)

    @property
    def evaluated(self) -> bool:
        """Both classes observed and every seed's run completed."""
        return (
            self.failed_runs == 0
            and self.spam_total > 0
            and self.legit_total > 0
        )


@dataclass(frozen=True)
class FrontierResult:
    """The full frontier: one cell per (scenario row, chain column)."""

    preset: str
    seeds: Tuple[int, ...]
    scenarios: Tuple[str, ...]
    chains: Tuple[str, ...]
    cells: Tuple[FrontierCell, ...]

    def cell(self, scenario: str, chain: str) -> Optional[FrontierCell]:
        for candidate in self.cells:
            if candidate.scenario == scenario and candidate.chain == chain:
                return candidate
        return None


def delivery_counts(store: LogStore) -> Tuple[int, int, int, int]:
    """End-to-end (spam_total, spam_delivered, legit_total, legit_lost).

    Same inbox-truth accounting as
    :func:`repro.baselines.comparison.compare_defences` applies to the CR
    side, over the *whole* run (in-chain filters train online, so there
    is no offline train/test split to respect). Single streaming pass —
    safe on spilled and merged stores.
    """
    released = {record.msg_id for record in store.releases}
    spam_total = spam_delivered = legit_total = legit_lost = 0
    for record in store.dispatch:
        quarantined = (
            record.category is Category.GRAY and record.filter_drop is None
        )
        delivered = (
            record.category is Category.WHITE
            or (quarantined and record.msg_id in released)
        )
        if record.kind is MessageKind.SPAM:
            spam_total += 1
            if delivered:
                spam_delivered += 1
        elif record.kind is MessageKind.LEGIT and record.env_from:
            # Same exclusions as the offline comparison: newsletters and
            # null-sender bounces are not person-to-person mail.
            legit_total += 1
            if not delivered:
                legit_lost += 1
    return spam_total, spam_delivered, legit_total, legit_lost


def run_frontier(
    preset: str = "tiny",
    seeds: Sequence[int] = FRONTIER_SEEDS,
    scenarios: Optional[Sequence[Optional[str]]] = None,
    chains: Sequence[Tuple[str, object]] = FRONTIER_CHAINS,
    jobs: int = 1,
    runner=None,
) -> FrontierResult:
    """Sweep every (scenario, chain, seed) and aggregate the frontier.

    *scenarios* is a sequence of pack names, with ``None`` meaning the
    scenario-free clean row; the default is the clean row plus the whole
    pack. Pass an existing
    :class:`~repro.experiments.parallel.ParallelRunner` as *runner* to
    share its result cache and counters.
    """
    from repro.experiments.parallel import ParallelRunner, RunSpec
    from repro.scenarios import scenario_names

    if scenarios is None:
        scenarios = (None, *scenario_names())
    seeds = tuple(seeds)
    chains = tuple(chains)
    if runner is None:
        runner = ParallelRunner(jobs=jobs)

    # One flat spec list -> one runner call, so the process pool sees
    # every run at once; chain strings stay unresolved in the spec (the
    # cache key folds the resolved FilterChainSpec either way).
    specs = []
    index = []
    for scenario in scenarios:
        for chain_label, chain in chains:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        preset=preset,
                        seed=seed,
                        scenario=scenario,
                        chain=chain,
                        label=f"{scenario or CLEAN}/{chain_label}/{seed}",
                    )
                )
                index.append((scenario or CLEAN, chain_label))
    summaries = runner.run(specs)

    totals: dict = {}
    for (row, column), summary in zip(index, summaries):
        cell = totals.setdefault((row, column), [0, 0, 0, 0, 0])
        if summary.failed:
            cell[4] += 1
            continue
        counts = delivery_counts(summary.store)
        for position, count in enumerate(counts):
            cell[position] += count

    cells = tuple(
        FrontierCell(
            scenario=row,
            chain=column,
            seeds=seeds,
            spam_total=counts[0],
            spam_delivered=counts[1],
            legit_total=counts[2],
            legit_lost=counts[3],
            failed_runs=counts[4],
        )
        for (row, column), counts in totals.items()
    )
    return FrontierResult(
        preset=preset,
        seeds=seeds,
        scenarios=tuple(s or CLEAN for s in scenarios),
        chains=tuple(label for label, _ in chains),
        cells=cells,
    )


def check_frontier(result: FrontierResult) -> list:
    """Non-degeneracy gate: failure strings, empty when healthy.

    * every (scenario, chain) cell exists and evaluated — both mail
      classes observed, no failed runs;
    * on the clean row, pure CR's false-positive rate is strictly below
      the naive-Bayes chain's (the paper's §1 claim).
    """
    failures = []
    for scenario in result.scenarios:
        for chain in result.chains:
            cell = result.cell(scenario, chain)
            if cell is None:
                failures.append(f"missing cell: {scenario} x {chain}")
            elif not cell.evaluated:
                failures.append(
                    f"degenerate cell {scenario} x {chain}: "
                    f"spam={cell.spam_total} legit={cell.legit_total} "
                    f"failed_runs={cell.failed_runs}"
                )
    cr = result.cell(CLEAN, "cr-only")
    bayes = result.cell(CLEAN, "naive-bayes")
    if cr is not None and bayes is not None and cr.evaluated and bayes.evaluated:
        if not cr.false_positive_rate < bayes.false_positive_rate:
            failures.append(
                "clean-row FP ordering violated: CR "
                f"{cr.false_positive_rate:.4f} !< naive-Bayes "
                f"{bayes.false_positive_rate:.4f}"
            )
    return failures


def build_table(result: FrontierResult) -> TextTable:
    table = TextTable(
        headers=[
            "scenario",
            "chain",
            "FP (legit lost)",
            "FN (spam in)",
            "legit",
            "spam",
        ],
        title=(
            f"FP/FN frontier — preset {result.preset}, "
            f"seeds {', '.join(str(s) for s in result.seeds)}"
        ),
    )
    for scenario in result.scenarios:
        for chain in result.chains:
            cell = result.cell(scenario, chain)
            if cell is None:
                table.add_row(scenario, chain, "—", "—", 0, 0)
                continue
            table.add_row(
                scenario,
                chain,
                f"{100.0 * cell.false_positive_rate:.2f}%",
                f"{100.0 * cell.false_negative_rate:.4f}%",
                cell.legit_total,
                cell.spam_total,
            )
    return table


def render(result: FrontierResult) -> str:
    lines = [build_table(result).render()]
    failures = check_frontier(result)
    if failures:
        lines.append("DEGENERATE:")
        lines.extend(f"  FAIL {failure}" for failure in failures)
    else:
        lines.append(
            "checks: all cells evaluated; clean-row CR FP < naive-Bayes FP"
        )
    return "\n".join(lines)


def render_result(result, jobs: Optional[int] = None) -> str:
    """Experiment-registry adapter.

    The frontier is a cross-run sweep, so unlike the single-run
    experiments it re-simulates (tiny preset, the full scenario pack,
    :data:`FRONTIER_SEEDS`) rather than analysing *result*, which is
    ignored. Runs go through the shared on-disk result cache, so
    repeated renders are free.
    """
    import os

    from repro.experiments.parallel import ParallelRunner, RunCache

    if jobs is None:
        jobs = min(4, os.cpu_count() or 1)
    runner = ParallelRunner(jobs=jobs, cache=RunCache())
    frontier = run_frontier(runner=runner)
    note = (
        "note: frontier re-simulates across chain compositions "
        f"({runner.cache_hits} cached, {runner.runs_executed} executed)"
    )
    return "\n".join([render(frontier), note])


__all__ = [
    "CLEAN",
    "FRONTIER_CHAINS",
    "FRONTIER_SEEDS",
    "FrontierCell",
    "FrontierResult",
    "delivery_counts",
    "run_frontier",
    "check_frontier",
    "build_table",
    "render",
    "render_result",
]
