"""Figure 11 / §5.1: challenge-server blacklisting.

Two measurement methods, exactly as in the paper:

1. **Bounce-log method** (Fig. 11): per company, the ratio between
   challenges sent and blacklist-related delivery errors received; the
   paper plots it on a log scale and finds no relationship with server
   size.
2. **Probe method** (§5.1): a script queried eight public DNSBLs for every
   challenge-server IP every four hours (132 days in the paper); 75 % of
   servers never appeared anywhere, a few were listed for under a day, and
   four servers were listed for 17/33/113/129 days — with no link to the
   number of challenges sent (the top-3 senders were never listed).
"""

from __future__ import annotations

from typing import Sequence
from dataclasses import dataclass

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable, TextTable
from repro.util.stats import pearson, safe_ratio


@dataclass(frozen=True)
class CompanyBlacklisting:
    company_id: str
    challenges_sent: int
    blacklist_bounces: int

    @property
    def bounce_ratio(self) -> float:
        return safe_ratio(self.blacklist_bounces, self.challenges_sent)


@dataclass(frozen=True)
class ServerListing:
    ip: str
    challenges_sent: int
    listed_days: float
    probed_days: float


@dataclass(frozen=True)
class BlacklistingStats:
    companies: Sequence[CompanyBlacklisting]
    servers: Sequence[ServerListing]
    #: Pearson r between per-company challenge volume and bounce ratio.
    volume_bounce_correlation: float
    #: Pearson r between per-server challenge volume and listed days.
    volume_listing_correlation: float

    @property
    def never_listed_share(self) -> float:
        if not self.servers:
            return 0.0
        return sum(1 for s in self.servers if s.listed_days == 0) / len(
            self.servers
        )

    @property
    def top_listed_days(self) -> list[float]:
        return sorted(
            (s.listed_days for s in self.servers), reverse=True
        )[:6]

    def top_senders_listed_days(self, top: int = 3) -> list[float]:
        """Listed days of the top challenge senders (paper: all zero)."""
        ranked = sorted(
            self.servers, key=lambda s: s.challenges_sent, reverse=True
        )
        return [s.listed_days for s in ranked[:top]]


def compute(store: LogStore, info: DeploymentInfo) -> BlacklistingStats:
    index = store.index()
    challenges_by_company = index.challenges.per_company
    challenges_by_ip = index.challenges.per_ip
    outcomes_per_company = index.outcomes.per_company

    companies = [
        CompanyBlacklisting(
            company_id=company_id,
            challenges_sent=challenges_by_company[company_id],
            blacklist_bounces=(
                outcomes_per_company[company_id].bounced_blacklisted
                if company_id in outcomes_per_company
                else 0
            ),
        )
        for company_id in sorted(challenges_by_company)
    ]

    probes = index.probes
    listed_days_by_ip = probes.listed_days_by_ip
    probed_ips = probes.probed_ips
    probe_days = probes.probe_days
    servers = [
        ServerListing(
            ip=ip,
            challenges_sent=challenges_by_ip.get(ip, 0),
            listed_days=float(len(listed_days_by_ip.get(ip, ()))),
            probed_days=float(len(probe_days)),
        )
        for ip in sorted(probed_ips)
    ]

    if len(companies) >= 2:
        volume_bounce = pearson(
            [float(c.challenges_sent) for c in companies],
            [c.bounce_ratio for c in companies],
        )
    else:
        volume_bounce = 0.0
    if len(servers) >= 2:
        volume_listing = pearson(
            [float(s.challenges_sent) for s in servers],
            [s.listed_days for s in servers],
        )
    else:
        volume_listing = 0.0
    return BlacklistingStats(
        companies=companies,
        servers=servers,
        volume_bounce_correlation=volume_bounce,
        volume_listing_correlation=volume_listing,
    )


def build_table(stats: BlacklistingStats, info: DeploymentInfo) -> ComparisonTable:
    table = ComparisonTable("Fig. 11 / Sec. 5.1 — challenge-server blacklisting")
    table.add(
        "servers never listed in any DNSBL",
        75.0,
        100.0 * stats.never_listed_share,
        "%",
    )
    top = stats.top_listed_days
    scale = info.horizon_days / 132.0  # paper probed for 132 days
    paper_top = [129.0, 113.0, 33.0, 17.0]
    for i, days in enumerate(top[:4]):
        paper = paper_top[i] * scale if i < len(paper_top) else None
        table.add(
            f"#{i + 1} most-listed server, days listed (paper x window ratio)",
            paper,
            days,
        )
    table.add(
        "corr(challenges sent, blacklist bounce ratio) [paper: none]",
        0.0,
        stats.volume_bounce_correlation,
    )
    table.add(
        "corr(challenges sent, days listed) [paper: none]",
        0.0,
        stats.volume_listing_correlation,
    )
    top_sender_days = stats.top_senders_listed_days()
    table.add(
        "max listed-days among top-3 challenge senders (paper: 0)",
        0.0,
        max(top_sender_days) if top_sender_days else 0.0,
    )
    return table


def build_scatter_table(stats: BlacklistingStats, top: int = 12) -> TextTable:
    table = TextTable(
        headers=["company", "challenges", "bl-bounces", "bounce ratio"],
        title="Fig. 11 — per-company blacklist bounce ratios (top by volume)",
    )
    ranked = sorted(
        stats.companies, key=lambda c: c.challenges_sent, reverse=True
    )
    for company in ranked[:top]:
        table.add_row(
            company.company_id,
            company.challenges_sent,
            company.blacklist_bounces,
            f"{company.bounce_ratio:.4f}",
        )
    return table


def render(store: LogStore, info: DeploymentInfo) -> str:
    stats = compute(store, info)
    return "\n\n".join(
        [
            build_table(stats, info).render(),
            build_scatter_table(stats).render(),
        ]
    )
