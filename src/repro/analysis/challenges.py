"""Figure 4: challenge delivery status and CAPTCHA statistics.

Paper anchors:

* Fig. 4(a): only 49 % of challenges were delivered; of the undelivered
  remainder, 71.7 % bounced because the recipient did not exist, a small
  portion bounced because the challenge server was blacklisted, and the
  rest expired after repeated attempts;
* §3.2: 94 % of delivered challenges' CAPTCHA URLs were never opened, 4 %
  were solved, 0.25 % were visited but not solved (Table 1's counts imply
  ~3.5 % of *sent* challenges solved — the paper reports both);
* Fig. 4(b): solvers never needed more than five attempts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable, TextTable
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class ChallengeStats:
    sent: int
    resolved: int  # challenges with a final delivery status
    delivered: int
    bounced_nonexistent: int
    bounced_blacklisted: int
    bounced_other: int
    expired: int
    opened: int
    solved: int
    visited_not_solved: int
    #: attempts (1..5+) -> number of solved challenges needing that many.
    attempts_histogram: Mapping[int, int]

    @property
    def delivered_share(self) -> float:
        return safe_ratio(self.delivered, self.resolved)

    @property
    def undelivered_share(self) -> float:
        return 1.0 - self.delivered_share

    @property
    def nonexistent_share_of_undelivered(self) -> float:
        undelivered = self.resolved - self.delivered
        return safe_ratio(self.bounced_nonexistent, undelivered)

    @property
    def never_opened_share(self) -> float:
        return 1.0 - safe_ratio(self.opened, self.delivered)

    @property
    def solved_share_of_delivered(self) -> float:
        return safe_ratio(self.solved, self.delivered)

    @property
    def solved_share_of_sent(self) -> float:
        return safe_ratio(self.solved, self.sent)

    @property
    def visited_not_solved_share(self) -> float:
        return safe_ratio(self.visited_not_solved, self.delivered)

    @property
    def max_attempts(self) -> int:
        return max(self.attempts_histogram, default=0)


def compute(store: LogStore) -> ChallengeStats:
    index = store.index()
    outcomes = index.outcomes
    web = index.web
    delivered_ids = outcomes.delivered_ids
    opened_ids = web.opened_ids
    solved_ids = web.solved_ids
    attempts_by_challenge = web.attempts_by_challenge

    attempts_histogram: Counter = Counter()
    for key in solved_ids:
        attempts_histogram[attempts_by_challenge[key]] += 1

    opened_delivered = opened_ids & delivered_ids
    solved_delivered = solved_ids & delivered_ids
    return ChallengeStats(
        sent=len(store.challenges),
        resolved=outcomes.resolved,
        delivered=outcomes.delivered,
        bounced_nonexistent=outcomes.bounced_nonexistent,
        bounced_blacklisted=outcomes.bounced_blacklisted,
        bounced_other=outcomes.bounced_other,
        expired=outcomes.expired,
        opened=len(opened_delivered),
        solved=len(solved_delivered),
        visited_not_solved=len(opened_delivered - solved_delivered),
        attempts_histogram=dict(attempts_histogram),
    )


def build_delivery_table(stats: ChallengeStats) -> ComparisonTable:
    table = ComparisonTable("Fig. 4(a) — challenge delivery status distribution")
    table.add("delivered", 49.0, 100.0 * stats.delivered_share, "%")
    table.add("undelivered (bounced or expired)", 51.0, 100.0 * stats.undelivered_share, "%")
    table.add(
        "of undelivered: non-existent recipient",
        71.7,
        100.0 * stats.nonexistent_share_of_undelivered,
        "%",
    )
    undelivered = max(stats.resolved - stats.delivered, 1)
    table.add(
        "of undelivered: server blacklisted",
        None,
        100.0 * stats.bounced_blacklisted / undelivered,
        "%",
    )
    table.add(
        "of undelivered: expired after retries",
        None,
        100.0 * stats.expired / undelivered,
        "%",
    )
    return table


def build_web_table(stats: ChallengeStats) -> ComparisonTable:
    table = ComparisonTable("Sec. 3.2 / Fig. 4(b) — CAPTCHA web statistics")
    table.add(
        "delivered challenges never opened",
        94.0,
        100.0 * stats.never_opened_share,
        "%",
    )
    table.add(
        "solved (of delivered; paper Sec 3.2: 4%)",
        4.0,
        100.0 * stats.solved_share_of_delivered,
        "%",
    )
    table.add(
        "solved (of sent; paper Table 1: 3.5%)",
        3.5,
        100.0 * stats.solved_share_of_sent,
        "%",
    )
    table.add(
        "visited but not solved",
        0.25,
        100.0 * stats.visited_not_solved_share,
        "%",
    )
    table.add("max CAPTCHA attempts observed", 5, stats.max_attempts)
    return table


def build_attempts_table(stats: ChallengeStats) -> TextTable:
    table = TextTable(
        headers=["attempts", "solved challenges", "share"],
        title="Fig. 4(b) — tries required to solve the CAPTCHA",
    )
    total = sum(stats.attempts_histogram.values()) or 1
    for attempts in sorted(stats.attempts_histogram):
        count = stats.attempts_histogram[attempts]
        table.add_row(attempts, count, f"{100.0 * count / total:.2f}%")
    return table


def render(store: LogStore) -> str:
    stats = compute(store)
    return "\n\n".join(
        [
            build_delivery_table(stats).render(),
            build_web_table(stats).render(),
            build_attempts_table(stats).render(),
        ]
    )
