"""Per-company drill-down: one installation's complete profile.

The paper reports fleet-wide aggregates; an administrator of a single
installation wants the same quantities for *their* server: the message
flow, the challenge fates, the CAPTCHA statistics, digest burden, and the
blacklisting exposure of their outbound IPs. This report assembles all of
it from the shared logs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.core.challenge import WebAction
from repro.core.mta_in import DropReason
from repro.core.spools import Category, ReleaseMechanism
from repro.net.smtp import BounceReason, FinalStatus
from repro.util.render import TextTable
from repro.util.simtime import DAY
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class CompanyProfile:
    company_id: str
    users: int
    open_relay: bool
    inbound_total: int
    inbound_per_day: float
    drop_shares: Mapping[DropReason, float]
    accepted: int
    white: int
    black: int
    gray: int
    filter_drops: Mapping[str, int]
    challenges_sent: int
    challenges_delivered: int
    challenges_bounced_nonexistent: int
    challenges_bounced_blacklisted: int
    challenges_expired: int
    captchas_solved: int
    released_captcha: int
    released_digest: int
    mean_digest_size: float
    listed_days_by_ip: Mapping[str, int]

    @property
    def reflection(self) -> float:
        return safe_ratio(self.challenges_sent, self.accepted)

    @property
    def white_share(self) -> float:
        return safe_ratio(self.white, self.accepted)

    @property
    def solved_share(self) -> float:
        return safe_ratio(self.captchas_solved, self.challenges_sent)


def compute(
    store: LogStore, info: DeploymentInfo, company_id: str
) -> CompanyProfile:
    """Build one company's profile from the shared logs.

    Raises ``KeyError`` when the company never appears in the MTA logs.
    """
    inbound_total = 0
    dropped: Counter = Counter()
    open_relay = False
    for record in store.mta:
        if record.company_id != company_id:
            continue
        inbound_total += 1
        open_relay = record.open_relay
        if record.drop_reason is not None:
            dropped[record.drop_reason] += 1
    if inbound_total == 0:
        raise KeyError(f"no traffic recorded for company {company_id!r}")

    white = black = gray = 0
    filter_drops: Counter = Counter()
    for record in store.dispatch:
        if record.company_id != company_id:
            continue
        if record.category is Category.WHITE:
            white += 1
        elif record.category is Category.BLACK:
            black += 1
        else:
            gray += 1
            if record.filter_drop:
                filter_drops[record.filter_drop] += 1

    challenges_sent = 0
    server_ips = set()
    for record in store.challenges:
        if record.company_id == company_id:
            challenges_sent += 1
            server_ips.add(record.server_ip)

    delivered = bounced_nonexistent = bounced_blacklisted = expired = 0
    for outcome in store.challenge_outcomes:
        if outcome.company_id != company_id:
            continue
        if outcome.status is FinalStatus.DELIVERED:
            delivered += 1
        elif outcome.status is FinalStatus.EXPIRED:
            expired += 1
        elif outcome.bounce_reason is BounceReason.NONEXISTENT_RECIPIENT:
            bounced_nonexistent += 1
        elif outcome.bounce_reason is BounceReason.BLACKLISTED:
            bounced_blacklisted += 1

    solved = sum(
        1
        for w in store.web_access
        if w.company_id == company_id and w.action is WebAction.SOLVE
    )
    released = Counter(
        r.mechanism
        for r in store.releases
        if r.company_id == company_id
    )
    digest_sizes = [
        r.pending_count for r in store.digests if r.company_id == company_id
    ]
    listed_days: dict = defaultdict(set)
    for probe in store.probes:
        if probe.listed and probe.ip in server_ips:
            listed_days[probe.ip].add(int(probe.t // DAY))

    accepted = inbound_total - sum(dropped.values())
    return CompanyProfile(
        company_id=company_id,
        users=info.users_per_company.get(company_id, 0),
        open_relay=open_relay,
        inbound_total=inbound_total,
        inbound_per_day=inbound_total / max(info.horizon_days, 1e-9),
        drop_shares={
            reason: dropped.get(reason, 0) / inbound_total
            for reason in DropReason
        },
        accepted=accepted,
        white=white,
        black=black,
        gray=gray,
        filter_drops=dict(filter_drops),
        challenges_sent=challenges_sent,
        challenges_delivered=delivered,
        challenges_bounced_nonexistent=bounced_nonexistent,
        challenges_bounced_blacklisted=bounced_blacklisted,
        challenges_expired=expired,
        captchas_solved=solved,
        released_captcha=released.get(ReleaseMechanism.CAPTCHA, 0),
        released_digest=released.get(ReleaseMechanism.DIGEST, 0),
        mean_digest_size=(
            sum(digest_sizes) / len(digest_sizes) if digest_sizes else 0.0
        ),
        listed_days_by_ip={ip: len(days) for ip, days in listed_days.items()},
    )


def build_table(profile: CompanyProfile) -> TextTable:
    table = TextTable(
        headers=["quantity", "value"],
        title=(
            f"Installation report — {profile.company_id} "
            f"({'open relay' if profile.open_relay else 'closed relay'}, "
            f"{profile.users} protected users)"
        ),
    )
    table.add_row("inbound messages", profile.inbound_total)
    table.add_row("inbound per day", f"{profile.inbound_per_day:,.0f}")
    table.add_row(
        "dropped at MTA",
        f"{100.0 * sum(profile.drop_shares.values()):.1f}%",
    )
    table.add_row("reached dispatcher", profile.accepted)
    table.add_row(
        "white / black / gray",
        f"{profile.white} / {profile.black} / {profile.gray}",
    )
    for name, count in sorted(profile.filter_drops.items()):
        table.add_row(f"gray dropped by {name}", count)
    table.add_row("challenges sent", profile.challenges_sent)
    table.add_row(
        "reflection ratio", f"{100.0 * profile.reflection:.1f}%"
    )
    table.add_row(
        "challenge fates (deliv/550/554/expired)",
        f"{profile.challenges_delivered} / "
        f"{profile.challenges_bounced_nonexistent} / "
        f"{profile.challenges_bounced_blacklisted} / "
        f"{profile.challenges_expired}",
    )
    table.add_row(
        "CAPTCHAs solved",
        f"{profile.captchas_solved} ({100.0 * profile.solved_share:.1f}% of sent)",
    )
    table.add_row(
        "released to inbox (captcha/digest)",
        f"{profile.released_captcha} / {profile.released_digest}",
    )
    table.add_row("mean digest size", f"{profile.mean_digest_size:.1f}")
    if profile.listed_days_by_ip:
        for ip, days in sorted(profile.listed_days_by_ip.items()):
            table.add_row(f"server {ip} blacklisted", f"{days} days")
    else:
        table.add_row("blacklisting", "never listed")
    return table


def render(
    store: LogStore, info: DeploymentInfo, company_id: str
) -> str:
    return build_table(compute(store, info, company_id)).render()


def render_all(
    store: LogStore, info: DeploymentInfo, limit: Optional[int] = None
) -> str:
    """Profiles for every company (or the *limit* largest by traffic)."""
    volumes: Counter = Counter(r.company_id for r in store.mta)
    ordered = [company for company, _ in volumes.most_common(limit)]
    return "\n\n".join(render(store, info, company) for company in ordered)
