"""Per-company drill-down: one installation's complete profile.

The paper reports fleet-wide aggregates; an administrator of a single
installation wants the same quantities for *their* server: the message
flow, the challenge fates, the CAPTCHA statistics, digest burden, and the
blacklisting exposure of their outbound IPs. This report assembles all of
it from the shared logs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.core.mta_in import DropReason
from repro.core.spools import ReleaseMechanism
from repro.util.render import TextTable
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class CompanyProfile:
    company_id: str
    users: int
    open_relay: bool
    inbound_total: int
    inbound_per_day: float
    drop_shares: Mapping[DropReason, float]
    accepted: int
    white: int
    black: int
    gray: int
    filter_drops: Mapping[str, int]
    challenges_sent: int
    challenges_delivered: int
    challenges_bounced_nonexistent: int
    challenges_bounced_blacklisted: int
    challenges_expired: int
    captchas_solved: int
    released_captcha: int
    released_digest: int
    mean_digest_size: float
    listed_days_by_ip: Mapping[str, int]

    @property
    def reflection(self) -> float:
        return safe_ratio(self.challenges_sent, self.accepted)

    @property
    def white_share(self) -> float:
        return safe_ratio(self.white, self.accepted)

    @property
    def solved_share(self) -> float:
        return safe_ratio(self.captchas_solved, self.challenges_sent)


def compute(
    store: LogStore, info: DeploymentInfo, company_id: str
) -> CompanyProfile:
    """Build one company's profile from the shared logs.

    Raises ``KeyError`` when the company never appears in the MTA logs.
    """
    index = store.index()
    mta = index.mta.per_company.get(company_id)
    if mta is None or mta.total == 0:
        raise KeyError(f"no traffic recorded for company {company_id!r}")
    inbound_total = mta.total
    dropped = mta.drops
    open_relay = mta.open_relay

    dispatch = index.dispatch.per_company.get(company_id)
    if dispatch is not None:
        white, black, gray = dispatch.white, dispatch.black, dispatch.gray
        filter_drops = dispatch.filter_drops
    else:
        white = black = gray = 0
        filter_drops = Counter()

    challenges_sent = index.challenges.per_company.get(company_id, 0)
    server_ips = index.challenges.server_ips_by_company.get(company_id, set())

    outcomes = index.outcomes.per_company.get(company_id)
    if outcomes is not None:
        delivered = outcomes.delivered
        expired = outcomes.expired
        bounced_nonexistent = outcomes.bounced_nonexistent
        bounced_blacklisted = outcomes.bounced_blacklisted
    else:
        delivered = bounced_nonexistent = bounced_blacklisted = expired = 0

    solved = index.web.solves_per_company.get(company_id, 0)
    released = index.releases.per_company.get(company_id, Counter())
    digest_sum, digest_count = index.digests.per_company.get(
        company_id, (0, 0)
    )
    listed_days = {
        ip: days
        for ip, days in index.probes.listed_days_by_ip.items()
        if ip in server_ips
    }

    accepted = inbound_total - sum(dropped.values())
    return CompanyProfile(
        company_id=company_id,
        users=info.users_per_company.get(company_id, 0),
        open_relay=open_relay,
        inbound_total=inbound_total,
        inbound_per_day=inbound_total / max(info.horizon_days, 1e-9),
        drop_shares={
            reason: dropped.get(reason, 0) / inbound_total
            for reason in DropReason
        },
        accepted=accepted,
        white=white,
        black=black,
        gray=gray,
        filter_drops=dict(filter_drops),
        challenges_sent=challenges_sent,
        challenges_delivered=delivered,
        challenges_bounced_nonexistent=bounced_nonexistent,
        challenges_bounced_blacklisted=bounced_blacklisted,
        challenges_expired=expired,
        captchas_solved=solved,
        released_captcha=released.get(ReleaseMechanism.CAPTCHA, 0),
        released_digest=released.get(ReleaseMechanism.DIGEST, 0),
        mean_digest_size=(
            digest_sum / digest_count if digest_count else 0.0
        ),
        listed_days_by_ip={ip: len(days) for ip, days in listed_days.items()},
    )


def build_table(profile: CompanyProfile) -> TextTable:
    table = TextTable(
        headers=["quantity", "value"],
        title=(
            f"Installation report — {profile.company_id} "
            f"({'open relay' if profile.open_relay else 'closed relay'}, "
            f"{profile.users} protected users)"
        ),
    )
    table.add_row("inbound messages", profile.inbound_total)
    table.add_row("inbound per day", f"{profile.inbound_per_day:,.0f}")
    table.add_row(
        "dropped at MTA",
        f"{100.0 * sum(profile.drop_shares.values()):.1f}%",
    )
    table.add_row("reached dispatcher", profile.accepted)
    table.add_row(
        "white / black / gray",
        f"{profile.white} / {profile.black} / {profile.gray}",
    )
    for name, count in sorted(profile.filter_drops.items()):
        table.add_row(f"gray dropped by {name}", count)
    table.add_row("challenges sent", profile.challenges_sent)
    table.add_row(
        "reflection ratio", f"{100.0 * profile.reflection:.1f}%"
    )
    table.add_row(
        "challenge fates (deliv/550/554/expired)",
        f"{profile.challenges_delivered} / "
        f"{profile.challenges_bounced_nonexistent} / "
        f"{profile.challenges_bounced_blacklisted} / "
        f"{profile.challenges_expired}",
    )
    table.add_row(
        "CAPTCHAs solved",
        f"{profile.captchas_solved} ({100.0 * profile.solved_share:.1f}% of sent)",
    )
    table.add_row(
        "released to inbox (captcha/digest)",
        f"{profile.released_captcha} / {profile.released_digest}",
    )
    table.add_row("mean digest size", f"{profile.mean_digest_size:.1f}")
    if profile.listed_days_by_ip:
        for ip, days in sorted(profile.listed_days_by_ip.items()):
            table.add_row(f"server {ip} blacklisted", f"{days} days")
    else:
        table.add_row("blacklisting", "never listed")
    return table


def render(
    store: LogStore, info: DeploymentInfo, company_id: str
) -> str:
    return build_table(compute(store, info, company_id)).render()


def render_all(
    store: LogStore, info: DeploymentInfo, limit: Optional[int] = None
) -> str:
    """Profiles for every company (or the *limit* largest by traffic)."""
    volumes = store.index().mta.company_volumes()
    ordered = [company for company, _ in volumes.most_common(limit)]
    return "\n\n".join(render(store, info, company) for company in ordered)
