"""Table 1: general statistics of the collected data.

Absolute counts obviously scale with the simulated volume, so the
comparison column reports the paper's value *normalised to our message
volume* where a meaningful normalisation exists (shares of total traffic),
and raw measured counts otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.core.spools import ReleaseMechanism
from repro.util.render import TextTable

#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    "companies": 47,
    "open_relays": 13,
    "users": 19_426,
    "total_incoming": 90_368_573,
    "gray": 11_590_532,
    "black": 349_697,
    "white": 2_737_978,
    "dropped_at_mta": 75_690_366,
    "challenges_sent": 4_299_610,
    "whitelisted_from_digest": 55_850,
    "solved_captchas": 150_809,
    "dropped_reverse_dns": 3_526_506,
    "dropped_rbl": 4_973_755,
    "dropped_antivirus": 267_630,
    "emails_per_day": 797_679,
    "white_per_day": 31_920,
    "challenges_per_day": 53_764,
    "analyzed_days": 5_249,
}


@dataclass(frozen=True)
class GeneralStats:
    companies: int
    open_relays: int
    users: int
    total_incoming: int
    gray: int
    black: int
    white: int
    dropped_at_mta: int
    challenges_sent: int
    whitelisted_from_digest: int
    solved_captchas: int
    dropped_reverse_dns: int
    dropped_rbl: int
    dropped_antivirus: int
    emails_per_day: float
    white_per_day: float
    challenges_per_day: float
    analyzed_days: float


def compute(store: LogStore, info: DeploymentInfo) -> GeneralStats:
    index = store.index()
    mta = index.mta
    dispatch = index.dispatch
    total = mta.total
    dropped = mta.dropped
    white, black, gray = dispatch.white, dispatch.black, dispatch.gray
    drops = {
        name: dispatch.filter_drops.get(name, 0)
        for name in ("reverse_dns", "rbl", "antivirus")
    }
    challenges = len(store.challenges)
    solved = index.web.solve_total
    digest_whitelisted = index.releases.mechanism_counts.get(
        ReleaseMechanism.DIGEST, 0
    )
    days = info.horizon_days
    return GeneralStats(
        companies=info.n_companies,
        open_relays=info.n_open_relays,
        users=info.total_users,
        total_incoming=total,
        gray=gray,
        black=black,
        white=white,
        dropped_at_mta=dropped,
        challenges_sent=challenges,
        whitelisted_from_digest=digest_whitelisted,
        solved_captchas=solved,
        dropped_reverse_dns=drops["reverse_dns"],
        dropped_rbl=drops["rbl"],
        dropped_antivirus=drops["antivirus"],
        emails_per_day=total / days,
        white_per_day=white / days,
        challenges_per_day=challenges / days,
        analyzed_days=days * info.n_companies,
    )


def build_table(stats: GeneralStats) -> TextTable:
    """Render Table 1 with per-mille-of-traffic comparison columns."""
    table = TextTable(
        headers=["quantity", "paper", "paper (share)", "measured", "measured (share)"],
        title="Table 1 — general statistics of the collected data",
    )
    paper_total = PAPER_TABLE1["total_incoming"]
    rows = [
        ("Number of companies", "companies", stats.companies, False),
        ("Open relays", "open_relays", stats.open_relays, False),
        ("Users protected by CR", "users", stats.users, False),
        ("Total incoming emails", "total_incoming", stats.total_incoming, False),
        ("Messages in the gray spool", "gray", stats.gray, True),
        ("Messages in the black spool", "black", stats.black, True),
        ("Messages in the white spool", "white", stats.white, True),
        ("Total dropped at MTA", "dropped_at_mta", stats.dropped_at_mta, True),
        ("Challenges sent", "challenges_sent", stats.challenges_sent, True),
        (
            "Emails whitelisted from digest",
            "whitelisted_from_digest",
            stats.whitelisted_from_digest,
            True,
        ),
        ("Solved CAPTCHAs", "solved_captchas", stats.solved_captchas, True),
        (
            "Dropped by reverse DNS filter",
            "dropped_reverse_dns",
            stats.dropped_reverse_dns,
            True,
        ),
        ("Dropped by RBL filter", "dropped_rbl", stats.dropped_rbl, True),
        (
            "Dropped by antivirus filter",
            "dropped_antivirus",
            stats.dropped_antivirus,
            True,
        ),
    ]
    for label, key, measured, share in rows:
        paper_value = PAPER_TABLE1[key]
        paper_share = (
            f"{1000.0 * paper_value / paper_total:.2f}/1000" if share else "-"
        )
        measured_share = (
            f"{1000.0 * measured / max(stats.total_incoming, 1):.2f}/1000"
            if share
            else "-"
        )
        table.add_row(label, paper_value, paper_share, measured, measured_share)
    table.add_row(
        "Emails (per day)",
        PAPER_TABLE1["emails_per_day"],
        "-",
        round(stats.emails_per_day),
        "-",
    )
    table.add_row(
        "Challenges sent (per day)",
        PAPER_TABLE1["challenges_per_day"],
        "-",
        round(stats.challenges_per_day),
        "-",
    )
    table.add_row(
        "Total number of days",
        PAPER_TABLE1["analyzed_days"],
        "-",
        round(stats.analyzed_days),
        "-",
    )
    return table


def render(store: LogStore, info: DeploymentInfo) -> str:
    return build_table(compute(store, info)).render()
