"""§6: the paper's summary figures, re-derived from our logs.

One challenge per ~21 received emails; a traffic increase under 1 %; ~5 %
of challenges solved; whitelist steady state (94 % of inbox mail from
whitelisted senders, 0.3 new entries/user/day); delivery delay affecting
~4.3 % of incoming inbox mail with half under 30 minutes.

All inputs come from the per-figure compute() helpers, which themselves
read the shared :class:`~repro.analysis.index.AnalysisIndex`, so this
summary costs no extra passes over the logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import churn, delays, reflection
from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable


@dataclass(frozen=True)
class DiscussionStats:
    emails_per_challenge: float
    traffic_increase: float
    challenges_solved_share: float
    inbox_instant_share: float
    inbox_quarantined_share: float
    quarantined_under_30min: float
    additions_per_user_day: float


def compute(store: LogStore, info: DeploymentInfo) -> DiscussionStats:
    refl = reflection.compute(store)
    delay = delays.compute(store)
    churn_stats = churn.compute(store, info)
    return DiscussionStats(
        emails_per_challenge=refl.emails_per_challenge,
        traffic_increase=refl.rt_mta,
        challenges_solved_share=refl.solved / max(refl.challenges, 1),
        inbox_instant_share=delay.instant_share,
        inbox_quarantined_share=delay.quarantined_share,
        quarantined_under_30min=delay.released_under_30min_share,
        additions_per_user_day=churn_stats.additions_per_user_day,
    )


def build_table(stats: DiscussionStats) -> ComparisonTable:
    table = ComparisonTable("Sec. 6 — discussion summary figures")
    table.add("incoming emails per challenge", 21.0, stats.emails_per_challenge)
    table.add("email traffic increase", 0.62, 100.0 * stats.traffic_increase, "%")
    table.add(
        "challenges solved (Sec. 6: 'about 5%')",
        5.0,
        100.0 * stats.challenges_solved_share,
        "%",
    )
    table.add(
        "inbox mail from whitelisted senders",
        94.0,
        100.0 * stats.inbox_instant_share,
        "%",
    )
    table.add(
        "inbox mail quarantined first (Sec. 6: 4.3-6.1%)",
        6.1,
        100.0 * stats.inbox_quarantined_share,
        "%",
    )
    table.add(
        "quarantined mail released in <30 min",
        50.0,
        100.0 * stats.quarantined_under_30min,
        "%",
    )
    table.add(
        "new whitelist entries per user per day",
        0.3,
        stats.additions_per_user_day,
    )
    return table


def render(store: LogStore, info: DeploymentInfo) -> str:
    return build_table(compute(store, info)).render()
