"""Figure 6 / §4.1: spam-campaign clustering and spurious deliveries.

The paper clusters gray-spool messages by exact subject (at least 10 words
long, clusters of at least 50 messages) and splits the clusters by sender
similarity:

* high sender similarity (few senders / near-identical addresses like
  ``dept-x.p@scn-1.com``) — newsletters and marketing campaigns; some have
  solved-challenge rates as high as 97 %;
* low sender similarity (many senders across many domains) — botnet spam;
  ~31 % of their challenges bounce for non-existent recipients and at most
  one or two CAPTCHAs per cluster get solved.

Only 28 of 1,775 clusters contained a solved challenge, and the solved ones
in low-similarity clusters are the backscatter mechanism behind roughly one
spurious spam delivery per 10,000 challenges.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.net.smtp import BounceReason
from repro.util.render import ComparisonTable, TextTable
from repro.util.stats import safe_ratio

#: A cluster counts as "high sender similarity" when this share of its
#: messages comes from one sender domain (the paper's qualitative split).
HIGH_SIMILARITY_DOMAIN_SHARE = 0.8
MIN_SUBJECT_WORDS = 10


@dataclass(frozen=True)
class Cluster:
    subject: str
    size: int
    distinct_senders: int
    distinct_domains: int
    dominant_domain_share: float
    challenges: int
    solved: int
    bounced_nonexistent: int

    @property
    def high_similarity(self) -> bool:
        return self.dominant_domain_share >= HIGH_SIMILARITY_DOMAIN_SHARE

    @property
    def solve_rate(self) -> float:
        return safe_ratio(self.solved, self.challenges)

    @property
    def bounce_rate(self) -> float:
        return safe_ratio(self.bounced_nonexistent, self.challenges)


@dataclass(frozen=True)
class ClusteringStats:
    clusters: Sequence[Cluster]
    spurious_deliveries: int
    challenges_sent: int

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def clusters_with_solved(self) -> int:
        return sum(1 for c in self.clusters if c.solved > 0)

    @property
    def high_similarity_clusters(self) -> Sequence[Cluster]:
        return [c for c in self.clusters if c.high_similarity]

    @property
    def low_similarity_clusters(self) -> Sequence[Cluster]:
        return [c for c in self.clusters if not c.high_similarity]

    @property
    def spurious_rate(self) -> float:
        """Spurious spam deliveries per challenge sent (paper ~1e-4)."""
        return safe_ratio(self.spurious_deliveries, self.challenges_sent)


def compute(store: LogStore, info: DeploymentInfo) -> ClusteringStats:
    """Cluster quarantined gray messages by exact subject."""
    min_size = info.min_cluster_size
    index = store.index()

    # Quarantined messages (the gray spool: gray and not filter-dropped)
    # arrive pre-grouped by subject; the word-count filter applies per
    # subject, so filtering groups here matches filtering records.
    by_subject = index.dispatch.quarantined_by_subject
    solved_ids = index.web.solved_ids
    outcome_by_id = index.outcomes.by_challenge

    clusters = []
    for subject, records in by_subject.items():
        if len(subject.split()) < MIN_SUBJECT_WORDS:
            continue
        if len(records) < min_size:
            continue
        senders = {r.env_from for r in records}
        domain_counts = Counter(
            r.env_from.rsplit("@", 1)[-1] for r in records
        )
        dominant_share = domain_counts.most_common(1)[0][1] / len(records)
        challenge_ids = {
            (r.company_id, r.challenge_id)
            for r in records
            if r.challenge_id is not None and r.challenge_created
        }
        solved = len(challenge_ids & solved_ids)
        bounced = 0
        for key in challenge_ids:
            outcome = outcome_by_id.get(key)
            if (
                outcome is not None
                and outcome.bounce_reason is BounceReason.NONEXISTENT_RECIPIENT
            ):
                bounced += 1
        clusters.append(
            Cluster(
                subject=subject,
                size=len(records),
                distinct_senders=len(senders),
                distinct_domains=len(domain_counts),
                dominant_domain_share=dominant_share,
                challenges=len(challenge_ids),
                solved=solved,
                bounced_nonexistent=bounced,
            )
        )
    clusters.sort(key=lambda c: c.size, reverse=True)

    spurious = index.releases.captcha_spam
    return ClusteringStats(
        clusters=clusters,
        spurious_deliveries=spurious,
        challenges_sent=len(store.challenges),
    )


def build_table(stats: ClusteringStats, info: DeploymentInfo) -> ComparisonTable:
    table = ComparisonTable(
        "Fig. 6 / Sec. 4.1 — gray-spool subject clustering "
        f"(min cluster size {info.min_cluster_size} at this scale; paper used 50)"
    )
    table.add("clusters found (paper: 1775 at full scale)", None, stats.n_clusters)
    table.add("clusters with >=1 solved challenge (paper: 28/1775)", None,
              stats.clusters_with_solved)
    if stats.clusters:
        sizes = [c.size for c in stats.clusters]
        table.add("largest cluster size", None, max(sizes))
    high = stats.high_similarity_clusters
    low = stats.low_similarity_clusters
    table.add("high sender-similarity clusters", None, len(high))
    table.add("low sender-similarity clusters", None, len(low))
    solving_high = [c for c in high if c.solved > 0]
    if solving_high:
        table.add(
            "max solve rate in high-similarity clusters",
            97.0,
            100.0 * max(c.solve_rate for c in solving_high),
            "%",
        )
    if low:
        avg_bounce = sum(c.bounce_rate for c in low) / len(low)
        table.add(
            "avg non-existent bounce rate, low-similarity clusters",
            31.0,
            100.0 * avg_bounce,
            "%",
        )
        solving_low = [c for c in low if c.solved > 0]
        if solving_low:
            avg_solved = sum(c.solved for c in solving_low) / len(solving_low)
            table.add(
                "avg solved per solving low-similarity cluster (paper: 1-2)",
                1.5,
                avg_solved,
            )
    table.add(
        "spurious spam deliveries per 10k challenges",
        1.0,
        1e4 * stats.spurious_rate,
    )
    return table


def build_top_clusters_table(stats: ClusteringStats, top: int = 10) -> TextTable:
    table = TextTable(
        headers=["size", "senders", "domains", "similarity", "challenges",
                 "solved", "subject"],
        title=f"Fig. 6 — top {top} clusters",
    )
    for cluster in stats.clusters[:top]:
        table.add_row(
            cluster.size,
            cluster.distinct_senders,
            cluster.distinct_domains,
            "high" if cluster.high_similarity else "low",
            cluster.challenges,
            cluster.solved,
            cluster.subject[:48],
        )
    return table


def render(store: LogStore, info: DeploymentInfo) -> str:
    stats = compute(store, info)
    return "\n\n".join(
        [
            build_table(stats, info).render(),
            build_top_clusters_table(stats).render(),
        ]
    )
