"""Deployment metadata handed from the runner to the analyses.

Most analyses work purely from the :class:`~repro.analysis.store.LogStore`;
the few configuration-level facts the paper also reports (company count,
protected-user count, observation window) travel in this small record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class DeploymentInfo:
    """Static facts about the monitored deployment."""

    n_companies: int
    n_open_relays: int
    #: company_id -> number of protected users.
    users_per_company: Mapping[str, int]
    #: Observation window in days.
    horizon_days: float
    #: Fig. 6 minimum cluster size appropriate at this scale.
    min_cluster_size: int
    #: The run's per-user volume multiplier (informational; the churn
    #: streams deliberately do not scale with it — see the generator).
    volume_scale: float = 1.0

    @property
    def total_users(self) -> int:
        return sum(self.users_per_company.values())

    @property
    def effective_churn_days(self) -> float:
        """Days of whitelist churn observed. The user-driven churn streams
        (outbound mail to new addresses, manual imports) run at paper rates
        regardless of the volume scale, so the plain horizon is the right
        normaliser for Fig. 9's per-60-day bins."""
        return self.horizon_days

    @property
    def company_days(self) -> float:
        """Total analysed company-days (the paper's 5,249)."""
        return self.horizon_days * self.n_companies
