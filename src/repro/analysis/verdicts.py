"""Machine-checked pass/fail verdicts for attack scenarios.

A scenario's YAML declares assertions about the finished run ("the
CAPTCHA farm released at least N spam messages", "the victim's challenge
server spent at least D days blacklisted"); this module computes each
metric from the measurement store's ledger-grade aggregates and renders
the verdict table. Registered as experiment id ``verdicts``.

Metrics operate purely on the (merged, possibly loaded-from-disk) record
lists, never on live installations, so verdicts evaluate identically for
plain, sharded, cached, and persisted runs — and a check *evaluates*
(pass or fail) even when its metric computation trips: errors are
captured per check, never raised, so one bad check cannot take down a
smoke run.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Optional

from repro.analysis.store import LogStore
from repro.core.spools import Category, ReleaseMechanism
from repro.net.smtp import FinalStatus
from repro.util.simtime import DAY

OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class CheckResult:
    """One verdict check, evaluated."""

    name: str
    metric: str
    op: str
    value: float
    observed: float
    passed: bool
    #: Metric computation failure, if any (the check then counts as
    #: failed but the evaluation itself never raises).
    error: Optional[str] = None


@dataclass(frozen=True)
class ScenarioVerdict:
    """All of one scenario's checks, evaluated against one run."""

    scenario: str
    checks: tuple

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)


# -- record selection --------------------------------------------------------


def _dispatch_records(store: LogStore, check) -> list:
    """The scoped attack dispatch records: by campaign when the check
    names one, else every ``attack-*`` campaign; optionally by company."""
    records = []
    for record in store.dispatch:
        campaign = record.campaign_id or ""
        if check.campaign is not None:
            if campaign != check.campaign:
                continue
        elif not campaign.startswith("attack-"):
            continue
        if check.company_id is not None and record.company_id != check.company_id:
            continue
        records.append(record)
    return records


def _released_msg_ids(store: LogStore, mechanism=None) -> set:
    return {
        record.msg_id
        for record in store.releases
        if mechanism is None or record.mechanism is mechanism
    }


def _challenge_ids(store: LogStore, check) -> set:
    return {
        record.challenge_id
        for record in _dispatch_records(store, check)
        if record.challenge_created and record.challenge_id is not None
    }


def _listed_days(store: LogStore, ips: set) -> float:
    days = set()
    for probe in store.probes:
        if probe.listed and probe.ip in ips:
            days.add((probe.ip, int(probe.t // DAY)))
    return float(len(days))


# -- metrics -----------------------------------------------------------------


def _m_messages(result, check) -> float:
    return float(len(_dispatch_records(result.store, check)))


def _m_challenges(result, check) -> float:
    records = _dispatch_records(result.store, check)
    return float(sum(1 for r in records if r.challenge_created))


def _m_inbox(result, check) -> float:
    records = _dispatch_records(result.store, check)
    return float(sum(1 for r in records if r.category is Category.WHITE))


def _m_inbox_rate(result, check) -> float:
    records = _dispatch_records(result.store, check)
    if not records:
        return 0.0
    inbox = sum(1 for r in records if r.category is Category.WHITE)
    return inbox / len(records)


def _m_quarantined(result, check) -> float:
    records = _dispatch_records(result.store, check)
    return float(
        sum(
            1
            for r in records
            if r.category is Category.GRAY and r.filter_drop is None
        )
    )


def _m_filtered(result, check) -> float:
    records = _dispatch_records(result.store, check)
    return float(sum(1 for r in records if r.filter_drop is not None))


def _m_released(result, check) -> float:
    released = _released_msg_ids(result.store)
    records = _dispatch_records(result.store, check)
    return float(sum(1 for r in records if r.msg_id in released))


def _m_captcha_released(result, check) -> float:
    released = _released_msg_ids(result.store, ReleaseMechanism.CAPTCHA)
    records = _dispatch_records(result.store, check)
    return float(sum(1 for r in records if r.msg_id in released))


def _m_release_rate(result, check) -> float:
    quarantined = _m_quarantined(result, check)
    if not quarantined:
        return 0.0
    return _m_released(result, check) / quarantined


def _m_challenge_bounced(result, check) -> float:
    # Distinct challenges, not outcome records: a challenge retried
    # across several MX attempts logs one outcome per attempt.
    ids = _challenge_ids(result.store, check)
    bounced = {
        outcome.challenge_id
        for outcome in result.store.challenge_outcomes
        if outcome.challenge_id in ids
        and outcome.status is FinalStatus.BOUNCED
    }
    return float(len(bounced))


def _m_challenge_bounce_rate(result, check) -> float:
    ids = _challenge_ids(result.store, check)
    if not ids:
        return 0.0
    return _m_challenge_bounced(result, check) / len(ids)


def _m_victim_listed_days(result, check) -> float:
    """Blacklisted IP-days of the scoped company's challenge servers
    (every company when the check names none)."""
    store = result.store
    ips = {
        record.server_ip
        for record in store.challenges
        if check.company_id is None or record.company_id == check.company_id
    }
    return _listed_days(store, ips)


#: metric name (as written in scenario YAML) -> function(result, check).
METRICS = {
    "attack_messages": _m_messages,
    "attack_challenges": _m_challenges,
    "attack_inbox": _m_inbox,
    "attack_inbox_rate": _m_inbox_rate,
    "attack_quarantined": _m_quarantined,
    "attack_filtered": _m_filtered,
    "attack_released": _m_released,
    "attack_captcha_released": _m_captcha_released,
    "attack_release_rate": _m_release_rate,
    "attack_challenge_bounced": _m_challenge_bounced,
    "attack_challenge_bounce_rate": _m_challenge_bounce_rate,
    "victim_listed_days": _m_victim_listed_days,
}


def evaluate(result, spec) -> ScenarioVerdict:
    """Evaluate every check of *spec* against *result*; never raises."""
    checks = []
    for check in spec.verdicts:
        try:
            metric = METRICS[check.metric]
            observed = float(metric(result, check))
            passed = bool(OPS[check.op](observed, check.value))
            error = None
        except Exception as exc:  # pragma: no cover - defensive
            observed = float("nan")
            passed = False
            error = f"{type(exc).__name__}: {exc}"
        checks.append(
            CheckResult(
                name=check.name,
                metric=check.metric,
                op=check.op,
                value=check.value,
                observed=observed,
                passed=passed,
                error=error,
            )
        )
    return ScenarioVerdict(scenario=spec.name, checks=tuple(checks))


# -- rendering ---------------------------------------------------------------


def render(verdict: ScenarioVerdict, description: str = "") -> str:
    lines = [f"Scenario verdict — {verdict.scenario}"]
    if description:
        lines.append(f"  {description}")
    lines.append("")
    lines.append(
        f"  {'check':<28} {'metric':<28} {'observed':>10}  "
        f"{'expected':<12} verdict"
    )
    for check in verdict.checks:
        expected = f"{check.op} {check.value:g}"
        status = "PASS" if check.passed else "FAIL"
        lines.append(
            f"  {check.name:<28} {check.metric:<28} "
            f"{check.observed:>10.2f}  {expected:<12} {status}"
        )
        if check.error:
            lines.append(f"    error: {check.error}")
    n_passed = sum(1 for check in verdict.checks if check.passed)
    overall = "PASS" if verdict.passed else "FAIL"
    lines.append("")
    lines.append(
        f"VERDICT: {overall} ({n_passed}/{len(verdict.checks)} checks)"
    )
    return "\n".join(lines)


def render_result(result) -> str:
    """Experiment-registry adapter: verdict table for a scenario run, a
    fixed notice otherwise (so scenario-free reports stay byte-stable)."""
    spec = getattr(result, "scenario", None)
    if spec is None:
        return (
            "Scenario verdicts\n"
            "  no scenario attached to this run; run with "
            "--scenario <name> (see `repro scenarios` for the pack)"
        )
    if not spec.verdicts:
        return (
            f"Scenario verdict — {spec.name}\n"
            "  scenario declares no verdict checks"
        )
    return render(evaluate(result, spec), spec.description)
