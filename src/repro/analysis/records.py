"""Typed log records — the schema of our simulated measurement database.

Each record type corresponds to one log source the paper collected:

* :class:`MtaRecord` — MTA-IN logs (accept/drop + reason);
* :class:`DispatchRecord` — CR-engine logs (spool category, filter drops,
  challenge linkage, plus header-derived metadata: subject, size, SPF);
* :class:`ChallengeRecord` / :class:`ChallengeOutcomeRecord` — challenge
  MTA logs (sent challenges and their delivery status);
* :class:`WebAccessRecord` — the challenge web server's access logs;
* :class:`ReleaseRecord` — gray→inbox releases (delay measurements);
* :class:`WhitelistChangeRecord` — whitelist modifications (churn);
* :class:`DigestRecord` — daily digest sizes;
* :class:`ExpiryRecord` — quarantine expirations;
* :class:`OutboundMailRecord` — outgoing user mail;
* :class:`~repro.blacklistd.monitor.ProbeObservation` — blacklist probes.

Ground-truth fields (``kind``, ``sender_class``, ``campaign_id``) appear on
``DispatchRecord`` for *evaluation* analyses only — the system itself never
reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.challenge import WebAction
from repro.core.message import MessageKind, SenderClass
from repro.core.mta_in import DropReason
from repro.core.filters.spf import SpfResult
from repro.core.spools import Category, ReleaseMechanism
from repro.core.whitelist import WhitelistSource
from repro.net.smtp import BounceReason, FinalStatus


@dataclass
class MtaRecord:
    """One message's treatment at MTA-IN."""

    __slots__ = ("company_id", "t", "msg_id", "drop_reason", "open_relay", "size")

    company_id: str
    t: float
    msg_id: int
    #: ``None`` when the message was accepted.
    drop_reason: Optional[DropReason]
    open_relay: bool
    size: int

    @property
    def accepted(self) -> bool:
        return self.drop_reason is None


@dataclass
class DispatchRecord:
    """One accepted message's treatment at the CR dispatcher."""

    __slots__ = (
        "company_id",
        "t",
        "msg_id",
        "user",
        "category",
        "filter_drop",
        "challenge_id",
        "challenge_created",
        "env_from",
        "subject",
        "size",
        "spf",
        "kind",
        "sender_class",
        "campaign_id",
        "open_relay",
        "protected_user",
    )

    company_id: str
    t: float
    msg_id: int
    user: str
    category: Category
    #: Name of the filter that dropped a gray message, or ``None``.
    filter_drop: Optional[str]
    #: Challenge this message is attached to (gray, unfiltered only).
    challenge_id: Optional[int]
    #: True when this message triggered a new challenge email; False when it
    #: attached to a pending one (suppressed duplicate).
    challenge_created: bool
    env_from: str
    subject: str
    size: int
    #: Offline SPF evaluation of gray messages (Fig. 12); NONE for others.
    spf: SpfResult
    kind: MessageKind
    sender_class: SenderClass
    campaign_id: Optional[str]
    open_relay: bool
    protected_user: bool


@dataclass
class ChallengeRecord:
    """One challenge email handed to the challenge MTA."""

    __slots__ = (
        "company_id",
        "challenge_id",
        "t",
        "user",
        "sender",
        "server_ip",
        "size",
    )

    company_id: str
    challenge_id: int
    t: float
    user: str
    sender: str
    server_ip: str
    size: int


@dataclass
class ChallengeOutcomeRecord:
    """Final delivery status of one challenge email."""

    __slots__ = (
        "company_id",
        "challenge_id",
        "status",
        "bounce_reason",
        "attempts",
        "t_final",
    )

    company_id: str
    challenge_id: int
    status: FinalStatus
    bounce_reason: Optional[BounceReason]
    attempts: int
    t_final: float


@dataclass
class WebAccessRecord:
    """One hit in the challenge web server's access log."""

    __slots__ = ("company_id", "challenge_id", "t", "action", "success")

    company_id: str
    challenge_id: int
    t: float
    action: WebAction
    #: For ATTEMPT records: whether the CAPTCHA answer was correct.
    success: bool


@dataclass
class ReleaseRecord:
    """A gray message released to the user's inbox."""

    __slots__ = (
        "company_id",
        "user",
        "msg_id",
        "t_arrival",
        "t_release",
        "mechanism",
        "kind",
    )

    company_id: str
    user: str
    msg_id: int
    t_arrival: float
    t_release: float
    mechanism: ReleaseMechanism
    kind: MessageKind

    @property
    def delay(self) -> float:
        return self.t_release - self.t_arrival


@dataclass
class WhitelistChangeRecord:
    """One whitelist addition (the churn analyses of §4.3 / Fig. 9)."""

    __slots__ = ("company_id", "user", "address", "t", "source")

    company_id: str
    user: str
    address: str
    t: float
    source: WhitelistSource


@dataclass
class DigestRecord:
    """Daily digest size of one user (Fig. 10)."""

    __slots__ = ("company_id", "user", "day", "pending_count")

    company_id: str
    user: str
    day: int
    pending_count: int


@dataclass
class ExpiryRecord:
    """A gray message dropped after the 30-day quarantine."""

    __slots__ = ("company_id", "user", "msg_id", "t")

    company_id: str
    user: str
    msg_id: int
    t: float


@dataclass
class OutboundMailRecord:
    """Outgoing mail sent by a protected user."""

    __slots__ = ("company_id", "t", "user", "rcpt", "size")

    company_id: str
    t: float
    user: str
    rcpt: str
    size: int


@dataclass
class CrashRecord:
    """One injected component crash and what its recovery did."""

    __slots__ = (
        "company_id",
        "t",
        "component",
        "downtime",
        "redriven",
        "lost",
        "journal_ok",
    )

    company_id: str
    t: float
    #: Which component went down (see :data:`repro.net.crashes.COMPONENTS`).
    component: str
    #: Seconds until the supervisor restarted it.
    downtime: float
    #: Outbound messages re-driven from the write-ahead journal.
    redriven: int
    #: Messages lost (nonzero only under the ``lossy`` durability model).
    lost: int
    #: Whether the rebuilt volatile indexes matched the pre-crash state.
    journal_ok: bool
