"""The aggregation store — our stand-in for the paper's Postgres database.

A :class:`LogStore` holds every log record the simulated deployment emits,
in insertion (= time) order, plus a few lazily-built indices the analyses
share. It is append-only during a run; analyses treat it as read-only.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.analysis.records import (
    ChallengeOutcomeRecord,
    ChallengeRecord,
    DigestRecord,
    DispatchRecord,
    ExpiryRecord,
    MtaRecord,
    OutboundMailRecord,
    ReleaseRecord,
    WebAccessRecord,
    WhitelistChangeRecord,
)
from repro.blacklistd.monitor import ProbeObservation


class LogStore:
    """Typed, append-only collection of all measurement logs."""

    def __init__(self) -> None:
        self.mta: list[MtaRecord] = []
        self.dispatch: list[DispatchRecord] = []
        self.challenges: list[ChallengeRecord] = []
        self.challenge_outcomes: list[ChallengeOutcomeRecord] = []
        self.web_access: list[WebAccessRecord] = []
        self.releases: list[ReleaseRecord] = []
        self.whitelist_changes: list[WhitelistChangeRecord] = []
        self.digests: list[DigestRecord] = []
        self.expiries: list[ExpiryRecord] = []
        self.outbound: list[OutboundMailRecord] = []
        self.probes: list[ProbeObservation] = []
        self._outcome_by_challenge: Optional[
            dict[tuple[str, int], ChallengeOutcomeRecord]
        ] = None
        self._web_by_challenge: Optional[
            dict[tuple[str, int], list[WebAccessRecord]]
        ] = None

    # -- append helpers (invalidate indices) ----------------------------

    def add_mta(self, record: MtaRecord) -> None:
        self.mta.append(record)

    def add_dispatch(self, record: DispatchRecord) -> None:
        self.dispatch.append(record)

    def add_challenge(self, record: ChallengeRecord) -> None:
        self.challenges.append(record)

    def add_challenge_outcome(self, record: ChallengeOutcomeRecord) -> None:
        self.challenge_outcomes.append(record)
        self._outcome_by_challenge = None

    def add_web_access(self, record: WebAccessRecord) -> None:
        self.web_access.append(record)
        self._web_by_challenge = None

    def add_release(self, record: ReleaseRecord) -> None:
        self.releases.append(record)

    def add_whitelist_change(self, record: WhitelistChangeRecord) -> None:
        self.whitelist_changes.append(record)

    def add_digest(self, record: DigestRecord) -> None:
        self.digests.append(record)

    def add_expiry(self, record: ExpiryRecord) -> None:
        self.expiries.append(record)

    def add_outbound(self, record: OutboundMailRecord) -> None:
        self.outbound.append(record)

    def add_probe(self, record: ProbeObservation) -> None:
        self.probes.append(record)

    def drop_indices(self) -> None:
        """Discard the lazily-built correlation indices.

        They are pure caches over the record lists, so dropping them never
        loses data; the parallel runner calls this before pickling a store
        so worker→parent payloads carry records only.
        """
        self._outcome_by_challenge = None
        self._web_by_challenge = None

    # -- correlation indices --------------------------------------------

    def outcome_of(
        self, company_id: str, challenge_id: int
    ) -> Optional[ChallengeOutcomeRecord]:
        """Delivery outcome of a challenge, or None while still in flight."""
        if self._outcome_by_challenge is None:
            self._outcome_by_challenge = {
                (r.company_id, r.challenge_id): r for r in self.challenge_outcomes
            }
        return self._outcome_by_challenge.get((company_id, challenge_id))

    def web_events_of(
        self, company_id: str, challenge_id: int
    ) -> list[WebAccessRecord]:
        if self._web_by_challenge is None:
            index: dict[tuple[str, int], list[WebAccessRecord]] = defaultdict(list)
            for record in self.web_access:
                index[(record.company_id, record.challenge_id)].append(record)
            self._web_by_challenge = dict(index)
        return self._web_by_challenge.get((company_id, challenge_id), [])

    def company_ids(self) -> list[str]:
        """All companies that appear in the MTA logs, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.mta:
            if record.company_id not in seen:
                seen[record.company_id] = None
        return list(seen)

    def summary_counts(self) -> dict[str, int]:
        """Record counts per log type (debugging / sanity checks)."""
        return {
            "mta": len(self.mta),
            "dispatch": len(self.dispatch),
            "challenges": len(self.challenges),
            "challenge_outcomes": len(self.challenge_outcomes),
            "web_access": len(self.web_access),
            "releases": len(self.releases),
            "whitelist_changes": len(self.whitelist_changes),
            "digests": len(self.digests),
            "expiries": len(self.expiries),
            "outbound": len(self.outbound),
            "probes": len(self.probes),
        }
