"""The aggregation store — our stand-in for the paper's Postgres database.

A :class:`LogStore` holds every log record the simulated deployment emits,
in insertion (= time) order, plus a shared, lazily-materialised
:class:`~repro.analysis.index.AnalysisIndex` over them. It is append-only
during a run; analyses treat it as read-only.

Every append helper bumps its table's version counter, so aggregates the
index built over that table are invalidated precisely — an append to
``releases`` never throws away the expensive MTA pass, and a stale
aggregate is never served after any append.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from typing import Iterator, Optional

from repro.analysis.index import AnalysisIndex
from repro.analysis.records import (
    ChallengeOutcomeRecord,
    ChallengeRecord,
    CrashRecord,
    DigestRecord,
    DispatchRecord,
    ExpiryRecord,
    MtaRecord,
    OutboundMailRecord,
    ReleaseRecord,
    WebAccessRecord,
    WhitelistChangeRecord,
)
from repro.blacklistd.monitor import ProbeObservation

#: Names of the record-list attributes, in schema order.
TABLES = (
    "mta",
    "dispatch",
    "challenges",
    "challenge_outcomes",
    "web_access",
    "releases",
    "whitelist_changes",
    "digests",
    "expiries",
    "outbound",
    "probes",
    "crashes",
)


#: Marker tag for columnar-packed tables inside a pickled store.
_COLUMNAR = "columnar-v1"

#: Tables below this row count pickle as plain lists; the packing
#: overhead only pays off on large ones.
_COLUMNAR_MIN_ROWS = 64


def _pack_rows(rows: list) -> object:
    """Transpose a homogeneous record list into per-field columns.

    Pickling N small dataclass instances pays per-object dispatch N
    times; a tuple of primitive columns serialises at raw C speed and
    at roughly half the byte size (checkpoints, the run cache, and
    worker→parent transfers all go through here). Heterogeneous or
    small lists are returned unchanged.
    """
    if len(rows) < _COLUMNAR_MIN_ROWS:
        return rows
    cls = type(rows[0])
    if not is_dataclass(cls) or any(type(r) is not cls for r in rows):
        return rows
    names = tuple(f.name for f in dataclass_fields(cls))
    return (
        _COLUMNAR,
        cls,
        tuple(tuple(getattr(r, n) for r in rows) for n in names),
    )


def _unpack_rows(value: object) -> list:
    """Inverse of :func:`_pack_rows`; passes plain lists through."""
    if (
        isinstance(value, tuple)
        and len(value) == 3
        and value[0] == _COLUMNAR
    ):
        _, cls, columns = value
        # Dataclass __init__ takes fields in declaration order, which is
        # exactly the column order _pack_rows emitted.
        return [cls(*values) for values in zip(*columns)]
    return value


# ---------------------------------------------------------------------------
# Spill-to-disk tables
# ---------------------------------------------------------------------------


#: Default in-memory tail bound per table before a chunk spills to disk.
SPILL_CHUNK_ROWS = 50_000


@dataclass(frozen=True)
class SpillConfig:
    """Where and how eagerly a :class:`LogStore` spills to disk."""

    directory: str
    chunk_rows: int = SPILL_CHUNK_ROWS


class SpillTable:
    """An append-only record table with a bounded in-memory tail.

    Rows accumulate in ``tail``; once it reaches ``chunk_rows`` they are
    packed columnar (the same ``columnar-v1`` layout pickled checkpoints
    use) and appended as one framed pickle to this table's chunk file.
    Iteration replays spilled chunks from disk in order, one chunk in
    memory at a time, then the live tail — so full-table consumers see
    exactly the list a plain in-memory table would hold, while resident
    memory is bounded by one chunk.

    The chunk file is strictly append-only: a checkpoint snapshot carries
    the chunk offsets valid at snapshot time, and a run resumed from it
    simply appends new chunks after the file's current end. Bytes written
    between the snapshot and the crash are never referenced again — dead
    weight on disk, invisible to iteration, so resume stays byte-identical
    without any truncation dance.
    """

    __slots__ = ("path", "chunk_rows", "tail", "_chunks", "_spilled_rows",
                 "bytes_spilled")

    def __init__(self, path: str, chunk_rows: int = SPILL_CHUNK_ROWS) -> None:
        self.path = path
        self.chunk_rows = chunk_rows
        self.tail: list = []
        #: (byte offset, row count) per spilled chunk, in append order.
        self._chunks: list = []
        self._spilled_rows = 0
        self.bytes_spilled = 0

    def append(self, record) -> None:
        self.tail.append(record)
        if len(self.tail) >= self.chunk_rows:
            self.flush()

    def flush(self) -> None:
        """Spill the tail as one framed columnar chunk."""
        if not self.tail:
            return
        payload = pickle.dumps(
            _pack_rows(self.tail), protocol=pickle.HIGHEST_PROTOCOL
        )
        with open(self.path, "ab") as handle:
            offset = handle.tell()
            handle.write(struct.pack("<Q", len(payload)))
            handle.write(payload)
        self._chunks.append((offset, len(self.tail)))
        self._spilled_rows += len(self.tail)
        self.bytes_spilled += len(payload) + 8
        self.tail = []

    def _load_chunk(self, offset: int) -> list:
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            (size,) = struct.unpack("<Q", handle.read(8))
            return _unpack_rows(pickle.loads(handle.read(size)))

    def chunks(self) -> Iterator[list]:
        """Yield the table as successive record lists, in record order."""
        for offset, _rows in self._chunks:
            yield self._load_chunk(offset)
        if self.tail:
            yield self.tail

    def __iter__(self):
        for chunk in self.chunks():
            yield from chunk

    def __len__(self) -> int:
        return self._spilled_rows + len(self.tail)

    def __getitem__(self, index):
        # Convenience for tests and small tables; O(chunks) on cold data.
        if isinstance(index, slice):
            return _stream_slice(self, index)
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        seen = 0
        for offset, rows in self._chunks:
            if index < seen + rows:
                return self._load_chunk(offset)[index - seen]
            seen += rows
        return self.tail[index - seen]

    def __getstate__(self) -> dict:
        # Ship chunk *references* plus the packed tail: a worker handing
        # its store to the parent moves O(tail) bytes, not O(history) —
        # the spilled chunks stay where they are on shared disk.
        return {
            "path": self.path,
            "chunk_rows": self.chunk_rows,
            "tail": _pack_rows(self.tail),
            "chunks": self._chunks,
            "spilled_rows": self._spilled_rows,
            "bytes_spilled": self.bytes_spilled,
        }

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.chunk_rows = state["chunk_rows"]
        self.tail = _unpack_rows(state["tail"])
        self._chunks = state["chunks"]
        self._spilled_rows = state["spilled_rows"]
        self.bytes_spilled = state["bytes_spilled"]


def _stream_slice(table, index: slice) -> list:
    """Slice a streaming table without materialising the whole of it.

    A contiguous forward slice (step 1) walks the record stream once and
    keeps only the requested range — peak memory is the *result*, not the
    table. Other steps fall back to a full copy; no streaming caller
    needs them.
    """
    from itertools import islice

    start, stop, step = index.indices(len(table))
    if step == 1:
        return list(islice(iter(table), start, stop))
    return list(table)[index]


class MergedTable:
    """A lazy, ordered k-way merge view over per-shard tables.

    Per-shard stores stay chunked on disk (or columnar in memory); this
    view interleaves their record streams by a per-table sort key at
    iteration time, reconstructing the exact record order a single
    whole-world run would have logged. Nothing is copied record-by-record
    into a new table — iteration holds at most one chunk per shard.
    """

    __slots__ = ("parts", "key")

    def __init__(self, parts: list, key) -> None:
        self.parts = parts
        self.key = key

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def __iter__(self):
        import heapq

        key = self.key
        return heapq.merge(*self.parts, key=key)

    def chunks(self) -> Iterator[list]:
        chunk: list = []
        for record in self:
            chunk.append(record)
            if len(chunk) >= SPILL_CHUNK_ROWS:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def __getitem__(self, index):
        if isinstance(index, slice):
            return _stream_slice(self, index)
        if index < 0:
            index += len(self)
        from itertools import islice

        for record in islice(self, index, index + 1):
            return record
        raise IndexError(index)


class LogStore:
    """Typed, append-only collection of all measurement logs.

    With a :class:`SpillConfig` the record tables become
    :class:`SpillTable`\\ s streaming history to columnar chunk files under
    ``spill.directory``, keeping resident memory bounded by the live
    tails; without one they are plain lists, exactly as before.
    """

    def __init__(self, spill: Optional[SpillConfig] = None) -> None:
        self.spill = spill
        if spill is not None:
            os.makedirs(spill.directory, exist_ok=True)
            for table in TABLES:
                setattr(
                    self,
                    table,
                    SpillTable(
                        os.path.join(spill.directory, f"{table}.chunks"),
                        spill.chunk_rows,
                    ),
                )
        else:
            self.mta: list[MtaRecord] = []
            self.dispatch: list[DispatchRecord] = []
            self.challenges: list[ChallengeRecord] = []
            self.challenge_outcomes: list[ChallengeOutcomeRecord] = []
            self.web_access: list[WebAccessRecord] = []
            self.releases: list[ReleaseRecord] = []
            self.whitelist_changes: list[WhitelistChangeRecord] = []
            self.digests: list[DigestRecord] = []
            self.expiries: list[ExpiryRecord] = []
            self.outbound: list[OutboundMailRecord] = []
            self.probes: list[ProbeObservation] = []
            self.crashes: list[CrashRecord] = []
        self._versions: dict[str, int] = {table: 0 for table in TABLES}
        self._index: Optional[AnalysisIndex] = None

    # -- append helpers (every one invalidates its table's aggregates) ---

    def add_mta(self, record: MtaRecord) -> None:
        self.mta.append(record)
        self._versions["mta"] += 1

    def add_dispatch(self, record: DispatchRecord) -> None:
        self.dispatch.append(record)
        self._versions["dispatch"] += 1

    def add_challenge(self, record: ChallengeRecord) -> None:
        self.challenges.append(record)
        self._versions["challenges"] += 1

    def add_challenge_outcome(self, record: ChallengeOutcomeRecord) -> None:
        self.challenge_outcomes.append(record)
        self._versions["challenge_outcomes"] += 1

    def add_web_access(self, record: WebAccessRecord) -> None:
        self.web_access.append(record)
        self._versions["web_access"] += 1

    def add_release(self, record: ReleaseRecord) -> None:
        self.releases.append(record)
        self._versions["releases"] += 1

    def add_whitelist_change(self, record: WhitelistChangeRecord) -> None:
        self.whitelist_changes.append(record)
        self._versions["whitelist_changes"] += 1

    def add_digest(self, record: DigestRecord) -> None:
        self.digests.append(record)
        self._versions["digests"] += 1

    def add_expiry(self, record: ExpiryRecord) -> None:
        self.expiries.append(record)
        self._versions["expiries"] += 1

    def add_outbound(self, record: OutboundMailRecord) -> None:
        self.outbound.append(record)
        self._versions["outbound"] += 1

    def add_probe(self, record: ProbeObservation) -> None:
        self.probes.append(record)
        self._versions["probes"] += 1

    def add_crash(self, record: CrashRecord) -> None:
        self.crashes.append(record)
        self._versions["crashes"] += 1

    # -- the shared index -------------------------------------------------

    def table_version(self, table: str) -> int:
        """Monotonic append counter for *table* (index invalidation)."""
        return self._versions[table]

    def index(self) -> AnalysisIndex:
        """The shared single-pass aggregate index over this store."""
        if self._index is None:
            self._index = AnalysisIndex(self)
        return self._index

    def drop_indices(self) -> None:
        """Discard the lazily-built analysis index.

        It is a pure cache over the record lists, so dropping it never
        loses data; the parallel runner calls this before pickling a store
        so worker→parent payloads carry records only.
        """
        self._index = None

    def __getstate__(self) -> dict:
        """Pickle records and versions only — never the materialised index.

        Large tables go columnar (see :func:`_pack_rows`): one tuple of
        primitive columns per table instead of tens of thousands of
        record objects.
        """
        state = self.__dict__.copy()
        state["_index"] = None
        for table in TABLES:
            rows = state[table]
            # Spilled tables carry their own chunk-reference pickling;
            # merged views materialise (they only reach here when a cached
            # RunSummary is written, an explicit choice to persist).
            if isinstance(rows, list):
                state[table] = _pack_rows(rows)
            elif isinstance(rows, MergedTable):
                state[table] = _pack_rows(list(rows))
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("spill", None)
        for table in TABLES:
            state[table] = _unpack_rows(state[table])
        self.__dict__.update(state)

    # -- correlation indices --------------------------------------------

    def outcome_of(
        self, company_id: str, challenge_id: int
    ) -> Optional[ChallengeOutcomeRecord]:
        """Delivery outcome of a challenge, or None while still in flight."""
        return self.index().outcome_of(company_id, challenge_id)

    def web_events_of(
        self, company_id: str, challenge_id: int
    ) -> list[WebAccessRecord]:
        return self.index().web_events_of(company_id, challenge_id)

    def company_ids(self) -> list[str]:
        """All companies that appear in the MTA logs, in first-seen order."""
        return self.index().company_ids()

    def summary_counts(self) -> dict[str, int]:
        """Record counts per log type (debugging / sanity checks)."""
        return {table: len(getattr(self, table)) for table in TABLES}

    # -- spill management -------------------------------------------------

    def flush(self) -> None:
        """Spill every table's live tail (no-op for in-memory stores)."""
        if self.spill is None:
            return
        for table in TABLES:
            getattr(self, table).flush()

    def live_rows(self) -> int:
        """Records currently resident in memory (tails for spilled
        stores, everything for in-memory ones)."""
        total = 0
        for table in TABLES:
            rows = getattr(self, table)
            total += len(rows.tail) if isinstance(rows, SpillTable) else len(rows)
        return total

    def live_bytes_estimate(self) -> int:
        """Approximate resident bytes of the in-memory records.

        Per-table: shallow object size of one sample record times the
        live row count (slotted records are homogeneous, so one sample is
        representative). An estimate — pointers into shared strings are
        counted once per record — but it tracks growth faithfully, which
        is what the flat-memory claim needs measured.
        """
        total = 0
        for table in TABLES:
            rows = getattr(self, table)
            live = rows.tail if isinstance(rows, SpillTable) else rows
            if live:
                total += (sys.getsizeof(live[0]) + 64) * len(live)
        return total

    def spilled_bytes(self) -> int:
        """Bytes written to spill chunk files so far (0 when in-memory)."""
        if self.spill is None:
            return 0
        return sum(getattr(self, table).bytes_spilled for table in TABLES)
