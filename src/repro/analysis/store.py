"""The aggregation store — our stand-in for the paper's Postgres database.

A :class:`LogStore` holds every log record the simulated deployment emits,
in insertion (= time) order, plus a shared, lazily-materialised
:class:`~repro.analysis.index.AnalysisIndex` over them. It is append-only
during a run; analyses treat it as read-only.

Every append helper bumps its table's version counter, so aggregates the
index built over that table are invalidated precisely — an append to
``releases`` never throws away the expensive MTA pass, and a stale
aggregate is never served after any append.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from typing import Optional

from repro.analysis.index import AnalysisIndex
from repro.analysis.records import (
    ChallengeOutcomeRecord,
    ChallengeRecord,
    CrashRecord,
    DigestRecord,
    DispatchRecord,
    ExpiryRecord,
    MtaRecord,
    OutboundMailRecord,
    ReleaseRecord,
    WebAccessRecord,
    WhitelistChangeRecord,
)
from repro.blacklistd.monitor import ProbeObservation

#: Names of the record-list attributes, in schema order.
TABLES = (
    "mta",
    "dispatch",
    "challenges",
    "challenge_outcomes",
    "web_access",
    "releases",
    "whitelist_changes",
    "digests",
    "expiries",
    "outbound",
    "probes",
    "crashes",
)


#: Marker tag for columnar-packed tables inside a pickled store.
_COLUMNAR = "columnar-v1"

#: Tables below this row count pickle as plain lists; the packing
#: overhead only pays off on large ones.
_COLUMNAR_MIN_ROWS = 64


def _pack_rows(rows: list) -> object:
    """Transpose a homogeneous record list into per-field columns.

    Pickling N small dataclass instances pays per-object dispatch N
    times; a tuple of primitive columns serialises at raw C speed and
    at roughly half the byte size (checkpoints, the run cache, and
    worker→parent transfers all go through here). Heterogeneous or
    small lists are returned unchanged.
    """
    if len(rows) < _COLUMNAR_MIN_ROWS:
        return rows
    cls = type(rows[0])
    if not is_dataclass(cls) or any(type(r) is not cls for r in rows):
        return rows
    names = tuple(f.name for f in dataclass_fields(cls))
    return (
        _COLUMNAR,
        cls,
        tuple(tuple(getattr(r, n) for r in rows) for n in names),
    )


def _unpack_rows(value: object) -> list:
    """Inverse of :func:`_pack_rows`; passes plain lists through."""
    if (
        isinstance(value, tuple)
        and len(value) == 3
        and value[0] == _COLUMNAR
    ):
        _, cls, columns = value
        # Dataclass __init__ takes fields in declaration order, which is
        # exactly the column order _pack_rows emitted.
        return [cls(*values) for values in zip(*columns)]
    return value


class LogStore:
    """Typed, append-only collection of all measurement logs."""

    def __init__(self) -> None:
        self.mta: list[MtaRecord] = []
        self.dispatch: list[DispatchRecord] = []
        self.challenges: list[ChallengeRecord] = []
        self.challenge_outcomes: list[ChallengeOutcomeRecord] = []
        self.web_access: list[WebAccessRecord] = []
        self.releases: list[ReleaseRecord] = []
        self.whitelist_changes: list[WhitelistChangeRecord] = []
        self.digests: list[DigestRecord] = []
        self.expiries: list[ExpiryRecord] = []
        self.outbound: list[OutboundMailRecord] = []
        self.probes: list[ProbeObservation] = []
        self.crashes: list[CrashRecord] = []
        self._versions: dict[str, int] = {table: 0 for table in TABLES}
        self._index: Optional[AnalysisIndex] = None

    # -- append helpers (every one invalidates its table's aggregates) ---

    def add_mta(self, record: MtaRecord) -> None:
        self.mta.append(record)
        self._versions["mta"] += 1

    def add_dispatch(self, record: DispatchRecord) -> None:
        self.dispatch.append(record)
        self._versions["dispatch"] += 1

    def add_challenge(self, record: ChallengeRecord) -> None:
        self.challenges.append(record)
        self._versions["challenges"] += 1

    def add_challenge_outcome(self, record: ChallengeOutcomeRecord) -> None:
        self.challenge_outcomes.append(record)
        self._versions["challenge_outcomes"] += 1

    def add_web_access(self, record: WebAccessRecord) -> None:
        self.web_access.append(record)
        self._versions["web_access"] += 1

    def add_release(self, record: ReleaseRecord) -> None:
        self.releases.append(record)
        self._versions["releases"] += 1

    def add_whitelist_change(self, record: WhitelistChangeRecord) -> None:
        self.whitelist_changes.append(record)
        self._versions["whitelist_changes"] += 1

    def add_digest(self, record: DigestRecord) -> None:
        self.digests.append(record)
        self._versions["digests"] += 1

    def add_expiry(self, record: ExpiryRecord) -> None:
        self.expiries.append(record)
        self._versions["expiries"] += 1

    def add_outbound(self, record: OutboundMailRecord) -> None:
        self.outbound.append(record)
        self._versions["outbound"] += 1

    def add_probe(self, record: ProbeObservation) -> None:
        self.probes.append(record)
        self._versions["probes"] += 1

    def add_crash(self, record: CrashRecord) -> None:
        self.crashes.append(record)
        self._versions["crashes"] += 1

    # -- the shared index -------------------------------------------------

    def table_version(self, table: str) -> int:
        """Monotonic append counter for *table* (index invalidation)."""
        return self._versions[table]

    def index(self) -> AnalysisIndex:
        """The shared single-pass aggregate index over this store."""
        if self._index is None:
            self._index = AnalysisIndex(self)
        return self._index

    def drop_indices(self) -> None:
        """Discard the lazily-built analysis index.

        It is a pure cache over the record lists, so dropping it never
        loses data; the parallel runner calls this before pickling a store
        so worker→parent payloads carry records only.
        """
        self._index = None

    def __getstate__(self) -> dict:
        """Pickle records and versions only — never the materialised index.

        Large tables go columnar (see :func:`_pack_rows`): one tuple of
        primitive columns per table instead of tens of thousands of
        record objects.
        """
        state = self.__dict__.copy()
        state["_index"] = None
        for table in TABLES:
            state[table] = _pack_rows(state[table])
        return state

    def __setstate__(self, state: dict) -> None:
        for table in TABLES:
            state[table] = _unpack_rows(state[table])
        self.__dict__.update(state)

    # -- correlation indices --------------------------------------------

    def outcome_of(
        self, company_id: str, challenge_id: int
    ) -> Optional[ChallengeOutcomeRecord]:
        """Delivery outcome of a challenge, or None while still in flight."""
        return self.index().outcome_of(company_id, challenge_id)

    def web_events_of(
        self, company_id: str, challenge_id: int
    ) -> list[WebAccessRecord]:
        return self.index().web_events_of(company_id, challenge_id)

    def company_ids(self) -> list[str]:
        """All companies that appear in the MTA logs, in first-seen order."""
        return self.index().company_ids()

    def summary_counts(self) -> dict[str, int]:
        """Record counts per log type (debugging / sanity checks)."""
        return {table: len(getattr(self, table)) for table in TABLES}
