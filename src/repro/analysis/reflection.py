"""§3.1–3.3: reflection ratio, backscatter ratio, and traffic pollution.

Paper anchors:

* Reflection ratio R = challenges / messages reaching the CR filter =
  19.3 % (or 4.8 % against all messages reaching MTA-IN) — one challenge
  per ~21 incoming emails;
* Backscatter ratio β = R × (delivered-but-never-solved share) ≤ 8.7 % at
  the CR filter / 2.1 % at the MTA;
* ~2 % of gray-spool sender addresses were whitelisted manually from the
  digest;
* Reflected-traffic ratio RT = challenge bytes / incoming bytes = 2.5 % at
  the CR filter, extrapolated to a ~0.62 % increase of internet mail
  traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class ReflectionStats:
    mta_messages: int
    cr_messages: int
    challenges: int
    delivered: int
    solved: int
    digest_whitelisted_senders: int
    gray_spool_senders: int
    challenge_bytes: int
    cr_bytes: int
    mta_bytes: int

    @property
    def reflection_cr(self) -> float:
        """R at the CR filter (paper: 19.3 %)."""
        return safe_ratio(self.challenges, self.cr_messages)

    @property
    def reflection_mta(self) -> float:
        """R at MTA-IN (paper: 4.8 %)."""
        return safe_ratio(self.challenges, self.mta_messages)

    @property
    def emails_per_challenge(self) -> float:
        """§6: "one challenge for every 21 emails it receives" — measured
        against everything arriving at MTA-IN (1000/48 ≈ 21 in Fig. 1)."""
        return safe_ratio(self.mta_messages, self.challenges)

    @property
    def backscatter_share(self) -> float:
        """Delivered-but-never-solved share of all challenges — the §3.2
        worst-case estimate of misdirected challenges."""
        return safe_ratio(self.delivered - self.solved, self.challenges)

    @property
    def beta_cr(self) -> float:
        """β at the CR filter (paper worst case: 8.7 %)."""
        return self.reflection_cr * self.backscatter_share

    @property
    def beta_mta(self) -> float:
        """β at MTA-IN (paper worst case: 2.1 %)."""
        return self.reflection_mta * self.backscatter_share

    @property
    def digest_whitelist_share(self) -> float:
        """Share of gray-spool senders manually whitelisted (paper ~2 %)."""
        return safe_ratio(
            self.digest_whitelisted_senders, self.gray_spool_senders
        )

    @property
    def rt_cr(self) -> float:
        """Reflected-traffic ratio at the CR filter (paper: 2.5 %)."""
        return safe_ratio(self.challenge_bytes, self.cr_bytes)

    @property
    def rt_mta(self) -> float:
        """Traffic increase against all MTA-IN traffic (paper est.: 0.62 %)."""
        return safe_ratio(self.challenge_bytes, self.mta_bytes)


def compute(store: LogStore) -> ReflectionStats:
    index = store.index()
    delivered_ids = index.outcomes.delivered_ids
    solved_ids = index.web.solved_ids
    gray_senders = index.dispatch.gray_senders
    digest_senders = index.whitelist.digest_senders
    return ReflectionStats(
        mta_messages=index.mta.total,
        cr_messages=index.dispatch.total,
        challenges=len(store.challenges),
        delivered=len(delivered_ids),
        solved=len(solved_ids & delivered_ids),
        digest_whitelisted_senders=len(digest_senders & gray_senders),
        gray_spool_senders=len(gray_senders),
        challenge_bytes=index.challenges.total_bytes,
        cr_bytes=index.dispatch.total_bytes,
        mta_bytes=index.mta.total_bytes,
    )


def build_table(stats: ReflectionStats) -> ComparisonTable:
    table = ComparisonTable(
        "Sec. 3.1-3.3 — reflection ratio, backscatter, traffic pollution"
    )
    table.add("reflection ratio R at CR filter", 19.3, 100.0 * stats.reflection_cr, "%")
    table.add("reflection ratio R at MTA-IN", 4.8, 100.0 * stats.reflection_mta, "%")
    table.add("incoming emails per challenge (Sec. 6)", 21.0, stats.emails_per_challenge)
    table.add(
        "delivered-never-solved share (worst-case backscatter)",
        45.0,
        100.0 * stats.backscatter_share,
        "%",
    )
    table.add("backscatter ratio beta at CR filter", 8.7, 100.0 * stats.beta_cr, "%")
    table.add("backscatter ratio beta at MTA-IN", 2.1, 100.0 * stats.beta_mta, "%")
    table.add(
        "gray senders manually whitelisted from digest",
        2.0,
        100.0 * stats.digest_whitelist_share,
        "%",
    )
    table.add("reflected traffic RT at CR filter", 2.5, 100.0 * stats.rt_cr, "%")
    table.add("email traffic increase (internet-wide)", 0.62, 100.0 * stats.rt_mta, "%")
    return table


def render(store: LogStore) -> str:
    return build_table(compute(store)).render()
