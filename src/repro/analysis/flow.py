"""Figure 1: the weighted lifecycle of incoming emails.

The paper normalises the whole pipeline to 1,000 messages arriving at a
non-open-relay MTA-IN: ~751 dropped by the MTA, 249 reach the dispatcher,
31 to the white spool, ~4 black, ~214 gray, the filters drop the bulk of
the gray spool, 48 challenges go out, and ~2 messages are eventually
released to the inbox (solved challenge or digest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.store import LogStore
from repro.core.spools import ReleaseMechanism
from repro.util.render import ComparisonTable


@dataclass(frozen=True)
class LifecycleFlow:
    """Everything in Fig. 1, per 1000 messages at a closed-relay MTA-IN."""

    mta_in: float  # = 1000 by construction
    dropped_at_mta: float
    to_dispatcher: float
    white: float
    black: float
    gray: float
    filter_dropped: float
    quarantined: float
    challenges_sent: float
    released_captcha: float
    released_digest: float
    expired: float


#: Figure 1's published per-1000 numbers (blank entries derived from text).
PAPER_FLOW = {
    "dropped_at_mta": 751.0,
    "to_dispatcher": 249.0,
    "white": 31.0,
    "challenges_sent": 48.0,
    "released_total": 2.0,
}


def compute(store: LogStore) -> LifecycleFlow:
    """Re-derive the per-1000 lifecycle from MTA + dispatch + release logs,
    restricted to non-open-relay companies like the paper's Figure 1."""
    index = store.index()
    mta = index.mta
    closed_companies = mta.closed_companies
    mta_total = mta.closed_total
    mta_dropped = mta.closed_dropped
    if mta_total == 0:
        raise ValueError("no closed-relay MTA records: cannot compute Fig. 1")
    scale = 1000.0 / mta_total

    closed = index.dispatch.closed
    white, black, gray = closed.white, closed.black, closed.gray
    filter_dropped = closed.filter_dropped
    quarantined = closed.quarantined
    challenges = closed.challenges

    releases_per_company = index.releases.per_company
    released_captcha = sum(
        releases_per_company[company].get(ReleaseMechanism.CAPTCHA, 0)
        for company in closed_companies
        if company in releases_per_company
    )
    released_digest = sum(
        releases_per_company[company].get(ReleaseMechanism.DIGEST, 0)
        for company in closed_companies
        if company in releases_per_company
    )
    expiries_per_company = index.expiries.per_company
    expired = sum(
        expiries_per_company[company]
        for company in closed_companies
        if company in expiries_per_company
    )
    return LifecycleFlow(
        mta_in=1000.0,
        dropped_at_mta=mta_dropped * scale,
        to_dispatcher=(mta_total - mta_dropped) * scale,
        white=white * scale,
        black=black * scale,
        gray=gray * scale,
        filter_dropped=filter_dropped * scale,
        quarantined=quarantined * scale,
        challenges_sent=challenges * scale,
        released_captcha=released_captcha * scale,
        released_digest=released_digest * scale,
        expired=expired * scale,
    )


def build_table(flow: LifecycleFlow) -> ComparisonTable:
    table = ComparisonTable(
        "Fig. 1 — lifecycle of incoming email, per 1000 messages at MTA-IN "
        "(non-open-relay servers)"
    )
    table.add("dropped at MTA-IN", PAPER_FLOW["dropped_at_mta"], flow.dropped_at_mta)
    table.add("reach the CR dispatcher", PAPER_FLOW["to_dispatcher"], flow.to_dispatcher)
    table.add("white spool (instant inbox)", PAPER_FLOW["white"], flow.white)
    table.add("black spool (dropped)", None, flow.black)
    table.add("gray spool", None, flow.gray)
    table.add("dropped by gray filters", None, flow.filter_dropped)
    table.add("quarantined", None, flow.quarantined)
    table.add("challenges sent", PAPER_FLOW["challenges_sent"], flow.challenges_sent)
    table.add(
        "released to inbox (captcha+digest)",
        PAPER_FLOW["released_total"],
        flow.released_captcha + flow.released_digest,
    )
    table.add("expired in quarantine", None, flow.expired)
    return table


def render(store: LogStore) -> str:
    return build_table(compute(store)).render()


def conservation_check(flow: LifecycleFlow, tolerance: float = 1e-6) -> bool:
    """Every message is accounted for exactly once at each stage."""
    stage1 = abs(flow.dropped_at_mta + flow.to_dispatcher - 1000.0) < tolerance
    stage2 = (
        abs(flow.white + flow.black + flow.gray - flow.to_dispatcher) < tolerance
    )
    stage3 = (
        abs(flow.filter_dropped + flow.quarantined - flow.gray) < tolerance
    )
    return stage1 and stage2 and stage3
