"""The measurement pipeline: log records, the aggregation store, and one
analysis module per paper table/figure.

This package plays the role of the paper's "Postgres database ... later
analyzed and correlated by a number of Python scripts" (§2): the simulation
appends typed log records to a :class:`~repro.analysis.store.LogStore`, and
each analysis module re-derives a published table or figure *only* from
those records — never from the workload's ground-truth configuration.
"""

from repro.analysis.store import LogStore

__all__ = ["LogStore"]
