"""Crash-and-recovery report: what the product survived and what it cost.

The CR product's operational claim — quarantine and whitelist state is
durable, no accepted message is ever lost — is exactly the property the
paper's operators depended on across four years of real deployment.
This report summarises one run's injected component crashes
(:mod:`repro.net.crashes`), how each recovery went (journal replays,
index rebuilds, deferred traffic), and the checkpoint/restore overhead of
the simulation harness itself.

Crash events are regular log records (the ``crashes`` table), so a
persisted run replays this report offline like any other; the injection
counters and checkpoint timings live on the
:class:`~repro.experiments.runner.SimulationResult` and are appended when
the caller has them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.store import LogStore
from repro.util.render import TextTable
from repro.util.simtime import format_duration
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class ComponentCrashes:
    """Aggregate of one component's crashes over the run."""

    component: str
    count: int
    total_downtime: float
    redriven: int
    lost: int
    journal_failures: int

    @property
    def mean_downtime(self) -> float:
        return safe_ratio(self.total_downtime, self.count)


@dataclass(frozen=True)
class RecoveryBreakdown:
    """Per-component crash aggregates of one run."""

    components: tuple

    @property
    def total_crashes(self) -> int:
        return sum(c.count for c in self.components)

    @property
    def total_lost(self) -> int:
        return sum(c.lost for c in self.components)

    @property
    def zero_loss(self) -> bool:
        return self.total_lost == 0 and not any(
            c.journal_failures for c in self.components
        )


def compute(store: LogStore) -> RecoveryBreakdown:
    counts: Counter = Counter()
    downtime: Counter = Counter()
    redriven: Counter = Counter()
    lost: Counter = Counter()
    journal_failures: Counter = Counter()
    for record in store.crashes:
        counts[record.component] += 1
        downtime[record.component] += record.downtime
        redriven[record.component] += record.redriven
        lost[record.component] += record.lost
        if not record.journal_ok:
            journal_failures[record.component] += 1
    return RecoveryBreakdown(
        components=tuple(
            ComponentCrashes(
                component=component,
                count=counts[component],
                total_downtime=downtime[component],
                redriven=redriven[component],
                lost=lost[component],
                journal_failures=journal_failures[component],
            )
            for component in sorted(counts)
        )
    )


def build_crash_table(breakdown: RecoveryBreakdown) -> TextTable:
    table = TextTable(
        headers=[
            "component", "crashes", "mean downtime", "redriven", "lost",
            "journal failures",
        ],
        title="Injected component crashes",
    )
    for c in breakdown.components:
        table.add_row(
            c.component,
            c.count,
            format_duration(c.mean_downtime),
            c.redriven,
            c.lost,
            c.journal_failures,
        )
    return table


def build_crash_counter_table(crash_stats) -> TextTable:
    table = TextTable(
        headers=["counter", "value"],
        title="Crash-injection counters",
    )
    table.add_row("component crashes", crash_stats.crashes)
    table.add_row("inbound deferred to recovery", crash_stats.inbound_deferred)
    table.add_row("inbound refused (past horizon)", crash_stats.inbound_refused)
    table.add_row("digest sweeps skipped", crash_stats.digests_skipped)
    table.add_row("expiry sweeps skipped", crash_stats.expiries_skipped)
    table.add_row("outbound attempts deferred", crash_stats.outbound_deferred)
    table.add_row("in-flight mail re-driven", crash_stats.redriven)
    table.add_row("gray-spool journals rebuilt", crash_stats.journals_rebuilt)
    table.add_row("journal rebuild mismatches", crash_stats.journal_mismatches)
    table.add_row("messages lost", crash_stats.lost)
    table.add_row(
        "recovery verdict",
        "ZERO LOSS" if crash_stats.clean_recovery else "LOSSY",
    )
    return table


def build_checkpoint_table(checkpoint_stats) -> TextTable:
    table = TextTable(
        headers=["metric", "value"],
        title="Checkpoint/restore overhead (simulation harness)",
    )
    table.add_row(
        "snapshot interval", format_duration(checkpoint_stats.every)
    )
    table.add_row("snapshots written", checkpoint_stats.written)
    table.add_row(
        "total write time", f"{checkpoint_stats.write_seconds:.3f}s"
    )
    table.add_row(
        "mean write time", f"{checkpoint_stats.mean_write_seconds:.3f}s"
    )
    if checkpoint_stats.restored_from is not None:
        table.add_row("restored from", checkpoint_stats.restored_from)
        table.add_row(
            "restore time", f"{checkpoint_stats.restore_seconds:.3f}s"
        )
    return table


def render(store: LogStore, crash_stats=None, checkpoint_stats=None) -> str:
    """Full crash-and-recovery report; the stats objects (optional)
    append the run's injection counters and harness overhead."""
    breakdown = compute(store)
    parts = []
    if breakdown.components:
        parts.append(build_crash_table(breakdown).render())
        parts.append(
            f"{breakdown.total_crashes:,} crashes; "
            f"{breakdown.total_lost:,} messages lost; "
            + (
                "every recovery replayed its journals cleanly"
                if breakdown.zero_loss
                else "LOSS OBSERVED — durability model is lossy or recovery is broken"
            )
        )
    else:
        parts.append("no component crashes (crash injection off or quiet run)")
    if crash_stats is not None and crash_stats.enabled:
        parts.append(build_crash_counter_table(crash_stats).render())
    if checkpoint_stats is not None and (
        checkpoint_stats.written or checkpoint_stats.restored_from
    ):
        parts.append(build_checkpoint_table(checkpoint_stats).render())
    return "\n\n".join(parts)


def render_result(result) -> str:
    """Registry adapter: renders from a full
    :class:`~repro.experiments.runner.SimulationResult` (or anything with
    a ``store``; the stats attributes are optional so loaded/summarised
    runs work)."""
    return render(
        result.store,
        getattr(result, "crash_stats", None),
        getattr(result, "checkpoint_stats", None),
    )
