"""Save/load the measurement database as JSON-lines.

The paper stored its extracted log records in Postgres and analysed them
later; this module provides the equivalent decoupling — simulate once,
persist the :class:`~repro.analysis.store.LogStore` (plus the deployment
metadata), and re-run any analysis offline::

    python -m repro run --preset bench --save run.jsonl
    python -m repro experiment fig4a --load run.jsonl

Format: one JSON object per line; the first line is a header carrying the
schema version and the :class:`~repro.analysis.context.DeploymentInfo`;
every other line is one record tagged with its log type.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.analysis.context import DeploymentInfo
from repro.analysis.records import (
    ChallengeOutcomeRecord,
    ChallengeRecord,
    CrashRecord,
    DigestRecord,
    DispatchRecord,
    ExpiryRecord,
    MtaRecord,
    OutboundMailRecord,
    ReleaseRecord,
    WebAccessRecord,
    WhitelistChangeRecord,
)
from repro.analysis.store import LogStore
from repro.blacklistd.monitor import ProbeObservation
from repro.core.challenge import WebAction
from repro.core.filters.spf import SpfResult
from repro.core.message import MessageKind, SenderClass
from repro.core.mta_in import DropReason
from repro.core.spools import Category, ReleaseMechanism
from repro.core.whitelist import WhitelistSource
from repro.net.smtp import BounceReason, FinalStatus

SCHEMA_VERSION = 1


class PersistenceError(ValueError):
    """Raised on malformed or incompatible log files."""


@dataclass(frozen=True)
class LoadedRun:
    """A persisted run, sufficient for every analysis (store + info)."""

    store: LogStore
    info: DeploymentInfo


def _enum_or_none(enum_cls, value):
    return None if value is None else enum_cls(value)


def _encode_mta(r: MtaRecord) -> dict:
    return {
        "c": r.company_id,
        "t": r.t,
        "m": r.msg_id,
        "d": r.drop_reason.value if r.drop_reason else None,
        "o": r.open_relay,
        "s": r.size,
    }


def _decode_mta(d: dict) -> MtaRecord:
    return MtaRecord(
        d["c"], d["t"], d["m"], _enum_or_none(DropReason, d["d"]), d["o"], d["s"]
    )


def _encode_dispatch(r: DispatchRecord) -> dict:
    return {
        "c": r.company_id,
        "t": r.t,
        "m": r.msg_id,
        "u": r.user,
        "cat": r.category.value,
        "fd": r.filter_drop,
        "ch": r.challenge_id,
        "cc": r.challenge_created,
        "f": r.env_from,
        "subj": r.subject,
        "s": r.size,
        "spf": r.spf.value,
        "k": r.kind.value,
        "sc": r.sender_class.value,
        "camp": r.campaign_id,
        "o": r.open_relay,
        "p": r.protected_user,
    }


def _decode_dispatch(d: dict) -> DispatchRecord:
    return DispatchRecord(
        d["c"],
        d["t"],
        d["m"],
        d["u"],
        Category(d["cat"]),
        d["fd"],
        d["ch"],
        d["cc"],
        d["f"],
        d["subj"],
        d["s"],
        SpfResult(d["spf"]),
        MessageKind(d["k"]),
        SenderClass(d["sc"]),
        d["camp"],
        d["o"],
        d["p"],
    )


def _encode_challenge(r: ChallengeRecord) -> dict:
    return {
        "c": r.company_id,
        "id": r.challenge_id,
        "t": r.t,
        "u": r.user,
        "snd": r.sender,
        "ip": r.server_ip,
        "s": r.size,
    }


def _decode_challenge(d: dict) -> ChallengeRecord:
    return ChallengeRecord(
        d["c"], d["id"], d["t"], d["u"], d["snd"], d["ip"], d["s"]
    )


def _encode_outcome(r: ChallengeOutcomeRecord) -> dict:
    return {
        "c": r.company_id,
        "id": r.challenge_id,
        "st": r.status.value,
        "br": r.bounce_reason.value if r.bounce_reason else None,
        "a": r.attempts,
        "t": r.t_final,
    }


def _decode_outcome(d: dict) -> ChallengeOutcomeRecord:
    return ChallengeOutcomeRecord(
        d["c"],
        d["id"],
        FinalStatus(d["st"]),
        _enum_or_none(BounceReason, d["br"]),
        d["a"],
        d["t"],
    )


def _encode_web(r: WebAccessRecord) -> dict:
    return {
        "c": r.company_id,
        "id": r.challenge_id,
        "t": r.t,
        "a": r.action.value,
        "ok": r.success,
    }


def _decode_web(d: dict) -> WebAccessRecord:
    return WebAccessRecord(d["c"], d["id"], d["t"], WebAction(d["a"]), d["ok"])


def _encode_release(r: ReleaseRecord) -> dict:
    return {
        "c": r.company_id,
        "u": r.user,
        "m": r.msg_id,
        "ta": r.t_arrival,
        "tr": r.t_release,
        "mech": r.mechanism.value,
        "k": r.kind.value,
    }


def _decode_release(d: dict) -> ReleaseRecord:
    return ReleaseRecord(
        d["c"],
        d["u"],
        d["m"],
        d["ta"],
        d["tr"],
        ReleaseMechanism(d["mech"]),
        MessageKind(d["k"]),
    )


def _encode_whitelist(r: WhitelistChangeRecord) -> dict:
    return {
        "c": r.company_id,
        "u": r.user,
        "a": r.address,
        "t": r.t,
        "src": r.source.value,
    }


def _decode_whitelist(d: dict) -> WhitelistChangeRecord:
    return WhitelistChangeRecord(
        d["c"], d["u"], d["a"], d["t"], WhitelistSource(d["src"])
    )


def _encode_digest(r: DigestRecord) -> dict:
    return {"c": r.company_id, "u": r.user, "d": r.day, "n": r.pending_count}


def _decode_digest(d: dict) -> DigestRecord:
    return DigestRecord(d["c"], d["u"], d["d"], d["n"])


def _encode_expiry(r: ExpiryRecord) -> dict:
    return {"c": r.company_id, "u": r.user, "m": r.msg_id, "t": r.t}


def _decode_expiry(d: dict) -> ExpiryRecord:
    return ExpiryRecord(d["c"], d["u"], d["m"], d["t"])


def _encode_outbound(r: OutboundMailRecord) -> dict:
    return {"c": r.company_id, "t": r.t, "u": r.user, "r": r.rcpt, "s": r.size}


def _decode_outbound(d: dict) -> OutboundMailRecord:
    return OutboundMailRecord(d["c"], d["t"], d["u"], d["r"], d["s"])


def _encode_probe(r: ProbeObservation) -> dict:
    return {"t": r.t, "ip": r.ip, "svc": r.service, "l": r.listed}


def _decode_probe(d: dict) -> ProbeObservation:
    return ProbeObservation(d["t"], d["ip"], d["svc"], d["l"])


def _encode_crash(r: CrashRecord) -> dict:
    return {
        "c": r.company_id,
        "t": r.t,
        "comp": r.component,
        "dt": r.downtime,
        "rd": r.redriven,
        "lo": r.lost,
        "jok": r.journal_ok,
    }


def _decode_crash(d: dict) -> CrashRecord:
    return CrashRecord(
        d["c"], d["t"], d["comp"], d["dt"], d["rd"], d["lo"], d["jok"]
    )


#: tag -> (store list attribute, encoder, decoder)
_CODECS: dict = {
    "mta": ("mta", _encode_mta, _decode_mta),
    "dispatch": ("dispatch", _encode_dispatch, _decode_dispatch),
    "challenge": ("challenges", _encode_challenge, _decode_challenge),
    "outcome": ("challenge_outcomes", _encode_outcome, _decode_outcome),
    "web": ("web_access", _encode_web, _decode_web),
    "release": ("releases", _encode_release, _decode_release),
    "whitelist": ("whitelist_changes", _encode_whitelist, _decode_whitelist),
    "digest": ("digests", _encode_digest, _decode_digest),
    "expiry": ("expiries", _encode_expiry, _decode_expiry),
    "outbound": ("outbound", _encode_outbound, _decode_outbound),
    "probe": ("probes", _encode_probe, _decode_probe),
    "crash": ("crashes", _encode_crash, _decode_crash),
}


def encoded_records(store: LogStore):
    """Yield every record as ``(tag, payload_dict)`` in codec order.

    The payloads are the exact JSON-ready dicts :func:`save_run` writes,
    which makes this the canonical byte-stable serialisation of a store —
    the parallel runner hashes it to fingerprint a run's content.
    """
    for tag, (attribute, encode, _decode) in _CODECS.items():
        for record in getattr(store, attribute):
            yield tag, encode(record)


def save_run(store: LogStore, info: DeploymentInfo, path) -> int:
    """Write the store + metadata to *path*; returns records written."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "type": "header",
            "schema": SCHEMA_VERSION,
            "info": {
                "n_companies": info.n_companies,
                "n_open_relays": info.n_open_relays,
                "users_per_company": dict(info.users_per_company),
                "horizon_days": info.horizon_days,
                "min_cluster_size": info.min_cluster_size,
                "volume_scale": info.volume_scale,
            },
        }
        handle.write(json.dumps(header) + "\n")
        for tag, (attribute, encode, _decode) in _CODECS.items():
            for record in getattr(store, attribute):
                payload = encode(record)
                payload["type"] = tag
                handle.write(json.dumps(payload) + "\n")
                written += 1
    return written


def load_run(path) -> LoadedRun:
    """Read a file written by :func:`save_run`."""
    store = LogStore()
    info: Optional[DeploymentInfo] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise PersistenceError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            tag = payload.get("type")
            if tag == "header":
                if payload.get("schema") != SCHEMA_VERSION:
                    raise PersistenceError(
                        f"unsupported schema {payload.get('schema')!r}"
                    )
                raw = payload["info"]
                info = DeploymentInfo(
                    n_companies=raw["n_companies"],
                    n_open_relays=raw["n_open_relays"],
                    users_per_company=raw["users_per_company"],
                    horizon_days=raw["horizon_days"],
                    min_cluster_size=raw["min_cluster_size"],
                    volume_scale=raw["volume_scale"],
                )
                continue
            codec = _CODECS.get(tag)
            if codec is None:
                raise PersistenceError(
                    f"{path}:{line_number}: unknown record type {tag!r}"
                )
            attribute, _encode, decode = codec
            try:
                getattr(store, attribute).append(decode(payload))
            except (KeyError, ValueError) as exc:
                raise PersistenceError(
                    f"{path}:{line_number}: bad {tag} record: {exc}"
                ) from exc
    if info is None:
        raise PersistenceError(f"{path}: missing header line")
    return LoadedRun(store=store, info=info)
