"""Figure 3: message categories at the internal processing engine.

Paper anchors: the auxiliary filters drop on average 54 % of gray emails
and challenges are generated for 28 % of them (Fig. 3); §5.2 instead quotes
the filters dropping 77.5 % of the gray spool, and Table 1's per-filter
counts imply 62.9 % — the paper is internally inconsistent here, so we
report our measured split against all three anchors. Open relays send ~9 %
more challenges ("an extra 9%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable
from repro.util.stats import safe_ratio

#: Table 1 per-filter drop counts → shares of the gray spool.
PAPER_FILTER_SHARES = {
    "reverse_dns": 3_526_506 / 11_590_532,
    "rbl": 4_973_755 / 11_590_532,
    "antivirus": 267_630 / 11_590_532,
}


@dataclass(frozen=True)
class EngineBreakdown:
    gray_total: int
    #: Fraction of gray mail dropped by each filter.
    filter_shares: Mapping[str, float]
    filter_drop_share: float
    #: Fraction of gray mail for which a challenge email was sent.
    challenged_share: float
    #: Fraction attached to an already-pending challenge (no email sent).
    suppressed_share: float
    #: Challenges per engine message, closed vs open relays.
    challenge_rate_closed: float
    challenge_rate_open: float

    @property
    def open_relay_extra(self) -> float:
        """Relative challenge-rate increase at open relays (paper: +9 %)."""
        if self.challenge_rate_closed == 0:
            return 0.0
        return self.challenge_rate_open / self.challenge_rate_closed - 1.0


def compute(store: LogStore) -> EngineBreakdown:
    dispatch = store.index().dispatch
    gray_total = dispatch.gray
    drops = dispatch.filter_drops
    counts = dispatch.by_relay
    filter_shares = {
        name: safe_ratio(count, gray_total) for name, count in drops.items()
    }
    return EngineBreakdown(
        gray_total=gray_total,
        filter_shares=filter_shares,
        filter_drop_share=safe_ratio(sum(drops.values()), gray_total),
        challenged_share=safe_ratio(dispatch.challenged_gray, gray_total),
        suppressed_share=safe_ratio(dispatch.suppressed, gray_total),
        challenge_rate_closed=safe_ratio(counts[False][1], counts[False][0]),
        challenge_rate_open=safe_ratio(counts[True][1], counts[True][0]),
    )


def build_table(breakdown: EngineBreakdown) -> ComparisonTable:
    table = ComparisonTable(
        "Fig. 3 — message categories at the internal processing engine "
        "(shares of the gray spool)"
    )
    for name, paper_share in PAPER_FILTER_SHARES.items():
        table.add(
            f"dropped by {name} filter",
            100.0 * paper_share,
            100.0 * breakdown.filter_shares.get(name, 0.0),
            "%",
        )
    table.add(
        "dropped by filters, total "
        "(paper quotes 54% in Fig.3 / 62.9% via Table 1 / 77.5% in Sec 5.2)",
        62.9,
        100.0 * breakdown.filter_drop_share,
        "%",
    )
    table.add(
        "challenge sent (Fig. 3: 28%)",
        28.0,
        100.0 * breakdown.challenged_share,
        "%",
    )
    table.add(
        "attached to pending challenge",
        None,
        100.0 * breakdown.suppressed_share,
        "%",
    )
    table.add(
        "open-relay extra challenge rate",
        9.0,
        100.0 * breakdown.open_relay_extra,
        "%",
    )
    return table


def render(store: LogStore) -> str:
    return build_table(compute(store)).render()
