"""Figure 12 / §5.2: the offline SPF validation test.

The paper ran an SPF check over every gray-spool email (SPF was *not* part
of the deployed product) and grouped results by the fate of the
corresponding challenge. Dropping SPF hard-fails would have avoided ~9 % of
the expired challenges and ~4.10 % of the bounced ones — cutting "bad"
challenges by ~2.5 % overall — at the cost of 0.25 % of the challenges that
were actually solved.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.store import LogStore
from repro.core.filters.spf import SpfResult
from repro.net.smtp import FinalStatus
from repro.util.render import ComparisonTable, TextTable
from repro.util.stats import safe_ratio


class ChallengeFate(enum.Enum):
    """Fig. 12's message categories."""

    SOLVED = "solved"
    DELIVERED_UNSOLVED = "delivered_unsolved"
    BOUNCED = "bounced"
    EXPIRED = "expired"
    PENDING = "pending"  # challenge outcome unknown at window end


@dataclass(frozen=True)
class SpfStats:
    #: fate -> Counter of SpfResult over gray-spool messages.
    by_fate: Mapping[ChallengeFate, Counter]

    def fail_share(self, fate: ChallengeFate) -> float:
        counter = self.by_fate.get(fate, Counter())
        total = sum(counter.values())
        return safe_ratio(counter.get(SpfResult.FAIL, 0), total)

    @property
    def bad_challenge_fail_share(self) -> float:
        """SPF-fail share among "bad" challenge messages (bounced, expired,
        delivered-but-unsolved) — the paper's overall 2.5 % reduction."""
        bad = Counter()
        for fate in (
            ChallengeFate.BOUNCED,
            ChallengeFate.EXPIRED,
            ChallengeFate.DELIVERED_UNSOLVED,
        ):
            bad.update(self.by_fate.get(fate, Counter()))
        total = sum(bad.values())
        return safe_ratio(bad.get(SpfResult.FAIL, 0), total)


def compute(store: LogStore) -> SpfStats:
    index = store.index()
    solved_ids = index.web.solved_ids
    outcome_by_id = index.outcomes.by_challenge

    by_fate: dict = {fate: Counter() for fate in ChallengeFate}
    for record in index.dispatch.quarantined_with_challenge:
        key = (record.company_id, record.challenge_id)
        outcome = outcome_by_id.get(key)
        if outcome is None:
            fate = ChallengeFate.PENDING
        elif key in solved_ids:
            fate = ChallengeFate.SOLVED
        elif outcome.status is FinalStatus.DELIVERED:
            fate = ChallengeFate.DELIVERED_UNSOLVED
        elif outcome.status is FinalStatus.EXPIRED:
            fate = ChallengeFate.EXPIRED
        else:
            fate = ChallengeFate.BOUNCED
        by_fate[fate][record.spf] += 1
    return SpfStats(by_fate=by_fate)


def build_table(stats: SpfStats) -> ComparisonTable:
    table = ComparisonTable(
        "Fig. 12 — SPF validation over the gray spool "
        "(share of each category an SPF-fail drop would remove)"
    )
    table.add("expired challenges", 9.0, 100.0 * stats.fail_share(ChallengeFate.EXPIRED), "%")
    table.add("bounced challenges", 4.10, 100.0 * stats.fail_share(ChallengeFate.BOUNCED), "%")
    table.add(
        "delivered-but-unsolved challenges",
        None,
        100.0 * stats.fail_share(ChallengeFate.DELIVERED_UNSOLVED),
        "%",
    )
    table.add('"bad" challenges overall', 2.5, 100.0 * stats.bad_challenge_fail_share, "%")
    table.add("solved challenges (cost)", 0.25, 100.0 * stats.fail_share(ChallengeFate.SOLVED), "%")
    return table


def build_breakdown_table(stats: SpfStats) -> TextTable:
    table = TextTable(
        headers=["challenge fate", "messages", "pass", "fail", "none/other"],
        title="Fig. 12 — SPF result breakdown by challenge fate",
    )
    for fate in ChallengeFate:
        counter = stats.by_fate.get(fate, Counter())
        total = sum(counter.values())
        if total == 0:
            continue
        other = total - counter.get(SpfResult.PASS, 0) - counter.get(SpfResult.FAIL, 0)
        table.add_row(
            fate.value,
            total,
            f"{100.0 * counter.get(SpfResult.PASS, 0) / total:.1f}%",
            f"{100.0 * counter.get(SpfResult.FAIL, 0) / total:.1f}%",
            f"{100.0 * other / total:.1f}%",
        )
    return table


def render(store: LogStore) -> str:
    stats = compute(store)
    return "\n\n".join(
        [build_table(stats).render(), build_breakdown_table(stats).render()]
    )
