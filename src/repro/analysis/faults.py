"""Challenge delivery under network weather: the fault-condition breakdown.

The paper's §4 delay tail and Fig. 4(a)'s "expired after many unsuccessful
attempts" both emerge from *retries* — challenges that hit greylisting,
storms, outages, or DNS trouble on their first attempt and succeed (or give
up) hours later. This module splits the challenge population by fault
condition:

* **clean** — delivered/rejected on the first attempt (no weather);
* **weathered** — at least one transient failure before the terminal
  status.

and reports, for each side, the terminal-status mix, the attempts
histogram, and the send→terminal delay CDF. With faults disabled the
weathered side is empty and the report says so — the module renders
meaningfully for any run.

All inputs come from the shared :class:`~repro.analysis.index.AnalysisIndex`
(the challenge send-time pass joined against the outcome pass); fault-plan
counters, which live outside the measurement store, are appended only when
the caller passes the run's
:class:`~repro.experiments.runner.FaultStats`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.delays import CDF_PROBES
from repro.analysis.store import LogStore
from repro.net.smtp import FinalStatus
from repro.util.render import TextTable
from repro.util.simtime import format_duration
from repro.util.stats import CdfPoint, cdf_at, empirical_cdf, safe_ratio


@dataclass(frozen=True)
class ConditionStats:
    """Terminal-status mix of one fault condition (clean or weathered)."""

    delivered: int = 0
    bounced: int = 0
    expired: int = 0

    @property
    def total(self) -> int:
        return self.delivered + self.bounced + self.expired

    @property
    def expired_share(self) -> float:
        return safe_ratio(self.expired, self.total)


@dataclass(frozen=True)
class FaultBreakdown:
    """Challenge outcomes split by fault condition."""

    clean: ConditionStats
    weathered: ConditionStats
    #: Send→terminal delay CDFs of *delivered* challenges.
    clean_delay_cdf: Sequence[CdfPoint]
    weathered_delay_cdf: Sequence[CdfPoint]
    #: attempts -> challenges that needed exactly that many.
    attempts_hist: Counter

    @property
    def total(self) -> int:
        return self.clean.total + self.weathered.total

    @property
    def weathered_share(self) -> float:
        return safe_ratio(self.weathered.total, self.total)

    @property
    def retries_total(self) -> int:
        """Extra delivery attempts beyond the first, summed."""
        return sum(
            (attempts - 1) * count
            for attempts, count in self.attempts_hist.items()
        )


def compute(store: LogStore) -> FaultBreakdown:
    index = store.index()
    send_times = index.challenges.send_times
    clean = {FinalStatus.DELIVERED: 0, FinalStatus.BOUNCED: 0, FinalStatus.EXPIRED: 0}
    weathered = dict(clean)
    clean_delays: list = []
    weathered_delays: list = []
    attempts_hist: Counter = Counter()
    for key, outcome in index.outcomes.by_challenge.items():
        attempts_hist[outcome.attempts] += 1
        bucket = clean if outcome.attempts == 1 else weathered
        bucket[outcome.status] += 1
        if outcome.status is FinalStatus.DELIVERED:
            sent_at = send_times.get(key)
            if sent_at is not None:
                delay = outcome.t_final - sent_at
                (clean_delays if outcome.attempts == 1 else weathered_delays).append(
                    delay
                )
    return FaultBreakdown(
        clean=ConditionStats(
            delivered=clean[FinalStatus.DELIVERED],
            bounced=clean[FinalStatus.BOUNCED],
            expired=clean[FinalStatus.EXPIRED],
        ),
        weathered=ConditionStats(
            delivered=weathered[FinalStatus.DELIVERED],
            bounced=weathered[FinalStatus.BOUNCED],
            expired=weathered[FinalStatus.EXPIRED],
        ),
        clean_delay_cdf=empirical_cdf(clean_delays) if clean_delays else (),
        weathered_delay_cdf=(
            empirical_cdf(weathered_delays) if weathered_delays else ()
        ),
        attempts_hist=attempts_hist,
    )


def build_condition_table(breakdown: FaultBreakdown) -> TextTable:
    table = TextTable(
        headers=["condition", "total", "delivered", "bounced", "expired", "expired %"],
        title="Challenge outcomes by fault condition",
    )
    for label, stats in (
        ("clean (1 attempt)", breakdown.clean),
        ("weathered (retried)", breakdown.weathered),
    ):
        table.add_row(
            label,
            stats.total,
            stats.delivered,
            stats.bounced,
            stats.expired,
            f"{100.0 * stats.expired_share:.2f}%",
        )
    return table


def build_attempts_table(breakdown: FaultBreakdown) -> TextTable:
    table = TextTable(
        headers=["attempts", "challenges"],
        title="Delivery attempts per challenge",
    )
    for attempts in sorted(breakdown.attempts_hist):
        table.add_row(attempts, breakdown.attempts_hist[attempts])
    return table


def _render_delay_cdf(points: Sequence[CdfPoint], title: str) -> str:
    lines = [title]
    for probe in CDF_PROBES:
        lines.append(
            f"  <= {format_duration(probe):>8}: {100.0 * cdf_at(points, probe):6.2f}%"
        )
    return "\n".join(lines)


def build_fault_counter_table(fault_stats) -> TextTable:
    table = TextTable(
        headers=["counter", "value"],
        title="Fault-injection counters (network weather)",
    )
    table.add_row("greylist deferrals", fault_stats.greylist_deferrals)
    table.add_row("4xx storm rejections", fault_stats.storm_rejections)
    table.add_row("outage connection failures", fault_stats.outage_failures)
    table.add_row("DNS SERVFAILs", fault_stats.dns_failures)
    table.add_row("retries scheduled", fault_stats.retries_scheduled)
    table.add_row("messages sent", fault_stats.messages_sent)
    table.add_row("  delivered", fault_stats.delivered)
    table.add_row("  bounced", fault_stats.bounced)
    table.add_row("  expired", fault_stats.expired)
    table.add_row("force-drained at horizon", fault_stats.drained)
    table.add_row(
        "delivery conservation", "OK" if fault_stats.conserved else "VIOLATED"
    )
    return table


def render(store: LogStore, fault_stats=None) -> str:
    """Full fault-condition report; *fault_stats* (optional) appends the
    run's injection counters and the conservation verdict."""
    breakdown = compute(store)
    parts = [build_condition_table(breakdown).render()]
    parts.append(
        f"weathered share: {100.0 * breakdown.weathered_share:.2f}% of "
        f"{breakdown.total:,} challenges; "
        f"{breakdown.retries_total:,} retries observed"
    )
    parts.append(build_attempts_table(breakdown).render())
    if breakdown.clean_delay_cdf:
        parts.append(
            _render_delay_cdf(
                breakdown.clean_delay_cdf,
                "CDF of send->delivered delay (clean, 1 attempt)",
            )
        )
    if breakdown.weathered_delay_cdf:
        parts.append(
            _render_delay_cdf(
                breakdown.weathered_delay_cdf,
                "CDF of send->delivered delay (weathered, retried)",
            )
        )
    else:
        parts.append(
            "no weathered deliveries (faults disabled or no transient failures)"
        )
    if fault_stats is not None and fault_stats.enabled:
        parts.append(build_fault_counter_table(fault_stats).render())
    return "\n\n".join(parts)


def render_result(result) -> str:
    """Registry adapter: renders from a full
    :class:`~repro.experiments.runner.SimulationResult` (or anything with a
    ``store``; ``fault_stats`` is optional so loaded/summarised runs work)."""
    return render(result.store, getattr(result, "fault_stats", None))
