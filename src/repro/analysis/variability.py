"""Figure 5: per-company variability and cross-correlations.

The paper's scatter matrix relates five per-company variables — protected
users, daily email volume, white-spool share, reflection ratio, and solved-
challenge share — and observes that:

* the reflection ratio is *not* correlated with company size or volume,
  staying within roughly 10–25 %;
* the solved-challenge share is nearly constant (2–12 %) and positively
  correlated with the white share;
* reflection and white share are mildly anti-correlated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.util.render import TextTable
from repro.util.stats import pearson, safe_ratio

VARIABLES = ("users", "emails", "white", "reflection", "captcha")


@dataclass(frozen=True)
class CompanyPoint:
    """One company's coordinates in the Fig. 5 scatter matrix."""

    company_id: str
    users: float
    emails_per_day: float
    white_share: float
    reflection: float
    captcha_share: float

    def coordinate(self, variable: str) -> float:
        return {
            "users": self.users,
            "emails": self.emails_per_day,
            "white": self.white_share,
            "reflection": self.reflection,
            "captcha": self.captcha_share,
        }[variable]


@dataclass(frozen=True)
class VariabilityStats:
    points: Sequence[CompanyPoint]
    #: (var_a, var_b) -> Pearson r, for the lower triangle.
    correlations: Mapping[tuple, float]

    def correlation(self, a: str, b: str) -> float:
        if (a, b) in self.correlations:
            return self.correlations[(a, b)]
        return self.correlations[(b, a)]


def compute(store: LogStore, info: DeploymentInfo) -> VariabilityStats:
    index = store.index()
    mta_per_company = index.mta.per_company
    dispatch_per_company = index.dispatch.per_company
    solved_counts = index.web.solves_per_company

    points = []
    for company_id in sorted(mta_per_company):
        dispatch = dispatch_per_company.get(company_id)
        dispatched = dispatch.total if dispatch is not None else 0
        whites = dispatch.white if dispatch is not None else 0
        challenges = (
            dispatch.challenges_created if dispatch is not None else 0
        )
        points.append(
            CompanyPoint(
                company_id=company_id,
                users=float(info.users_per_company.get(company_id, 0)),
                emails_per_day=(
                    mta_per_company[company_id].total / info.horizon_days
                ),
                white_share=safe_ratio(whites, dispatched),
                reflection=safe_ratio(challenges, dispatched),
                captcha_share=safe_ratio(
                    solved_counts.get(company_id, 0), challenges
                ),
            )
        )

    correlations = {}
    for i, a in enumerate(VARIABLES):
        for b in VARIABLES[i + 1 :]:
            xs = [p.coordinate(a) for p in points]
            ys = [p.coordinate(b) for p in points]
            correlations[(a, b)] = pearson(xs, ys) if len(points) >= 2 else 0.0
    return VariabilityStats(points=points, correlations=correlations)


#: Qualitative expectations from the paper's Fig. 5 (signs and magnitudes).
PAPER_EXPECTATIONS = [
    ("users", "reflection", "no correlation (|r| small)"),
    ("emails", "reflection", "no correlation (|r| small)"),
    ("white", "reflection", "small inverse correlation"),
    ("white", "captcha", "strong positive correlation"),
]


def build_correlation_table(stats: VariabilityStats) -> TextTable:
    table = TextTable(
        headers=[""] + list(VARIABLES),
        title="Fig. 5 — Pearson correlations between per-company variables",
    )
    for a in VARIABLES:
        row = [a]
        for b in VARIABLES:
            if a == b:
                row.append("1.00")
            else:
                row.append(f"{stats.correlation(a, b):+.2f}")
        table.add_row(*row)
    return table


def build_range_table(stats: VariabilityStats) -> TextTable:
    table = TextTable(
        headers=["variable", "min", "median", "max", "paper range"],
        title="Fig. 5 — per-company variable ranges",
    )
    from repro.util.stats import median

    paper_ranges = {
        "users": "mostly <500, few >2000",
        "emails": "wide spread",
        "white": "10% .. >70%",
        "reflection": "10% .. 25%",
        "captcha": "2% .. 12%",
    }
    for variable in VARIABLES:
        values = [p.coordinate(variable) for p in stats.points]
        if not values:
            continue
        fmt = (lambda v: f"{v:,.0f}") if variable in ("users", "emails") else (
            lambda v: f"{100.0 * v:.1f}%"
        )
        table.add_row(
            variable,
            fmt(min(values)),
            fmt(median(values)),
            fmt(max(values)),
            paper_ranges[variable],
        )
    return table


def render(store: LogStore, info: DeploymentInfo) -> str:
    stats = compute(store, info)
    parts = [
        build_correlation_table(stats).render(),
        build_range_table(stats).render(),
        "Paper's qualitative findings:",
    ]
    for a, b, expectation in PAPER_EXPECTATIONS:
        parts.append(
            f"  corr({a}, {b}) = {stats.correlation(a, b):+.2f}   [{expectation}]"
        )
    return "\n\n".join(parts[:2]) + "\n\n" + "\n".join(parts[2:])


# ----------------------------------------------------------------------
# Multi-seed sweep: how stable are the Fig. 5 correlations run-to-run?
# The paper observes one deployment; re-simulating across seeds shows
# which of its qualitative findings are robust properties of the system
# and which are one-sample accidents.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VariabilitySweep:
    """Fig. 5 statistics recomputed over several independent seeds."""

    #: ``(seed, stats)`` per run, in seed order.
    per_seed: Sequence[tuple]

    def correlations_of(self, a: str, b: str) -> list[float]:
        return [stats.correlation(a, b) for _seed, stats in self.per_seed]


def sweep_seeds(
    preset="tiny",
    seeds: Sequence[int] = (3, 5, 7),
    jobs: int = 1,
    runner=None,
) -> VariabilitySweep:
    """Re-run the deployment at every seed (fanned out over *jobs*
    processes) and recompute the Fig. 5 statistics per run.

    Pass an existing :class:`~repro.experiments.parallel.ParallelRunner`
    as *runner* to share its cache and hit counters across studies.
    """
    from repro.experiments.parallel import ParallelRunner, RunSpec

    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    summaries = runner.run([RunSpec(preset=preset, seed=s) for s in seeds])
    return sweep_from_summaries(summaries)


def sweep_from_summaries(summaries) -> VariabilitySweep:
    """Fig. 5 sweep over already-executed runs (shared fan-outs)."""
    return VariabilitySweep(
        per_seed=tuple(
            (summary.seed, compute(summary.store, summary.info))
            for summary in summaries
        )
    )


def build_sweep_table(sweep: VariabilitySweep) -> TextTable:
    from repro.util.stats import median

    table = TextTable(
        headers=["pair", "min r", "median r", "max r", "paper expectation"],
        title=(
            "Fig. 5 — correlation stability across "
            f"{len(sweep.per_seed)} seeds"
        ),
    )
    for a, b, expectation in PAPER_EXPECTATIONS:
        values = sweep.correlations_of(a, b)
        table.add_row(
            f"{a}~{b}",
            f"{min(values):+.2f}",
            f"{median(values):+.2f}",
            f"{max(values):+.2f}",
            expectation,
        )
    return table


def render_sweep(sweep: VariabilitySweep) -> str:
    seeds = ", ".join(str(seed) for seed, _stats in sweep.per_seed)
    return build_sweep_table(sweep).render() + f"\n\nseeds: {seeds}"
