"""Daily statistics (Table 1's bottom block) and temporal structure.

The paper reports per-day aggregates — 797,679 emails/day, 31,920 white
messages/day, 53,764 challenges/day over 5,249 analysed company-days. This
module recomputes those rates and the temporal structure behind them: the
weekday/weekend split of legitimate vs spam traffic and the per-day series
the rates are averaged from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.util.render import TextTable
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class DailyStats:
    emails_per_day: float
    white_per_day: float
    challenges_per_day: float
    company_days: float
    #: day index -> total inbound messages.
    emails_by_day: Mapping[int, int]
    #: Weekend legitimate traffic as a fraction of weekday legit traffic.
    legit_weekend_ratio: float
    #: Weekend spam traffic as a fraction of weekday spam traffic.
    spam_weekend_ratio: float


def compute(store: LogStore, info: DeploymentInfo) -> DailyStats:
    index = store.index()
    mta = index.mta
    dispatch = index.dispatch

    legit = dispatch.weekend_legit
    spam = dispatch.weekend_spam
    weekend_days = dispatch.weekend_days

    def weekend_ratio(counts) -> float:
        weekday_rate = safe_ratio(counts[False], len(weekend_days[False]))
        weekend_rate = safe_ratio(counts[True], len(weekend_days[True]))
        return safe_ratio(weekend_rate, weekday_rate)

    days = max(info.horizon_days, 1e-9)
    return DailyStats(
        emails_per_day=mta.total / days,
        white_per_day=dispatch.white / days,
        challenges_per_day=len(store.challenges) / days,
        company_days=info.company_days,
        emails_by_day=dict(mta.by_day),
        legit_weekend_ratio=weekend_ratio(legit),
        spam_weekend_ratio=weekend_ratio(spam),
    )


#: Table 1's daily block, for the comparison rendering.
PAPER_DAILY = {
    "emails_per_day": 797_679,
    "white_per_day": 31_920,
    "challenges_per_day": 53_764,
    "company_days": 5_249,
}


def build_table(stats: DailyStats) -> TextTable:
    table = TextTable(
        headers=["quantity", "paper", "measured", "measured/emails"],
        title="Table 1 (daily statistics) + temporal structure",
    )
    rows = [
        ("Emails (per day)", "emails_per_day", stats.emails_per_day),
        ("White spool (per day)", "white_per_day", stats.white_per_day),
        ("Challenges sent (per day)", "challenges_per_day", stats.challenges_per_day),
        ("Analysed company-days", "company_days", stats.company_days),
    ]
    for label, key, measured in rows:
        paper_value = PAPER_DAILY[key]
        share = (
            f"{measured / max(stats.emails_per_day, 1e-9):.4f}"
            if key != "company_days"
            else "-"
        )
        table.add_row(label, f"{paper_value:,}", f"{measured:,.0f}", share)
    table.add_row(
        "Weekend/weekday legit traffic",
        "(not reported)",
        f"{stats.legit_weekend_ratio:.2f}",
        "-",
    )
    table.add_row(
        "Weekend/weekday spam traffic",
        "(not reported)",
        f"{stats.spam_weekend_ratio:.2f}",
        "-",
    )
    return table


def daily_series(stats: DailyStats) -> Sequence[int]:
    """The per-day inbound totals, ordered by day index."""
    if not stats.emails_by_day:
        return []
    last = max(stats.emails_by_day)
    return [stats.emails_by_day.get(day, 0) for day in range(last + 1)]


def render(store: LogStore, info: DeploymentInfo) -> str:
    stats = compute(store, info)
    from repro.analysis.churn import render_sparkline

    parts = [build_table(stats).render()]
    series = stats.emails_by_day
    if series:
        parts.append(
            "daily inbound volume: " + render_sparkline(series)
        )
    return "\n\n".join(parts)
