"""MTA-IN treatment: the §2 drop-reason table and Figure 2.

Paper anchors (non-open-relay servers):

* drop reasons: malformed 0.06 %, unresolvable domain 4.19 %, no relay
  2.27 %, sender rejected 0.03 %, unknown recipient 62.36 %;
* "more than 75 % of the incoming messages" dropped at the MTA, while
  "open-relay systems pass most of the messages to the next layer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.store import LogStore
from repro.core.mta_in import DropReason
from repro.util.render import ComparisonTable
from repro.util.stats import safe_ratio

#: The paper's drop-table, as fractions of all incoming messages.
PAPER_DROP_SHARES: Mapping[DropReason, float] = {
    DropReason.MALFORMED: 0.0006,
    DropReason.UNRESOLVABLE_DOMAIN: 0.0419,
    DropReason.NO_RELAY: 0.0227,
    DropReason.SENDER_REJECTED: 0.0003,
    DropReason.UNKNOWN_RECIPIENT: 0.6236,
}

#: Figure 1: 249 of 1000 messages reach the CR filter at closed relays.
PAPER_CLOSED_PASS_RATE = 0.249


@dataclass(frozen=True)
class MtaBreakdown:
    """Measured MTA-IN statistics."""

    total: int
    closed_total: int
    open_total: int
    #: Fractions of *closed-relay* traffic per drop reason.
    drop_shares: Mapping[DropReason, float]
    closed_pass_rate: float
    open_pass_rate: float


def compute(store: LogStore) -> MtaBreakdown:
    """Re-measure the MTA drop table from the MTA logs."""
    mta = store.index().mta
    drop_shares = {
        reason: safe_ratio(mta.closed_drops.get(reason, 0), mta.closed_total)
        for reason in DropReason
    }
    return MtaBreakdown(
        total=mta.closed_total + mta.open_total,
        closed_total=mta.closed_total,
        open_total=mta.open_total,
        drop_shares=drop_shares,
        closed_pass_rate=safe_ratio(mta.closed_accepted, mta.closed_total),
        open_pass_rate=safe_ratio(mta.open_accepted, mta.open_total),
    )


def build_table(breakdown: MtaBreakdown) -> ComparisonTable:
    table = ComparisonTable(
        "Sec. 2 drop table + Fig. 2 — MTA-IN email treatment "
        "(closed-relay servers)"
    )
    labels = {
        DropReason.MALFORMED: "Malformed email",
        DropReason.UNRESOLVABLE_DOMAIN: "Unable to resolve the domain",
        DropReason.NO_RELAY: "No relay",
        DropReason.SENDER_REJECTED: "Sender rejected",
        DropReason.UNKNOWN_RECIPIENT: "Unknown recipient",
    }
    for reason in DropReason:
        table.add(
            f"dropped: {labels[reason]}",
            100.0 * PAPER_DROP_SHARES[reason],
            100.0 * breakdown.drop_shares[reason],
            "%",
        )
    table.add(
        "passed to CR filter (closed relay)",
        100.0 * PAPER_CLOSED_PASS_RATE,
        100.0 * breakdown.closed_pass_rate,
        "%",
    )
    table.add(
        "passed to CR filter (open relay)",
        None,
        100.0 * breakdown.open_pass_rate,
        "%",
    )
    return table


def render(store: LogStore) -> str:
    return build_table(compute(store)).render()
