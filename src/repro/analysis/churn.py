"""Figure 9/10 and §4.3: whitelist change rate and digest sizes.

Paper anchors (two-month monitoring window):

* 9,267 whitelists were modified at least once; only 6.8 % averaged at
  least one new entry per day, 2.1 % at least two, 0.2 % at least five;
* on average ~0.3 new entries per user per day;
* Fig. 9's histogram of new entries per 60 days:
  1–10: 51.10 %, 10–30: 29.50 %, 30–60: 12.59 %, 60–120: 4.75 %,
  120–240: 1.62 %, 240–600: 0.35 %, >600: 0.10 %;
* Fig. 10: daily digest sizes vary wildly between users — some see large
  steady digests, others small ones with anomalous peaks.

Measured counts are normalised to the paper's 60-day window through the
run's effective churn days (horizon × volume scale — see
:class:`~repro.analysis.context.DeploymentInfo`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable, TextTable
from repro.util.stats import safe_ratio

#: Fig. 9 bin edges (new whitelist entries per 60 days) and paper shares.
FIG9_BINS = ((1, 10), (10, 30), (30, 60), (60, 120), (120, 240), (240, 600))
FIG9_PAPER_SHARES = (51.10, 29.50, 12.59, 4.75, 1.62, 0.35, 0.10)  # last: >600


@dataclass(frozen=True)
class ChurnStats:
    modified_whitelists: int
    #: Normalised additions per 60 days, one value per modified whitelist.
    additions_per_60d: Sequence[float]
    #: Fig. 9 shares (percent), aligned with FIG9_PAPER_SHARES.
    bin_shares: Sequence[float]
    share_ge_1_per_day: float
    share_ge_2_per_day: float
    share_ge_5_per_day: float
    additions_per_user_day: float


@dataclass(frozen=True)
class DigestSeries:
    """One user's daily digest-size series (Fig. 10)."""

    company_id: str
    user: str
    series: Mapping[int, int]

    @property
    def mean(self) -> float:
        if not self.series:
            return 0.0
        return sum(self.series.values()) / len(self.series)

    @property
    def peak(self) -> int:
        return max(self.series.values(), default=0)


def compute(store: LogStore, info: DeploymentInfo) -> ChurnStats:
    effective_days = max(info.effective_churn_days, 1e-9)
    counts = store.index().whitelist.per_user_counts

    per_60d = sorted(
        count * 60.0 / effective_days for count in counts.values()
    )
    n = len(per_60d)
    bin_counts = [0] * (len(FIG9_BINS) + 1)
    for value in per_60d:
        for i, (low, high) in enumerate(FIG9_BINS):
            if low <= value < high:
                bin_counts[i] += 1
                break
        else:
            if value >= FIG9_BINS[-1][1]:
                bin_counts[-1] += 1
            else:
                bin_counts[0] += 1  # <1 entry/60d folds into the first bin

    per_day = [v / 60.0 for v in per_60d]
    total_additions = sum(counts.values())
    return ChurnStats(
        modified_whitelists=n,
        additions_per_60d=per_60d,
        bin_shares=[100.0 * safe_ratio(c, n) for c in bin_counts],
        share_ge_1_per_day=safe_ratio(sum(1 for v in per_day if v >= 1), n),
        share_ge_2_per_day=safe_ratio(sum(1 for v in per_day if v >= 2), n),
        share_ge_5_per_day=safe_ratio(sum(1 for v in per_day if v >= 5), n),
        additions_per_user_day=(
            total_additions / effective_days / max(info.total_users, 1)
        ),
    )


def pick_digest_examples(
    store: LogStore, how_many: int = 3
) -> list[DigestSeries]:
    """Fig. 10: pick contrasted users — biggest mean digest, the median
    user, and the burstiest (largest peak/mean ratio)."""
    series = store.index().digests.per_user_series
    candidates = [
        DigestSeries(company_id=key[0], user=key[1], series=values)
        for key, values in series.items()
        if len(values) >= 3
    ]
    if not candidates:
        return []
    by_mean = sorted(candidates, key=lambda s: s.mean)
    picks = [by_mean[-1], by_mean[len(by_mean) // 2]]
    bursty = max(
        candidates, key=lambda s: safe_ratio(s.peak, max(s.mean, 1e-9))
    )
    picks.append(bursty)
    unique = []
    seen = set()
    for pick in picks:
        key = (pick.company_id, pick.user)
        if key not in seen:
            seen.add(key)
            unique.append(pick)
    return unique[:how_many]


def build_table(stats: ChurnStats) -> ComparisonTable:
    table = ComparisonTable("Fig. 9 / Sec. 4.3 — whitelist change rate")
    labels = [f"{low}-{high}" for low, high in FIG9_BINS] + [">600"]
    for label, paper, measured in zip(
        labels, FIG9_PAPER_SHARES, stats.bin_shares
    ):
        table.add(f"whitelists gaining {label} entries / 60d", paper, measured, "%")
    table.add(
        "whitelists with >=1 new entry/day", 6.8, 100.0 * stats.share_ge_1_per_day, "%"
    )
    table.add(
        "whitelists with >=2 new entries/day", 2.1, 100.0 * stats.share_ge_2_per_day, "%"
    )
    table.add(
        "whitelists with >=5 new entries/day", 0.2, 100.0 * stats.share_ge_5_per_day, "%"
    )
    table.add(
        "new whitelist entries per user per day",
        0.3,
        stats.additions_per_user_day,
    )
    return table


_SPARK_LEVELS = " .:-=+*#%@"


def render_sparkline(series: Mapping[int, int]) -> str:
    """Render a daily series as a fixed-alphabet sparkline.

    Missing days render as spaces; counts are scaled to the series peak.

    >>> render_sparkline({0: 0, 1: 5, 2: 10})
    '.=@'
    """
    if not series:
        return ""
    first, last = min(series), max(series)
    peak = max(series.values()) or 1
    chars = []
    for day in range(first, last + 1):
        if day not in series:
            chars.append(" ")
            continue
        level = round((len(_SPARK_LEVELS) - 1) * series[day] / peak)
        chars.append(_SPARK_LEVELS[level] if series[day] else ".")
    return "".join(chars)


def build_digest_table(examples: Sequence[DigestSeries]) -> TextTable:
    table = TextTable(
        headers=["user", "days", "mean digest", "peak digest", "daily series"],
        title="Fig. 10 — daily pending-digest sizes of contrasted users",
    )
    for example in examples:
        table.add_row(
            f"{example.user}",
            len(example.series),
            f"{example.mean:.1f}",
            example.peak,
            render_sparkline(example.series),
        )
    return table


def render(store: LogStore, info: DeploymentInfo) -> str:
    stats = compute(store, info)
    parts = [build_table(stats).render()]
    examples = pick_digest_examples(store)
    if examples:
        parts.append(build_digest_table(examples).render())
    return "\n\n".join(parts)
