"""The lifecycle-audit report (experiment id ``audit``).

Renders the end-of-run verdict of the message-lifecycle ledger
(:mod:`repro.core.ledger`): the terminal-state mix of every accepted
message, per-company conservation verdicts, any stranded messages the
auditor caught, and a reconciliation of the ledger's counters against the
measurement store's own records (dispatch / release / expiry tables) — two
independently-maintained views of the same population that must agree.

Works in three modes:

* a live :class:`~repro.experiments.runner.SimulationResult` with
  ``ledger_stats`` — the full report;
* the same but from an audited run — adds the per-message stranded table
  (empty on a conserving run);
* a loaded or summarised run (no ``ledger_stats``) — renders the
  store-side view only and says the runtime verdict is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.store import LogStore
from repro.util.render import TextTable
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class StoreCompanyFlow:
    """One company's message flow as the *measurement store* recorded it —
    the ledger's independently-derived cross-check."""

    company_id: str
    accepted: int
    white: int
    black: int
    filter_dropped: int
    quarantined: int
    released: int
    expired: int


def compute_store_flows(store: LogStore) -> list[StoreCompanyFlow]:
    """Per-company flows from the store's record tables, via the shared
    analysis index (one pass, cached)."""
    index = store.index()
    flows = []
    for company_id in sorted(index.mta.per_company):
        mta = index.mta.per_company[company_id]
        dispatch = index.dispatch.per_company.get(company_id)
        releases = index.releases.per_company.get(company_id, {})
        expiries = index.expiries.per_company.get(company_id, 0)
        filter_dropped = (
            sum(dispatch.filter_drops.values()) if dispatch else 0
        )
        flows.append(
            StoreCompanyFlow(
                company_id=company_id,
                accepted=mta.accepted,
                white=dispatch.white if dispatch else 0,
                black=dispatch.black if dispatch else 0,
                filter_dropped=filter_dropped,
                quarantined=(dispatch.gray - filter_dropped) if dispatch else 0,
                released=sum(releases.values()),
                expired=expiries,
            )
        )
    return flows


def build_mix_table(ledger_stats) -> TextTable:
    table = TextTable(
        headers=["terminal state", "messages", "% of accepted"],
        title="Terminal-state mix of accepted messages",
    )
    rows = [
        ("delivered (whitelisted sender)", ledger_stats.delivered),
        ("black-dropped", ledger_stats.black_dropped),
        ("filter-dropped", ledger_stats.filter_dropped),
        ("released from quarantine", ledger_stats.released),
        ("deleted from digest", ledger_stats.deleted),
        ("expired (30-day quarantine)", ledger_stats.expired),
        ("pending at horizon", ledger_stats.pending_at_horizon),
    ]
    for label, count in rows:
        share = 100.0 * safe_ratio(count, ledger_stats.accepted)
        table.add_row(label, count, f"{share:.2f}%")
    table.add_row("total", ledger_stats.terminal_total, "")
    table.add_row("accepted", ledger_stats.accepted, "")
    return table


def build_company_table(ledger_stats) -> TextTable:
    table = TextTable(
        headers=[
            "company",
            "accepted",
            "inbox",
            "black",
            "filter",
            "released",
            "deleted",
            "expired",
            "at-horizon",
            "verdict",
        ],
        title="Per-company conservation verdicts",
    )
    for snap in ledger_stats.per_company:
        table.add_row(
            snap.company_id,
            snap.accepted,
            snap.delivered,
            snap.black_dropped,
            snap.filter_dropped,
            snap.released,
            snap.deleted,
            snap.expired,
            snap.pending_at_horizon,
            "OK" if snap.conserved else "VIOLATED",
        )
    return table


def build_stranded_table(ledger_stats) -> Optional[TextTable]:
    """Audit-mode per-message strandings; None when there are none (or the
    run was not audited, in which case per-message state is unknown)."""
    stranded = [
        (snap.company_id, msg_id, state)
        for snap in ledger_stats.per_company
        for msg_id, state in snap.stranded
    ]
    if not stranded:
        return None
    table = TextTable(
        headers=["company", "msg_id", "stuck in state"],
        title="Stranded messages (no terminal disposition)",
    )
    for company_id, msg_id, state in stranded[:50]:
        table.add_row(company_id, msg_id, state)
    if len(stranded) > 50:
        table.add_row("...", f"+{len(stranded) - 50} more", "")
    return table


def build_reconciliation_table(store: LogStore, ledger_stats) -> TextTable:
    """Fleet-wide ledger counters vs. what the store's record tables imply.

    ``deleted`` and ``pending at horizon`` have no log records by design
    (digest deletes are silent; the drain happens outside the horizon), so
    the store side for those is the residual of the quarantine balance.
    """
    flows = compute_store_flows(store)
    store_accepted = sum(f.accepted for f in flows)
    store_white = sum(f.white for f in flows)
    store_black = sum(f.black for f in flows)
    store_filter = sum(f.filter_dropped for f in flows)
    store_quarantined = sum(f.quarantined for f in flows)
    store_released = sum(f.released for f in flows)
    store_expired = sum(f.expired for f in flows)
    table = TextTable(
        headers=["stage", "ledger", "store records", "agree"],
        title="Ledger vs. measurement store",
    )
    pairs = [
        ("accepted", ledger_stats.accepted, store_accepted),
        ("delivered (white)", ledger_stats.delivered, store_white),
        ("black-dropped", ledger_stats.black_dropped, store_black),
        ("filter-dropped", ledger_stats.filter_dropped, store_filter),
        ("quarantined", ledger_stats.quarantined_total, store_quarantined),
        ("released", ledger_stats.released, store_released),
        ("expired", ledger_stats.expired, store_expired),
    ]
    for label, ledger_value, store_value in pairs:
        table.add_row(
            label,
            ledger_value,
            store_value,
            "yes" if ledger_value == store_value else "NO",
        )
    residual = store_quarantined - store_released - store_expired
    table.add_row(
        "deleted + at-horizon",
        ledger_stats.deleted + ledger_stats.pending_at_horizon,
        f"{residual} (residual; not logged)",
        "yes"
        if ledger_stats.deleted + ledger_stats.pending_at_horizon == residual
        else "NO",
    )
    return table


def _build_store_only_table(store: LogStore) -> TextTable:
    flows = compute_store_flows(store)
    table = TextTable(
        headers=[
            "company",
            "accepted",
            "inbox",
            "black",
            "filter",
            "quarantined",
            "released",
            "expired",
        ],
        title="Per-company message flow (store records)",
    )
    for flow in flows:
        table.add_row(
            flow.company_id,
            flow.accepted,
            flow.white,
            flow.black,
            flow.filter_dropped,
            flow.quarantined,
            flow.released,
            flow.expired,
        )
    return table


def render(store: LogStore, ledger_stats=None) -> str:
    """Full lifecycle-audit report; *ledger_stats* (optional) is the run's
    :class:`~repro.experiments.runner.LedgerStats`."""
    if ledger_stats is None:
        parts = [_build_store_only_table(store).render()]
        parts.append(
            "runtime ledger verdict unavailable (loaded run) — per-company "
            "flows above come from the store's own records; deleted and "
            "at-horizon messages leave no records and appear as the "
            "quarantine residual"
        )
        return "\n\n".join(parts)

    parts = [build_mix_table(ledger_stats).render()]
    mode = "continuous audit" if ledger_stats.audit else "end-of-run check"
    verdict = "CONSERVED" if ledger_stats.conserved else "VIOLATED"
    parts.append(
        f"lifecycle conservation: {verdict} ({mode}) — "
        f"{ledger_stats.accepted:,} accepted, "
        f"{ledger_stats.terminal_total:,} in terminal states, "
        f"{ledger_stats.stranded} stranded, "
        f"{ledger_stats.leaked_challenge_slots} leaked challenge slot(s)"
    )
    if ledger_stats.violations:
        parts.append("violations:\n  " + "\n  ".join(ledger_stats.violations))
    parts.append(build_company_table(ledger_stats).render())
    stranded_table = build_stranded_table(ledger_stats)
    if stranded_table is not None:
        parts.append(stranded_table.render())
    parts.append(build_reconciliation_table(store, ledger_stats).render())
    return "\n\n".join(parts)


def render_result(result) -> str:
    """Registry adapter: renders from a full
    :class:`~repro.experiments.runner.SimulationResult` (or anything with a
    ``store``; ``ledger_stats`` is optional so loaded/summarised runs work)."""
    return render(result.store, getattr(result, "ledger_stats", None))
