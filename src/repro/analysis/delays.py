"""Figures 7/8 and §4.2: delivery delay of quarantined messages.

Paper anchors:

* Fig. 7 (CDF of gray→inbox delay): 30 % of released messages are delayed
  less than 5 minutes and half less than 30 minutes (CAPTCHA curve);
  digest releases take 4 hours to 3 days;
* Fig. 8: a challenge not solved within ~4 hours will likely never be;
* §4.2: 94 % of inbox mail is delivered instantly (whitelisted), ~6 % is
  quarantined first, and only ~0.6 % of inbox mail is delayed by more than
  one day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.store import LogStore
from repro.util.render import ComparisonTable
from repro.util.simtime import DAY, HOUR, MINUTE, format_duration
from repro.util.stats import CdfPoint, cdf_at, empirical_cdf, safe_ratio

#: Delay probes used when rendering the CDFs.
CDF_PROBES = (
    1 * MINUTE,
    5 * MINUTE,
    30 * MINUTE,
    1 * HOUR,
    4 * HOUR,
    12 * HOUR,
    1 * DAY,
    3 * DAY,
)


@dataclass(frozen=True)
class DelayStats:
    captcha_delays: Sequence[float]
    digest_delays: Sequence[float]
    captcha_cdf: Sequence[CdfPoint]
    digest_cdf: Sequence[CdfPoint]
    combined_cdf: Sequence[CdfPoint]
    white_count: int
    released_count: int

    @property
    def inbox_count(self) -> int:
        return self.white_count + self.released_count

    @property
    def instant_share(self) -> float:
        """Share of inbox mail delivered instantly (paper: 94 %)."""
        return safe_ratio(self.white_count, self.inbox_count)

    @property
    def quarantined_share(self) -> float:
        return safe_ratio(self.released_count, self.inbox_count)

    @property
    def released_under_30min_share(self) -> float:
        """Of released mail, the share delivered in <30 min (paper: ~50 %)."""
        return cdf_at(self.combined_cdf, 30 * MINUTE)

    @property
    def inbox_delayed_over_1day_share(self) -> float:
        """Share of *inbox* mail delayed >1 day (paper: ~0.6 %)."""
        if not self.combined_cdf:
            return 0.0
        over_1d = 1.0 - cdf_at(self.combined_cdf, 1 * DAY)
        return self.quarantined_share * over_1d

    def captcha_share_solved_within(self, delay: float) -> float:
        return cdf_at(self.captcha_cdf, delay)


def compute(store: LogStore) -> DelayStats:
    index = store.index()
    captcha_delays = list(index.releases.captcha_delays)
    digest_delays = list(index.releases.other_delays)
    white_count = index.dispatch.white
    all_delays = captcha_delays + digest_delays
    return DelayStats(
        captcha_delays=captcha_delays,
        digest_delays=digest_delays,
        captcha_cdf=empirical_cdf(captcha_delays) if captcha_delays else (),
        digest_cdf=empirical_cdf(digest_delays) if digest_delays else (),
        combined_cdf=empirical_cdf(all_delays) if all_delays else (),
        white_count=white_count,
        released_count=len(all_delays),
    )


def build_table(stats: DelayStats) -> ComparisonTable:
    table = ComparisonTable("Fig. 7/8 + Sec. 4.2 — delivery delay of inbox mail")
    table.add(
        "released in < 5 min (captcha releases)",
        30.0,
        100.0 * cdf_at(stats.captcha_cdf, 5 * MINUTE),
        "%",
    )
    table.add(
        "released in < 30 min (captcha releases)",
        50.0,
        100.0 * cdf_at(stats.captcha_cdf, 30 * MINUTE),
        "%",
    )
    table.add(
        "captcha releases within 4 h",
        None,
        100.0 * stats.captcha_share_solved_within(4 * HOUR),
        "%",
    )
    if stats.digest_delays:
        table.add(
            "digest releases between 4 h and 3 d",
            None,
            100.0
            * (
                cdf_at(stats.digest_cdf, 3 * DAY)
                - cdf_at(stats.digest_cdf, 4 * HOUR)
            ),
            "%",
        )
    table.add("inbox mail delivered instantly", 94.0, 100.0 * stats.instant_share, "%")
    table.add("inbox mail quarantined first", 6.0, 100.0 * stats.quarantined_share, "%")
    table.add(
        "inbox mail delayed > 1 day",
        0.6,
        100.0 * stats.inbox_delayed_over_1day_share,
        "%",
    )
    return table


def _render_delay_cdf(points: Sequence[CdfPoint], title: str) -> str:
    lines = [title]
    for probe in CDF_PROBES:
        lines.append(
            f"  <= {format_duration(probe):>8}: {100.0 * cdf_at(points, probe):6.2f}%"
        )
    return "\n".join(lines)


def render(store: LogStore) -> str:
    stats = compute(store)
    parts = [build_table(stats).render()]
    if stats.captcha_cdf:
        parts.append(
            _render_delay_cdf(
                stats.captcha_cdf, "Fig. 7 — CDF of captcha-release delay"
            )
        )
    if stats.digest_cdf:
        parts.append(
            _render_delay_cdf(
                stats.digest_cdf, "Fig. 7 — CDF of digest-release delay"
            )
        )
    return "\n\n".join(parts)


def render_probe_labels() -> list[str]:
    """Human-readable labels for :data:`CDF_PROBES` (used by benches)."""
    return [format_duration(p) for p in CDF_PROBES]
