"""The shared analysis index: one pass per table, every figure served.

The paper's workflow queried Postgres once per figure; our stand-in
(:class:`~repro.analysis.store.LogStore`) originally mirrored that
faithfully — every analysis module re-scanned the same record lists, so a
full report paid a dozen independent O(N) passes over ``store.mta`` alone.
This module replaces those scans with a single lazily-materialised
:class:`AnalysisIndex`: the first analysis that needs a table triggers
**one** pass over it, producing the columnar aggregates *all* figures
share (per-company counters, per-day buckets, per-disposition and
drop-reason counts, challenge→outcome and challenge→web joins, first-seen
company order). Every later analysis reads the same aggregates for free.

Aggregation is by table, not by figure: each per-table aggregate is cached
against ``(table version, table length)``, where the version is bumped by
the store's append helpers and the length guards direct list appends (the
persistence loader bypasses the helpers). Appending to one table therefore
invalidates exactly that table's aggregates and nothing else — a re-read
after an append rebuilds only the pass that went stale.

Adding a new figure should not add a new full scan: extend the relevant
``_build_*`` pass with the extra counter it needs (keeping the pass
single-traversal) and read it from the module. Only genuinely per-figure
work — set intersections, ratios, rendering — belongs in the modules.

Everything here is order-preserving by construction: per-company dicts are
keyed in first-seen record order, counters are updated in record order,
and row subsets (cluster groups, SPF rows) keep record order, so analyses
rewired onto the index render byte-identical reports.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice, repeat
from operator import attrgetter, floordiv, le
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.challenge import WebAction
from repro.core.message import MessageKind
from repro.core.spools import Category, ReleaseMechanism
from repro.core.whitelist import WhitelistSource
from repro.net.smtp import BounceReason, FinalStatus
from repro.util.simtime import DAY

if TYPE_CHECKING:  # pragma: no cover - import cycle (store imports us)
    from repro.analysis.records import (
        ChallengeOutcomeRecord,
        DispatchRecord,
        WebAccessRecord,
    )
    from repro.analysis.store import LogStore


# ---------------------------------------------------------------------------
# Per-table aggregate bundles
# ---------------------------------------------------------------------------


@dataclass
class CompanyMta:
    """One company's MTA-IN counters (first-seen order in the parent dict)."""

    total: int = 0
    #: The company's relay flag as of its latest record.
    open_relay: bool = False
    #: Records carrying ``open_relay=False`` — membership test for the
    #: paper's "non-open-relay servers" restrictions.
    closed_records: int = 0
    drops: Counter = field(default_factory=Counter)

    @property
    def accepted(self) -> int:
        return self.total - sum(self.drops.values())


@dataclass
class MtaAggregates:
    total: int
    total_bytes: int
    dropped: int
    #: day index -> inbound messages, keyed in first-occurrence order.
    by_day: dict
    #: company_id -> :class:`CompanyMta`, keyed in first-seen order.
    per_company: dict
    closed_total: int
    closed_dropped: int
    closed_accepted: int
    closed_drops: Counter
    open_total: int
    open_accepted: int

    @property
    def closed_companies(self) -> set:
        """Companies with at least one non-open-relay MTA record."""
        return {
            company_id
            for company_id, agg in self.per_company.items()
            if agg.closed_records
        }

    def company_volumes(self) -> Counter:
        """Inbound volume per company as a :class:`Counter` whose insertion
        order is first-seen order — ``most_common`` tie-breaks identically
        to counting the raw records."""
        volumes: Counter = Counter()
        for company_id, agg in self.per_company.items():
            volumes[company_id] = agg.total
        return volumes


@dataclass
class CompanyDispatch:
    total: int = 0
    white: int = 0
    black: int = 0
    gray: int = 0
    challenges_created: int = 0
    filter_drops: Counter = field(default_factory=Counter)


@dataclass
class ClosedDispatch:
    """Dispatcher counters restricted to non-open-relay companies (Fig. 1)."""

    white: int = 0
    black: int = 0
    gray: int = 0
    filter_dropped: int = 0
    quarantined: int = 0
    challenges: int = 0


@dataclass
class DispatchAggregates:
    total: int
    total_bytes: int
    white: int
    black: int
    gray: int
    #: Gray-spool drops by filter name, in first-drop order.
    filter_drops: Counter
    quarantined: int
    challenged_gray: int
    suppressed: int
    closed: ClosedDispatch
    #: open_relay -> [messages, challenges created] (Fig. 3's split).
    by_relay: dict
    per_company: dict
    #: weekend? -> legit / spam message counts and the day indices seen.
    weekend_legit: dict
    weekend_spam: dict
    weekend_days: dict
    #: Distinct (company, user, env_from) triples in the gray spool.
    gray_senders: set
    #: subject -> quarantined gray records, record order (Fig. 6 clusters).
    quarantined_by_subject: dict
    #: Quarantined gray records with a challenge id, record order (Fig. 12).
    quarantined_with_challenge: list


@dataclass
class ChallengeAggregates:
    total_bytes: int
    per_company: dict
    per_ip: dict
    server_ips_by_company: dict
    #: (company_id, challenge_id) -> send time; joined against
    #: ``OutcomeAggregates.by_challenge`` for delivery-delay breakdowns.
    send_times: dict


@dataclass
class CompanyOutcomes:
    delivered: int = 0
    expired: int = 0
    bounced_nonexistent: int = 0
    bounced_blacklisted: int = 0


@dataclass
class OutcomeAggregates:
    #: (company_id, challenge_id) -> outcome record (the outcome join).
    by_challenge: dict
    resolved: int
    delivered: int
    expired: int
    bounced_nonexistent: int
    bounced_blacklisted: int
    bounced_other: int
    delivered_ids: set
    per_company: dict


@dataclass
class WebAggregates:
    #: (company_id, challenge_id) -> web events (the web-access join).
    by_challenge: dict
    solve_total: int
    solves_per_company: dict
    opened_ids: set
    solved_ids: set
    attempts_by_challenge: Counter


@dataclass
class ReleaseAggregates:
    #: mechanism -> releases, fleet-wide.
    mechanism_counts: Counter
    #: company_id -> Counter of mechanisms.
    per_company: dict
    #: Gray→inbox delays in record order (Fig. 7 CDFs).
    captcha_delays: list
    other_delays: list
    #: CAPTCHA releases of ground-truth spam (spurious deliveries, §4.1).
    captcha_spam: int


@dataclass
class WhitelistAggregates:
    #: (company_id, user) -> number of changes (Fig. 9 churn).
    per_user_counts: dict
    #: (company_id, user, address) triples whitelisted from the digest.
    digest_senders: set


@dataclass
class DigestAggregates:
    #: (company_id, user) -> {day -> pending count}, insertion order
    #: matching record order (Fig. 10 example picking relies on it).
    per_user_series: dict
    #: company_id -> [sum of digest sizes, number of digests].
    per_company: dict


@dataclass
class ExpiryAggregates:
    total: int
    per_company: dict


@dataclass
class ProbeAggregates:
    probed_ips: set
    probe_days: set
    #: ip -> set of day indices on which a probe found it listed.
    listed_days_by_ip: dict


# ---------------------------------------------------------------------------
# Single-pass builders
# ---------------------------------------------------------------------------


def iter_chunks(records):
    """Yield *records* as successive lists (one chunk at a time).

    Spilled and merged tables expose ``chunks()``; a plain in-memory list
    is its own single chunk. The multi-sweep builders below fold over
    this, so aggregating a spilled table never needs the whole table
    resident — memory stays bounded by one chunk.
    """
    chunks = getattr(records, "chunks", None)
    if chunks is not None:
        return chunks()
    return iter((records,))


def _day_buckets(ts: list) -> dict:
    """Histogram of int day indices for one table's time column.

    Log tables append in simulation order, so the column is almost always
    non-decreasing — one C-level sweep verifies that, and day boundaries
    then come from bisection (O(days x log N)) instead of per-record
    arithmetic. An unsorted column falls back to the per-record Counter.
    Either way keys appear in first-occurrence order, which for sorted
    input is chronological order.
    """
    if not ts:
        return {}
    if all(map(le, ts, islice(ts, 1, None))):
        by_day: dict = {}
        lo, n = 0, len(ts)
        while lo < n:
            day = int(ts[lo] // DAY)
            hi = bisect_left(ts, (day + 1) * DAY, lo)
            by_day[day] = hi - lo
            lo = hi
        return by_day
    counts = Counter(map(floordiv, ts, repeat(DAY)))
    return {int(day): count for day, count in counts.items()}


def _build_mta(records) -> MtaAggregates:
    # This is the hottest pass of the whole analysis layer (the MTA table
    # is the largest by an order of magnitude), so it runs columnar: a few
    # C-speed sweeps (``map(attrgetter(...))`` into ``Counter``/``sum``/
    # ``dict``) compress the table into a handful of distinct keys, and
    # the branchy per-company accounting then folds over those few keys
    # instead of every record. Record order survives because ``Counter``
    # and ``dict`` keep first-seen insertion order, so every derived dict
    # is keyed exactly as a naive per-record loop would key it.
    #
    # The sweeps fold chunk-by-chunk (:func:`iter_chunks`): a spilled
    # table aggregates with one chunk resident at a time, and a single
    # in-memory list is just the one-chunk case of the same fold.
    total = 0
    total_bytes = 0
    by_day: dict = {}
    shapes: Counter = Counter()
    # company_id -> relay flag of its latest record so far: dict() keeps
    # the *last* pair per key within a chunk, later chunks override.
    last_flags: dict = {}
    for chunk in iter_chunks(records):
        total += len(chunk)
        total_bytes += sum(map(attrgetter("size"), chunk))
        for day, count in _day_buckets(
            list(map(attrgetter("t"), chunk))
        ).items():
            by_day[day] = by_day.get(day, 0) + count
        shapes.update(
            map(attrgetter("company_id", "open_relay", "drop_reason"), chunk)
        )
        last_flags.update(
            map(attrgetter("company_id", "open_relay"), chunk)
        )

    dropped = 0
    closed_total = closed_dropped = closed_accepted = 0
    open_total = open_accepted = 0
    closed_drops: Counter = Counter()
    # company_id -> [total, closed_records, drops, seen_open, seen_closed]
    rows: dict = {}
    for (company_id, open_relay, drop), count in shapes.items():
        row = rows.get(company_id)
        if row is None:
            row = rows[company_id] = [0, 0, Counter(), False, False]
        row[0] += count
        if open_relay:
            row[3] = True
            open_total += count
            if drop is None:
                open_accepted += count
            else:
                dropped += count
                row[2][drop] += count
        else:
            row[4] = True
            row[1] += count
            closed_total += count
            if drop is None:
                closed_accepted += count
            else:
                closed_dropped += count
                closed_drops[drop] += count
                dropped += count
                row[2][drop] += count
    # ``CompanyMta.open_relay`` is the flag of the company's *latest*
    # record. A company whose records all carry one flag (the norm — the
    # flag is per-company configuration) resolves from the fold; only a
    # company seen with both flags reads the last-flag sweep.
    flags = {company_id: row[3] for company_id, row in rows.items()}
    for company_id in (
        cid for cid, row in rows.items() if row[3] and row[4]
    ):
        flags[company_id] = last_flags[company_id]
    per_company = {
        company_id: CompanyMta(
            total=row[0],
            open_relay=flags[company_id],
            closed_records=row[1],
            drops=row[2],
        )
        for company_id, row in rows.items()
    }
    return MtaAggregates(
        total=total,
        total_bytes=total_bytes,
        dropped=dropped,
        by_day=by_day,
        per_company=per_company,
        closed_total=closed_total,
        closed_dropped=closed_dropped,
        closed_accepted=closed_accepted,
        closed_drops=closed_drops,
        open_total=open_total,
        open_accepted=open_accepted,
    )


def _build_dispatch(records) -> DispatchAggregates:
    # Second-hottest pass after :func:`_build_mta`; same columnar scheme.
    # One C-speed sweep compresses each record to its "shape" — the
    # (company, relay flag, challenge?, category, filter verdict) tuple —
    # and every count the figures need folds over the few distinct shapes.
    # Only the quarantined-gray subset (Figs. 6/7/12 need the record
    # objects themselves) still walks records in Python, and that subset
    # is a small fraction of the table.
    # Like :func:`_build_mta`, the sweeps fold chunk-by-chunk so spilled
    # tables aggregate under bounded memory; the quarantined-gray record
    # subsets append per chunk in record order, unchanged.
    total = 0
    total_bytes = 0
    shapes: Counter = Counter()
    kind_days: Counter = Counter()
    gray_senders: set = set()
    by_subject: dict = {}
    with_challenge: list = []
    is_gray = Category.GRAY
    shape_getter = attrgetter(
        "company_id",
        "open_relay",
        "challenge_created",
        "category",
        "filter_drop",
    )
    for chunk in iter_chunks(records):
        total += len(chunk)
        total_bytes += sum(map(attrgetter("size"), chunk))
        shapes.update(map(shape_getter, chunk))
        kind_days.update(
            zip(
                map(attrgetter("kind"), chunk),
                map(floordiv, map(attrgetter("t"), chunk), repeat(DAY)),
            )
        )
        for record in chunk:
            if record.category is is_gray and record.filter_drop is None:
                gray_senders.add(
                    (record.company_id, record.user, record.env_from)
                )
                subject_rows = by_subject.get(record.subject)
                if subject_rows is None:
                    by_subject[record.subject] = [record]
                else:
                    subject_rows.append(record)
                if record.challenge_id is not None:
                    with_challenge.append(record)

    white = black = gray = 0
    filter_drops: Counter = Counter()
    quarantined = challenged_gray = suppressed = 0
    closed = ClosedDispatch()
    by_relay = {True: [0, 0], False: [0, 0]}
    #: company_id -> [total, white, black, gray, challenges, drops Counter]
    rows: dict = {}
    for shape, count in shapes.items():
        company_id, open_relay, challenge_created, category, filter_drop = (
            shape
        )
        row = rows.get(company_id)
        if row is None:
            row = rows[company_id] = [0, 0, 0, 0, 0, Counter()]
        row[0] += count

        relay = by_relay[open_relay]
        relay[0] += count
        if challenge_created:
            relay[1] += count
            row[4] += count

        if category is Category.WHITE:
            white += count
            row[1] += count
            if not open_relay:
                closed.white += count
        elif category is Category.BLACK:
            black += count
            row[2] += count
            if not open_relay:
                closed.black += count
        else:
            gray += count
            row[3] += count
            if not open_relay:
                closed.gray += count
            if filter_drop is not None:
                filter_drops[filter_drop] += count
                row[5][filter_drop] += count
                if not open_relay:
                    closed.filter_dropped += count
            else:
                quarantined += count
                if not open_relay:
                    closed.quarantined += count
                    if challenge_created:
                        closed.challenges += count
                if challenge_created:
                    challenged_gray += count
                else:
                    suppressed += count

    weekend_legit = {True: 0, False: 0}
    weekend_spam = {True: 0, False: 0}
    weekend_days = {True: set(), False: set()}
    for (kind, fractional_day), count in kind_days.items():
        day = int(fractional_day)
        weekend = (3 + day) % 7 >= 5  # sim epoch 2010-07-01 was a Thursday
        weekend_days[weekend].add(day)
        if kind is MessageKind.LEGIT:
            weekend_legit[weekend] += count
        elif kind is MessageKind.SPAM:
            weekend_spam[weekend] += count

    per_company = {
        company_id: CompanyDispatch(
            total=row[0],
            white=row[1],
            black=row[2],
            gray=row[3],
            challenges_created=row[4],
            filter_drops=row[5],
        )
        for company_id, row in rows.items()
    }
    return DispatchAggregates(
        total=total,
        total_bytes=total_bytes,
        white=white,
        black=black,
        gray=gray,
        filter_drops=filter_drops,
        quarantined=quarantined,
        challenged_gray=challenged_gray,
        suppressed=suppressed,
        closed=closed,
        by_relay=by_relay,
        per_company=per_company,
        weekend_legit=weekend_legit,
        weekend_spam=weekend_spam,
        weekend_days=weekend_days,
        gray_senders=gray_senders,
        quarantined_by_subject=by_subject,
        quarantined_with_challenge=with_challenge,
    )


def _build_challenges(records) -> ChallengeAggregates:
    total_bytes = 0
    per_company: dict = {}
    per_ip: dict = {}
    server_ips_by_company: dict = {}
    send_times: dict = {}
    for record in records:
        total_bytes += record.size
        company_id = record.company_id
        per_company[company_id] = per_company.get(company_id, 0) + 1
        per_ip[record.server_ip] = per_ip.get(record.server_ip, 0) + 1
        ips = server_ips_by_company.get(company_id)
        if ips is None:
            ips = server_ips_by_company[company_id] = set()
        ips.add(record.server_ip)
        send_times[(company_id, record.challenge_id)] = record.t
    return ChallengeAggregates(
        total_bytes=total_bytes,
        per_company=per_company,
        per_ip=per_ip,
        server_ips_by_company=server_ips_by_company,
        send_times=send_times,
    )


def _build_outcomes(records) -> OutcomeAggregates:
    by_challenge: dict = {}
    delivered = expired = 0
    bounced_nonexistent = bounced_blacklisted = bounced_other = 0
    delivered_ids: set = set()
    per_company: dict = {}
    for record in records:
        key = (record.company_id, record.challenge_id)
        by_challenge[key] = record
        company = per_company.get(record.company_id)
        if company is None:
            company = per_company[record.company_id] = CompanyOutcomes()
        if record.status is FinalStatus.DELIVERED:
            delivered += 1
            company.delivered += 1
            delivered_ids.add(key)
        elif record.status is FinalStatus.EXPIRED:
            expired += 1
            company.expired += 1
        elif record.bounce_reason is BounceReason.NONEXISTENT_RECIPIENT:
            bounced_nonexistent += 1
            company.bounced_nonexistent += 1
        elif record.bounce_reason is BounceReason.BLACKLISTED:
            bounced_blacklisted += 1
            company.bounced_blacklisted += 1
        else:
            bounced_other += 1
    return OutcomeAggregates(
        by_challenge=by_challenge,
        resolved=len(records),
        delivered=delivered,
        expired=expired,
        bounced_nonexistent=bounced_nonexistent,
        bounced_blacklisted=bounced_blacklisted,
        bounced_other=bounced_other,
        delivered_ids=delivered_ids,
        per_company=per_company,
    )


def _build_web(records) -> WebAggregates:
    by_challenge: dict = {}
    solve_total = 0
    solves_per_company: dict = {}
    opened_ids: set = set()
    solved_ids: set = set()
    attempts: Counter = Counter()
    for record in records:
        key = (record.company_id, record.challenge_id)
        events = by_challenge.get(key)
        if events is None:
            by_challenge[key] = [record]
        else:
            events.append(record)
        if record.action is WebAction.OPEN:
            opened_ids.add(key)
        elif record.action is WebAction.ATTEMPT:
            opened_ids.add(key)
            attempts[key] += 1
        elif record.action is WebAction.SOLVE:
            opened_ids.add(key)
            attempts[key] += 1
            solved_ids.add(key)
            solve_total += 1
            solves_per_company[record.company_id] = (
                solves_per_company.get(record.company_id, 0) + 1
            )
    return WebAggregates(
        by_challenge=by_challenge,
        solve_total=solve_total,
        solves_per_company=solves_per_company,
        opened_ids=opened_ids,
        solved_ids=solved_ids,
        attempts_by_challenge=attempts,
    )


def _build_releases(records) -> ReleaseAggregates:
    mechanism_counts: Counter = Counter()
    per_company: dict = {}
    captcha_delays: list = []
    other_delays: list = []
    captcha_spam = 0
    for record in records:
        mechanism_counts[record.mechanism] += 1
        company = per_company.get(record.company_id)
        if company is None:
            company = per_company[record.company_id] = Counter()
        company[record.mechanism] += 1
        if record.mechanism is ReleaseMechanism.CAPTCHA:
            captcha_delays.append(record.delay)
            if record.kind is MessageKind.SPAM:
                captcha_spam += 1
        else:
            other_delays.append(record.delay)
    return ReleaseAggregates(
        mechanism_counts=mechanism_counts,
        per_company=per_company,
        captcha_delays=captcha_delays,
        other_delays=other_delays,
        captcha_spam=captcha_spam,
    )


def _build_whitelist(records) -> WhitelistAggregates:
    per_user_counts: dict = {}
    digest_senders: set = set()
    for record in records:
        key = (record.company_id, record.user)
        per_user_counts[key] = per_user_counts.get(key, 0) + 1
        if record.source is WhitelistSource.DIGEST:
            digest_senders.add(
                (record.company_id, record.user, record.address)
            )
    return WhitelistAggregates(
        per_user_counts=per_user_counts, digest_senders=digest_senders
    )


def _build_digests(records) -> DigestAggregates:
    per_user_series: dict = {}
    per_company: dict = {}
    for record in records:
        key = (record.company_id, record.user)
        series = per_user_series.get(key)
        if series is None:
            series = per_user_series[key] = {}
        series[record.day] = record.pending_count
        sizes = per_company.get(record.company_id)
        if sizes is None:
            per_company[record.company_id] = [record.pending_count, 1]
        else:
            sizes[0] += record.pending_count
            sizes[1] += 1
    return DigestAggregates(
        per_user_series=per_user_series, per_company=per_company
    )


def _build_expiries(records) -> ExpiryAggregates:
    per_company: dict = {}
    for record in records:
        per_company[record.company_id] = (
            per_company.get(record.company_id, 0) + 1
        )
    return ExpiryAggregates(total=len(records), per_company=per_company)


def _build_probes(records) -> ProbeAggregates:
    probed_ips: set = set()
    probe_days: set = set()
    listed_days_by_ip: dict = {}
    for record in records:
        probed_ips.add(record.ip)
        day = int(record.t // DAY)
        probe_days.add(day)
        if record.listed:
            days = listed_days_by_ip.get(record.ip)
            if days is None:
                days = listed_days_by_ip[record.ip] = set()
            days.add(day)
    return ProbeAggregates(
        probed_ips=probed_ips,
        probe_days=probe_days,
        listed_days_by_ip=listed_days_by_ip,
    )


# ---------------------------------------------------------------------------
# The index itself
# ---------------------------------------------------------------------------


class AnalysisIndex:
    """Lazily-built per-table aggregates over one :class:`LogStore`.

    Aggregates materialise on first access and are cached against the
    owning table's ``(version, length)``; any append — through the store's
    helpers (version bump) or directly to the list (length change) —
    forces a rebuild of exactly that table's aggregate on next access.
    """

    def __init__(self, store: "LogStore") -> None:
        self._store = store
        #: table name -> (version, length, aggregate)
        self._cache: dict = {}
        #: Lifetime pass counts, for tests and perf forensics.
        self.builds = 0
        self.hits = 0

    def _get(self, table: str, builder: Callable):
        records = getattr(self._store, table)
        version = self._store.table_version(table)
        cached = self._cache.get(table)
        if (
            cached is not None
            and cached[0] == version
            and cached[1] == len(records)
        ):
            self.hits += 1
            return cached[2]
        aggregate = builder(records)
        self._cache[table] = (version, len(records), aggregate)
        self.builds += 1
        return aggregate

    @property
    def mta(self) -> MtaAggregates:
        return self._get("mta", _build_mta)

    @property
    def dispatch(self) -> DispatchAggregates:
        return self._get("dispatch", _build_dispatch)

    @property
    def challenges(self) -> ChallengeAggregates:
        return self._get("challenges", _build_challenges)

    @property
    def outcomes(self) -> OutcomeAggregates:
        return self._get("challenge_outcomes", _build_outcomes)

    @property
    def web(self) -> WebAggregates:
        return self._get("web_access", _build_web)

    @property
    def releases(self) -> ReleaseAggregates:
        return self._get("releases", _build_releases)

    @property
    def whitelist(self) -> WhitelistAggregates:
        return self._get("whitelist_changes", _build_whitelist)

    @property
    def digests(self) -> DigestAggregates:
        return self._get("digests", _build_digests)

    @property
    def expiries(self) -> ExpiryAggregates:
        return self._get("expiries", _build_expiries)

    @property
    def probes(self) -> ProbeAggregates:
        return self._get("probes", _build_probes)

    # -- convenience joins (the store delegates here) --------------------

    def outcome_of(
        self, company_id: str, challenge_id: int
    ) -> Optional["ChallengeOutcomeRecord"]:
        return self.outcomes.by_challenge.get((company_id, challenge_id))

    def web_events_of(
        self, company_id: str, challenge_id: int
    ) -> "list[WebAccessRecord]":
        return self.web.by_challenge.get((company_id, challenge_id), [])

    def company_ids(self) -> list:
        return list(self.mta.per_company)
