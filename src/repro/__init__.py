"""repro — reproduction of the IMC 2011 challenge-response spam filter study.

This package rebuilds, from scratch, the three layers behind Isacenkova &
Balzarotti's measurement paper:

* :mod:`repro.core` — the challenge-response (CR) anti-spam product itself
  (inbound MTA, dispatcher, spools, whitelists, CAPTCHA challenges, digests,
  auxiliary filters);
* :mod:`repro.net` and :mod:`repro.blacklistd` — the simulated internet the
  product lives in (DNS, SMTP routing, remote hosts, spam traps, DNSBLs);
* :mod:`repro.workload` — a synthetic six-month workload calibrated to the
  paper's published aggregates;
* :mod:`repro.analysis` and :mod:`repro.experiments` — the measurement
  pipeline that regenerates every table and figure of the paper.

Quickstart::

    from repro.experiments import run_simulation
    from repro.analysis import general_stats

    result = run_simulation(preset="tiny", seed=7)
    print(general_stats.build_table(result.store).render())
"""

from repro._version import __version__

__all__ = ["__version__"]
