"""Discrete-event simulation engine."""

from repro.sim.engine import Simulator
from repro.sim.events import Event

__all__ = ["Simulator", "Event"]
