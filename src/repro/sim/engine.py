"""The simulation loop: a time-ordered queue of callbacks.

Kept intentionally minimal — the email-system models carry the semantics;
the engine only guarantees deterministic time ordering.

Two performance properties matter at message scale (§"Batched data plane"
in DESIGN.md):

* heap entries are ``(time, seq, entry)`` tuples, so every sift compare
  runs at C speed instead of calling a Python ``__lt__``;
* bulk traffic is scheduled as :class:`~repro.sim.events.EventBatch`
  runs — one heap entry per planned day instead of one per message —
  and the run loop interleaves batch items against individually queued
  events by comparing ``(time, seq)`` keys, which reproduces exactly the
  order per-item scheduling would have produced.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from repro.sim.events import Event, EventBatch


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. scheduling into the past)."""


class _Recurrence:
    """A self-re-arming recurring event.

    A class rather than a closure so that a scheduled recurrence — like
    everything else sitting in the event queue — survives the pickling
    pass of a simulation checkpoint (:mod:`repro.core.recovery`).
    """

    __slots__ = ("simulator", "interval", "action", "until", "label")

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        action: Callable[[], None],
        until: Optional[float],
        label: str,
    ) -> None:
        self.simulator = simulator
        self.interval = interval
        self.action = action
        self.until = until
        self.label = label

    def __call__(self) -> None:
        self.action()
        next_time = self.simulator.now + self.interval
        if self.until is None or next_time < self.until:
            self.simulator.schedule(next_time, self, self.label)


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(5.0, lambda: seen.append("b"))
    >>> _ = sim.schedule(1.0, lambda: seen.append("a"))
    >>> sim.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        #: Min-heap of ``(time, seq, Event | EventBatch)`` tuples.
        self._queue: list = []
        self._seq = 0
        self._cancelled = 0  # cancelled events still sitting in the queue
        #: Unprocessed items across all queued batches, minus the number of
        #: batch heap entries — the O(1) correction that makes ``pending``
        #: count batch items individually.
        self._batch_extra = 0
        self.events_processed = 0
        self.compactions = 0

    def schedule(
        self, at: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *action* to run at absolute time *at*."""
        if at < self.now:
            raise SimulationError(
                f"cannot schedule event at {at} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(float(at), seq, action, label, owner=self)
        heapq.heappush(self._queue, (event.time, seq, event))
        return event

    def schedule_batch(
        self,
        times: Sequence[float],
        actions: Sequence[Callable],
        args: Sequence,
        label: str = "",
    ) -> Optional[EventBatch]:
        """Schedule a pre-sorted run of ``action(arg)`` calls as ONE entry.

        *times* must be nondecreasing and must not start in the past;
        *actions*/*args* are parallel columns.  Each item receives its own
        ``seq`` (allocated contiguously, in column order), so the global
        firing order is identical to ``schedule()``-ing every item
        individually: sort-by-``(time, seq)``, interleaved with everything
        else in the queue.  Items are not cancellable.  Returns the
        :class:`EventBatch` (``None`` for an empty run).
        """
        n = len(times)
        if n == 0:
            return None
        if not (len(actions) == len(args) == n):
            raise SimulationError(
                f"batch columns disagree: {n} times, {len(actions)} actions, "
                f"{len(args)} args"
            )
        if times[0] < self.now:
            raise SimulationError(
                f"cannot schedule batch starting at {times[0]} before "
                f"current time {self.now}"
            )
        if any(a > b for a, b in zip(times, times[1:])):
            raise SimulationError("batch times must be nondecreasing")
        base = self._seq
        self._seq = base + n
        batch = EventBatch(
            list(times), list(range(base, base + n)), list(actions),
            list(args), label,
        )
        heapq.heappush(self._queue, (batch.times[0], base, batch))
        self._batch_extra += n - 1
        return batch

    def _on_cancel(self) -> None:
        """Event.cancel() hook: count the dead entry, compact when dead
        entries outnumber live ones (keeps mass-cancellation workloads from
        dragging a mostly-dead heap around)."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Safe at any point: ordering is the total ``(time, seq)`` key, so a
        rebuilt heap pops in exactly the same order as the original.
        Batch entries are never cancelled and always survive.  The list is
        compacted *in place* — ``run()`` holds a direct reference to it, so
        rebinding ``self._queue`` here would orphan the live queue when a
        callback cancels its way into a compaction mid-run.
        """
        queue = self._queue
        queue[:] = [
            entry
            for entry in queue
            if type(entry[2]) is EventBatch or not entry[2].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled = 0
        self.compactions += 1

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *action* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, action, label)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Schedule *action* at ``start, start+interval, ...`` up to *until*.

        *until* is half-open (exclusive): a firing landing exactly at
        *until* does not run, matching :meth:`run`'s ``until`` semantics —
        a recurrence bounded by a horizon never fires at the horizon
        itself. *start* defaults to ``now + interval``; an explicit *start*
        must not lie in the past.

        The recurrence re-arms itself after each firing, so *action* may
        inspect or mutate simulation state freely.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        if start is not None and start < self.now:
            raise SimulationError(
                f"recurrence start {start} is before current time {self.now}; "
                f"schedule_every cannot begin in the past"
            )
        first = self.now + interval if start is None else start
        fire = _Recurrence(self, interval, action, until, label)
        if until is None or first < until:
            self.schedule(first, fire, label)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order until the queue drains or *until*.

        *until* is half-open (exclusive): events scheduled exactly at
        *until* are **not** processed, so consecutive ``run(until=...)``
        calls never double-fire and a ``schedule_every(..., until=h)``
        recurrence observes the same boundary. After a bounded run the
        clock rests at *until* even if the queue emptied earlier.
        """
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        processed = 0
        try:
            while queue:
                time0, _seq0, entry = queue[0]
                if until is not None and time0 >= until:
                    break
                pop(queue)
                if type(entry) is EventBatch:
                    # Process run items while nothing queued is due first;
                    # on a block, push the remainder back keyed by its head.
                    times = entry.times
                    seqs = entry.seqs
                    actions = entry.actions
                    args = entry.args
                    i = entry.start
                    n = len(times)
                    # The entry left the heap but its items are still
                    # pending; see the ``pending`` property invariant.
                    self._batch_extra += 1
                    while i < n:
                        t = times[i]
                        if until is not None and t >= until:
                            break
                        if queue:
                            head = queue[0]
                            if head[0] < t or (
                                head[0] == t and head[1] < seqs[i]
                            ):
                                break
                        self.now = t
                        self._batch_extra -= 1
                        actions[i](args[i])
                        processed += 1
                        i += 1
                    if i < n:
                        entry.start = i
                        push(queue, (times[i], seqs[i], entry))
                        self._batch_extra -= 1
                    continue
                entry.owner = None  # off the queue: a late cancel() is a no-op
                if entry.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = time0
                entry.action()
                processed += 1
        finally:
            self.events_processed += processed
        if until is not None and until > self.now:
            self.now = until

    def reset_counters(self) -> None:
        """Zero the run statistics (``events_processed``, ``compactions``).

        The counters are lifetime totals; an engine instance reused across
        logically separate runs would otherwise report the previous runs'
        work in the next run's numbers. Live queue accounting
        (``pending``, ``_cancelled``) is state, not statistics, and is
        deliberately left untouched.
        """
        self.events_processed = 0
        self.compactions = 0

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) callbacks — O(1).

        Batch items count individually: a queued batch with 500
        unprocessed arrivals contributes 500, not 1.
        """
        return len(self._queue) - self._cancelled + self._batch_extra
